"""The IFPROBBER driver: profile a program's runs and feed counts back.

Reproduces the paper's tool flow:

1. compile the program (instrumentation is implicit — the VM counts every
   conditional branch),
2. run it over one or more datasets, accumulating counters in a
   :class:`~repro.profiling.database.ProfileDatabase`,
3. feed the accumulated counts back into the source as ``IFPROB``
   directives, from which a later compilation can read the predictions.
"""
from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.compiler import CompiledProgram, CompileOptions, compile_source
from repro.lang.directives import apply_feedback
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.vm.counters import RunResult
from repro.vm.machine import run_program


class IfProbber:
    """Profiles one program over datasets and produces feedback source."""

    def __init__(
        self,
        source: str,
        name: str = "program",
        options: Optional[CompileOptions] = None,
        database: Optional[ProfileDatabase] = None,
    ) -> None:
        self.source = source
        self.name = name
        self.compiled: CompiledProgram = compile_source(
            source, name=name, options=options
        )
        self.database = database if database is not None else ProfileDatabase()

    def run_dataset(self, dataset: str, input_data: bytes) -> RunResult:
        """Run the instrumented program on one dataset and record counters."""
        result = run_program(self.compiled.lowered, input_data=input_data)
        self.database.record(result, dataset)
        return result

    def accumulated_profile(self) -> BranchProfile:
        """The database's accumulated counts for this program."""
        return self.database.program_profile(self.name)

    def feedback_source(self, profile: Optional[BranchProfile] = None) -> str:
        """Source text with IFPROB directives for the accumulated counts.

        Fractional accumulated counts (from scaled combination) are rounded
        to integers for the directive text; direction is what matters.
        """
        if profile is None:
            profile = self.accumulated_profile()
        counts: Dict = {}
        for branch_id, (executed, taken) in profile.counts.items():
            executed_int = max(int(round(executed)), 1)
            taken_int = min(int(round(taken)), executed_int)
            counts[branch_id] = (executed_int, taken_int)
        return apply_feedback(self.source, counts)


def profile_from_feedback(compiled: CompiledProgram) -> BranchProfile:
    """Recover a :class:`BranchProfile` from a program compiled from source
    that contained IFPROB directives."""
    profile = BranchProfile(program=compiled.name, runs=1)
    feedback: Mapping = compiled.feedback
    for branch_id, (executed, taken) in feedback.items():
        profile.counts[branch_id] = (float(executed), float(taken))
    return profile
