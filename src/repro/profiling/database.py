"""The accumulating profile database (the IFPROBBER's back end).

"Upon the completion of each run, the generated code collected the value of
each counter and added that value to the amount that had been accumulated in
a database for that counter during previous runs."

We keep two granularities: an accumulated per-program profile (the paper's
database) and individual per-(program, dataset) profiles, which the
experiments need in order to form leave-one-out and single-dataset
predictors.
"""
from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.profiling.branch_profile import BranchProfile
from repro.vm.counters import RunResult


class ProfileDatabase:
    """Branch-count storage accumulated across runs, with JSON persistence."""

    def __init__(self) -> None:
        # (program, dataset) -> profile accumulated over that dataset's runs.
        self._by_dataset: Dict[Tuple[str, str], BranchProfile] = {}

    # -- recording -----------------------------------------------------------

    def record(self, run: RunResult, dataset: str) -> None:
        """Add one run's counters to the database."""
        key = (run.program, dataset)
        profile = self._by_dataset.get(key)
        if profile is None:
            profile = BranchProfile(program=run.program)
            self._by_dataset[key] = profile
        profile.add_run(run)

    def record_profile(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> None:
        """Accumulate an already-aggregated per-run profile.

        This is the profile-feedback service's upload path: clients ship a
        run's branch counters as a ``BranchProfile`` rather than the whole
        ``RunResult``.  Accumulating ``BranchProfile.from_run(run)`` here is
        float-for-float identical to ``record(run, ...)``.
        """
        if profile.program != program:
            raise ValueError(
                f"profile is for {profile.program!r}, expected {program!r}"
            )
        key = (program, dataset)
        existing = self._by_dataset.get(key)
        if existing is None:
            existing = BranchProfile(program=program)
            self._by_dataset[key] = existing
        existing.add_profile(profile)

    # -- queries ---------------------------------------------------------------

    def programs(self) -> List[str]:
        """Programs with at least one recorded run."""
        return sorted({program for program, _ in self._by_dataset})

    def datasets(self, program: str) -> List[str]:
        """Datasets recorded for a program, in sorted order."""
        return sorted(
            dataset for prog, dataset in self._by_dataset if prog == program
        )

    def dataset_profile(self, program: str, dataset: str) -> BranchProfile:
        """The accumulated profile of one (program, dataset)."""
        try:
            return self._by_dataset[(program, dataset)]
        except KeyError:
            raise KeyError(f"no profile recorded for {program!r}/{dataset!r}")

    def program_profile(
        self, program: str, exclude: Optional[str] = None
    ) -> BranchProfile:
        """Unscaled sum of a program's dataset profiles.

        ``exclude`` omits one dataset — the leave-one-out predictor the
        paper's Figure 2 white bars use (there combined with scaling; see
        :func:`repro.prediction.combine.combine_profiles`).
        """
        merged = BranchProfile(program=program)
        for (prog, dataset), profile in sorted(self._by_dataset.items()):
            if prog != program or dataset == exclude:
                continue
            merged.add_profile(profile)
        return merged

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "entries": [
                {
                    "program": program,
                    "dataset": dataset,
                    "profile": profile.to_dict(),
                }
                for (program, dataset), profile in sorted(self._by_dataset.items())
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileDatabase":
        database = cls()
        for entry in data["entries"]:
            key = (entry["program"], entry["dataset"])
            database._by_dataset[key] = BranchProfile.from_dict(entry["profile"])
        return database

    def save(self, path: str) -> None:
        """Write the database as JSON (atomically).

        Each writer gets its own mkstemp temp file in the target directory
        (same filesystem, so ``os.replace`` stays atomic).  A shared
        ``<path>.tmp`` would let two concurrent writers interleave writes
        and race the final rename, leaving a corrupt or vanished database —
        the same failure ``DiskCache.store`` had under parallel workers.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
