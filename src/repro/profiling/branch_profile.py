"""Branch profiles: accumulated per-branch (executed, taken) counts.

A profile is what the paper's IFPROBBER database holds for one program —
possibly accumulated over many runs and datasets — and is the input to
profile-based static prediction.  Counts may be fractional: the paper's
*scaled* summary predictor divides each dataset's counts by that dataset's
total branch executions before summing.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.ir.instructions import BranchId
from repro.vm.counters import RunResult

Counts = Tuple[float, float]  # (executed, taken)


@dataclasses.dataclass
class BranchProfile:
    """Per-branch (executed, taken) counts for one program."""

    program: str
    counts: Dict[BranchId, Counts] = dataclasses.field(default_factory=dict)
    runs: int = 0

    @classmethod
    def from_run(cls, run: RunResult) -> "BranchProfile":
        """Build a profile from a single run's counters."""
        profile = cls(program=run.program, runs=1)
        for branch_id, (executed, taken) in run.branch_counts().items():
            profile.counts[branch_id] = (float(executed), float(taken))
        return profile

    def add_run(self, run: RunResult) -> None:
        """Accumulate another run (the paper's database semantics)."""
        if run.program != self.program:
            raise ValueError(
                f"profile is for {self.program!r}, run is for {run.program!r}"
            )
        for branch_id, (executed, taken) in run.branch_counts().items():
            old_exec, old_taken = self.counts.get(branch_id, (0.0, 0.0))
            self.counts[branch_id] = (old_exec + executed, old_taken + taken)
        self.runs += 1

    def add_profile(self, other: "BranchProfile", weight: float = 1.0) -> None:
        """Accumulate another profile, optionally weighted."""
        for branch_id, (executed, taken) in other.counts.items():
            old_exec, old_taken = self.counts.get(branch_id, (0.0, 0.0))
            self.counts[branch_id] = (
                old_exec + executed * weight,
                old_taken + taken * weight,
            )
        self.runs += other.runs

    @property
    def total_executed(self) -> float:
        return sum(executed for executed, _ in self.counts.values())

    @property
    def total_taken(self) -> float:
        return sum(taken for _, taken in self.counts.values())

    def percent_taken(self) -> float:
        """Fraction of branch executions that were taken."""
        total = self.total_executed
        return self.total_taken / total if total else 0.0

    def direction(self, branch_id: BranchId) -> Optional[bool]:
        """Majority direction for a branch: True = taken.

        Exact ties predict not-taken (deterministic); unknown branches
        return ``None``.
        """
        counts = self.counts.get(branch_id)
        if counts is None:
            return None
        executed, taken = counts
        return taken > executed - taken

    def __contains__(self, branch_id: BranchId) -> bool:
        return branch_id in self.counts

    def __iter__(self) -> Iterator[BranchId]:
        return iter(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "program": self.program,
            "runs": self.runs,
            "counts": {
                f"{branch_id.function}#{branch_id.index}": [executed, taken]
                for branch_id, (executed, taken) in sorted(self.counts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BranchProfile":
        profile = cls(program=data["program"], runs=int(data["runs"]))
        for key, (executed, taken) in data["counts"].items():
            function, _, index = key.rpartition("#")
            profile.counts[BranchId(function, int(index))] = (
                float(executed),
                float(taken),
            )
        return profile
