"""Branch profiling: the IFPROBBER analog and its database."""
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.profiling.ifprobber import IfProbber, profile_from_feedback

__all__ = [
    "BranchProfile",
    "IfProbber",
    "ProfileDatabase",
    "profile_from_feedback",
]
