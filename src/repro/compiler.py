"""The compiler driver: MF source text -> executable program.

Ties together the front end (:mod:`repro.lang`), the optimizer
(:mod:`repro.opt`) and lowering (:mod:`repro.ir.lower`).  The default
configuration reproduces the paper's compiler setup (classical optimizations
on, dead code elimination off, simple-``if``-to-``select`` conversion on).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.ir.cfg import Module
from repro.ir.instructions import BranchId
from repro.ir.lower import LoweredProgram, lower_module
from repro.ir.validate import validate_module
from repro.lang.codegen import generate_module
from repro.lang.directives import parse_directives
from repro.lang.parser import parse_source
from repro.lang.sema import analyze
from repro.opt.inline import inline_module
from repro.opt.pipeline import OptOptions, optimize_module


@dataclasses.dataclass
class CompileOptions:
    """Knobs for one compilation.

    ``inline`` enables procedure inlining of small leaf functions before
    optimization (the Multiflow compiler's automatic-inlining switch; off
    in all of the paper's measurements).
    """

    enable_select: bool = True
    inline: bool = False
    opt: OptOptions = dataclasses.field(default_factory=OptOptions.classical)

    @classmethod
    def paper_default(cls) -> "CompileOptions":
        """The configuration used for all of the paper's measurements."""
        return cls()

    @classmethod
    def with_dce(cls) -> "CompileOptions":
        """As the default, but with dead code elimination (Table 1)."""
        return cls(opt=OptOptions.with_dce())

    @classmethod
    def unoptimized(cls) -> "CompileOptions":
        """No optimization, no select conversion (debugging baseline)."""
        return cls(enable_select=False, opt=OptOptions.none())


@dataclasses.dataclass
class CompiledProgram:
    """The result of compiling one MF source file."""

    name: str
    module: Module
    lowered: LoweredProgram
    #: IFPROB directive counts parsed from the source, if any were present.
    feedback: Dict[BranchId, Tuple[int, int]]
    options: CompileOptions


def compile_source(
    source: str,
    name: str = "program",
    options: Optional[CompileOptions] = None,
) -> CompiledProgram:
    """Compile MF source text into an executable :class:`CompiledProgram`."""
    if options is None:
        options = CompileOptions.paper_default()
    program_ast = parse_source(source)
    info = analyze(program_ast)
    module = generate_module(
        program_ast, name=name, info=info, enable_select=options.enable_select
    )
    if options.inline:
        inline_module(module)
    optimize_module(module, options.opt)
    validate_module(module)
    lowered = lower_module(module, validate=False)
    feedback = parse_directives(program_ast.directives)
    return CompiledProgram(
        name=name,
        module=module,
        lowered=lowered,
        feedback=feedback,
        options=options,
    )
