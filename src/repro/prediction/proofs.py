"""Profile-free prediction from static branch-direction proofs.

The third point on the paper's axis: self-profile and cross-profile
prediction both need a previous run; the prover needs none.  Proven
branches get their proven direction (and by construction never
mispredict); everything else falls back to a configurable predictor —
not-taken by default, so the difference against ``FixedPredictor(False)``
isolates exactly what the proofs buy.
"""
from __future__ import annotations

from typing import List, Optional

from repro.analysis.prover import BranchProof, proof_directions, prove_module
from repro.ir.cfg import Module
from repro.ir.instructions import BranchId
from repro.opt.globalconst import constant_globals
from repro.prediction.base import FixedPredictor, StaticPredictor


class StaticProofPredictor(StaticPredictor):
    """Proven directions where available, a fallback everywhere else."""

    def __init__(
        self, module: Module, fallback: Optional[StaticPredictor] = None
    ) -> None:
        self.proofs: List[BranchProof] = prove_module(
            module, constant_globals(module)
        )
        self._directions = proof_directions(self.proofs)
        self.fallback = fallback if fallback is not None else FixedPredictor(False)
        self.name = f"proofs+{self.fallback.name}"

    def predict(self, branch_id: BranchId) -> bool:
        direction = self._directions.get(branch_id)
        if direction is not None:
            return direction
        return self.fallback.predict(branch_id)

    def is_proven(self, branch_id: BranchId) -> bool:
        return branch_id in self._directions
