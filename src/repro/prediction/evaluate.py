"""Evaluating a static predictor against a target run.

Because a static predictor fixes one direction per branch, mispredictions
are computable from the target run's aggregate (executed, taken) counters:
a branch predicted taken mispredicts ``executed - taken`` times, one
predicted not-taken mispredicts ``taken`` times.  No trace replay is needed
— this is exactly how the paper could measure with counters alone.
"""
from __future__ import annotations

import dataclasses

from repro.prediction.base import ProfilePredictor, StaticPredictor
from repro.profiling.branch_profile import BranchProfile
from repro.vm.counters import RunResult


@dataclasses.dataclass
class PredictionReport:
    """How one static predictor did against one run."""

    program: str
    predictor: str
    instructions: int
    branch_execs: int
    mispredicted: int
    #: Indirect calls plus their returns: the unavoidable breaks the paper
    #: counts as mispredicted in its instructions-per-break figures.
    unavoidable_breaks: int

    @property
    def correct(self) -> int:
        return self.branch_execs - self.mispredicted

    @property
    def percent_correct(self) -> float:
        """Fraction of branch executions predicted correctly — the
        traditional measure the paper argues is the *wrong* one."""
        if self.branch_execs == 0:
            return 1.0
        return self.correct / self.branch_execs

    @property
    def breaks(self) -> int:
        """Mispredicted branches plus unavoidable breaks."""
        return self.mispredicted + self.unavoidable_breaks

    @property
    def instructions_per_break(self) -> float:
        """The paper's headline measure (Figure 2): instructions passed per
        mispredicted branch or unavoidable break."""
        breaks = self.breaks
        return self.instructions / breaks if breaks else float(self.instructions)


def evaluate_static(run: RunResult, predictor: StaticPredictor) -> PredictionReport:
    """Score a static predictor against one run."""
    mispredicted = 0
    for branch_id, (executed, taken) in run.branch_counts().items():
        if predictor.predict(branch_id):
            mispredicted += executed - taken
        else:
            mispredicted += taken
    return PredictionReport(
        program=run.program,
        predictor=predictor.name,
        instructions=run.instructions,
        branch_execs=run.total_branch_execs,
        mispredicted=mispredicted,
        unavoidable_breaks=run.events.indirect_calls + run.events.indirect_returns,
    )


def self_prediction(run: RunResult) -> PredictionReport:
    """The best possible static prediction: the run predicts itself.

    Every branch is predicted in its own majority direction, so it
    mispredicts ``min(taken, executed - taken)`` times — the upper bound
    the paper's Figure 2 black bars show.
    """
    predictor = ProfilePredictor(BranchProfile.from_run(run), name="self")
    return evaluate_static(run, predictor)
