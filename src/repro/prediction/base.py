"""Static predictor interface and the profile-based predictor.

A static predictor attaches *one direction* to each conditional branch
before the program runs (True = taken, i.e. condition true); the branch is
always predicted to go that way.
"""
from __future__ import annotations

from typing import Optional

from repro.ir.instructions import BranchId
from repro.profiling.branch_profile import BranchProfile


class StaticPredictor:
    """Interface: a fixed direction per branch."""

    #: Human-readable name for reports.
    name = "static"

    def predict(self, branch_id: BranchId) -> bool:
        """The predicted direction for a branch (True = taken)."""
        raise NotImplementedError


class ProfilePredictor(StaticPredictor):
    """Majority direction from a :class:`BranchProfile`.

    Branches the profile never saw get ``default`` (the paper does not
    specify a rule; not-taken is ours, and it is configurable).
    """

    def __init__(
        self,
        profile: BranchProfile,
        default: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.default = default
        self.name = name if name is not None else f"profile({profile.program})"

    def predict(self, branch_id: BranchId) -> bool:
        direction = self.profile.direction(branch_id)
        return self.default if direction is None else direction


class FixedPredictor(StaticPredictor):
    """Always-taken or always-not-taken (trivial baselines)."""

    def __init__(self, taken: bool) -> None:
        self.taken = taken
        self.name = "always-taken" if taken else "always-not-taken"

    def predict(self, branch_id: BranchId) -> bool:
        return self.taken
