"""Combining dataset profiles into summary predictors.

The paper tried three ways of summing the datasets other than the one being
predicted (§3, "Scaled vs. unscaled summary predictors"):

* **unscaled** — simply add the counts;
* **scaled** — divide each dataset's counts by that dataset's total branch
  executions first, giving every dataset equal total weight (this is what
  the reported figures use);
* **polling** — one vote per dataset per branch, regardless of counts
  (discarded by the paper for performing poorly).
"""
from __future__ import annotations

from typing import Iterable, List

from repro.profiling.branch_profile import BranchProfile

COMBINE_MODES = ("scaled", "unscaled", "polling")


def combine_profiles(
    profiles: Iterable[BranchProfile],
    mode: str = "scaled",
    program: str = "",
) -> BranchProfile:
    """Combine profiles into one summary profile using ``mode``."""
    profiles = list(profiles)
    if not profiles:
        raise ValueError("no profiles to combine")
    if mode not in COMBINE_MODES:
        raise ValueError(f"unknown combine mode {mode!r}; use one of {COMBINE_MODES}")
    name = program or profiles[0].program

    combined = BranchProfile(program=name)
    if mode == "unscaled":
        for profile in profiles:
            combined.add_profile(profile)
        return combined
    if mode == "scaled":
        for profile in profiles:
            total = profile.total_executed
            weight = 1.0 / total if total else 0.0
            combined.add_profile(profile, weight=weight)
        return combined
    # polling: each dataset casts one vote per branch it executed.
    for profile in profiles:
        votes = BranchProfile(program=name)
        for branch_id in profile:
            votes.counts[branch_id] = (
                1.0,
                1.0 if profile.direction(branch_id) else 0.0,
            )
        combined.add_profile(votes)
    combined.runs = len(profiles)
    return combined


def leave_one_out(
    profiles: List[BranchProfile],
    exclude_index: int,
    mode: str = "scaled",
) -> BranchProfile:
    """Combine every profile except ``profiles[exclude_index]``.

    This is the paper's Figure 2 white-bar predictor: "the sum of all the
    other datasets, weighed by dataset size, to predict the given dataset".
    """
    rest = [
        profile
        for index, profile in enumerate(profiles)
        if index != exclude_index
    ]
    if not rest:
        raise ValueError("leave-one-out needs at least two profiles")
    return combine_profiles(rest, mode=mode)
