"""Combining dataset profiles into summary predictors.

The paper tried three ways of summing the datasets other than the one being
predicted (§3, "Scaled vs. unscaled summary predictors"):

* **unscaled** — simply add the counts;
* **scaled** — divide each dataset's counts by that dataset's total branch
  executions first, giving every dataset equal total weight (this is what
  the reported figures use);
* **polling** — one vote per dataset per branch, regardless of counts
  (discarded by the paper for performing poorly).

Profiles with zero recorded branch executions carry no evidence in any
mode (scaled weighting would even divide by zero), so they are handled
deliberately rather than silently: skipped by default, or rejected with
``on_empty="error"``.  In every mode the combined profile's ``runs`` is
the total number of underlying runs of the profiles that actually
contributed.
"""
from __future__ import annotations

from typing import Iterable, List

from repro.profiling.branch_profile import BranchProfile

COMBINE_MODES = ("scaled", "unscaled", "polling")

ON_EMPTY = ("skip", "error")


def combine_profiles(
    profiles: Iterable[BranchProfile],
    mode: str = "scaled",
    program: str = "",
    on_empty: str = "skip",
) -> BranchProfile:
    """Combine profiles into one summary profile using ``mode``.

    ``on_empty`` decides what happens to profiles with zero total branch
    executions: ``"skip"`` (the default) leaves them out of both the counts
    and the ``runs`` accounting; ``"error"`` raises ``ValueError``.
    """
    profiles = list(profiles)
    if not profiles:
        raise ValueError("no profiles to combine")
    if mode not in COMBINE_MODES:
        raise ValueError(f"unknown combine mode {mode!r}; use one of {COMBINE_MODES}")
    if on_empty not in ON_EMPTY:
        raise ValueError(f"unknown on_empty {on_empty!r}; use one of {ON_EMPTY}")
    name = program or profiles[0].program

    empty = [profile for profile in profiles if not profile.total_executed]
    if empty and on_empty == "error":
        raise ValueError(
            f"{len(empty)} of {len(profiles)} profiles have no branch "
            f"executions (program {name!r})"
        )
    used = [profile for profile in profiles if profile.total_executed]

    combined = BranchProfile(program=name)
    if mode == "unscaled":
        for profile in used:
            combined.add_profile(profile)
    elif mode == "scaled":
        for profile in used:
            combined.add_profile(profile, weight=1.0 / profile.total_executed)
    else:
        # polling: each dataset casts one vote per branch it executed.
        for profile in used:
            votes = BranchProfile(program=name)
            for branch_id in profile:
                votes.counts[branch_id] = (
                    1.0,
                    1.0 if profile.direction(branch_id) else 0.0,
                )
            combined.add_profile(votes)
    combined.runs = sum(profile.runs for profile in used)
    return combined


def leave_one_out(
    profiles: List[BranchProfile],
    exclude_index: int,
    mode: str = "scaled",
    on_empty: str = "skip",
) -> BranchProfile:
    """Combine every profile except ``profiles[exclude_index]``.

    This is the paper's Figure 2 white-bar predictor: "the sum of all the
    other datasets, weighed by dataset size, to predict the given dataset".
    """
    rest = [
        profile
        for index, profile in enumerate(profiles)
        if index != exclude_index
    ]
    if not rest:
        raise ValueError("leave-one-out needs at least two profiles")
    return combine_profiles(rest, mode=mode, on_empty=on_empty)
