"""Static and dynamic branch prediction."""
from repro.prediction.base import FixedPredictor, ProfilePredictor, StaticPredictor
from repro.prediction.combine import COMBINE_MODES, combine_profiles, leave_one_out
from repro.prediction.evaluate import (
    PredictionReport,
    evaluate_static,
    self_prediction,
)
from repro.prediction.heuristics import (
    LoopHeuristicPredictor,
    OpcodeHeuristicPredictor,
)
from repro.prediction.proofs import StaticProofPredictor

__all__ = [
    "COMBINE_MODES",
    "FixedPredictor",
    "LoopHeuristicPredictor",
    "OpcodeHeuristicPredictor",
    "PredictionReport",
    "ProfilePredictor",
    "StaticPredictor",
    "StaticProofPredictor",
    "combine_profiles",
    "evaluate_static",
    "leave_one_out",
    "self_prediction",
]
