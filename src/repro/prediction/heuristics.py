"""Heuristic (non-profile) static predictors.

The paper reports: "We tried using very simple heuristics, distinguishing
between loops and nonloops, and our results were, unsurprisingly, terrible
... this usually gave up about a factor of two in instructions per break."
These predictors reproduce that comparison, plus an opcode heuristic in the
spirit of [Smith 81].
"""
from __future__ import annotations

from typing import Dict

from repro.ir.analysis import natural_loop_bodies
from repro.ir.cfg import Module
from repro.ir.instructions import BranchId
from repro.ir.opcodes import BinOp, Opcode
from repro.prediction.base import StaticPredictor


class LoopHeuristicPredictor(StaticPredictor):
    """Loop/non-loop heuristic: predict that loops continue.

    For a branch inside a natural loop whose two targets differ in loop
    membership, predict the edge that *stays in the innermost loop*; every
    other branch is predicted not-taken.  This is the "very simple
    heuristics, distinguishing between loops and nonloops" the paper tried.
    """

    name = "loop-heuristic"

    def __init__(self, module: Module) -> None:
        self._directions: Dict[BranchId, bool] = {}
        for func in module.functions:
            bodies = natural_loop_bodies(func)
            for block in func.blocks:
                term = block.terminator
                if term is None or term.op != Opcode.BR:
                    continue
                containing = [
                    body for body in bodies.values() if block.label in body
                ]
                direction = False
                if containing:
                    innermost = min(containing, key=len)
                    then_in = term.then_label in innermost
                    else_in = term.else_label in innermost
                    if then_in and not else_in:
                        direction = True
                self._directions[term.branch_id] = direction

    def predict(self, branch_id: BranchId) -> bool:
        return self._directions.get(branch_id, False)


#: Opcode-heuristic directions, in the spirit of [Smith 81]: inequality
#: tests are usually "not equal" (loop guards, error checks), comparisons
#: against bounds usually hold.
_OPCODE_DIRECTIONS = {
    int(BinOp.EQ): False,
    int(BinOp.NE): True,
    int(BinOp.LT): True,
    int(BinOp.LE): True,
    int(BinOp.GT): False,
    int(BinOp.GE): False,
}


class OpcodeHeuristicPredictor(StaticPredictor):
    """Predict from the comparison operator feeding each branch.

    When the branch condition is produced by a comparison in the same block,
    its operator chooses the direction; otherwise the loop heuristic's
    default (not-taken) applies.
    """

    name = "opcode-heuristic"

    def __init__(self, module: Module) -> None:
        self._directions: Dict[BranchId, bool] = {}
        for func in module.functions:
            for block in func.blocks:
                term = block.terminator
                if term is None or term.op != Opcode.BR:
                    continue
                direction = False
                for instr in reversed(block.body()):
                    if instr.dst == term.a:
                        if instr.op == Opcode.BIN:
                            direction = _OPCODE_DIRECTIONS.get(instr.subop, False)
                        break
                self._directions[term.branch_id] = direction

    def predict(self, branch_id: BranchId) -> bool:
        return self._directions.get(branch_id, False)
