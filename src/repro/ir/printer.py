"""Textual IR dumping, for debugging and golden tests."""
from __future__ import annotations

from typing import List

from repro.ir.cfg import Function, Module


def format_function(func: Function) -> str:
    """Render one function as text."""
    lines: List[str] = [
        f"func {func.name}(params={func.num_params}, regs={func.num_regs}):"
    ]
    for block in func.blocks:
        lines.append(f"  {block.label}:")
        for instr in block.instrs:
            lines.append(f"    {instr}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module as text."""
    lines: List[str] = [f"module {module.name}"]
    for var in module.globals:
        init = f" = {list(var.init)}" if var.init else ""
        lines.append(f"  global {var.name}[{var.size}]{init}")
    for func in module.functions:
        lines.append("")
        lines.append(format_function(func))
    return "\n".join(lines)
