"""IR validation: catches malformed modules before they reach the VM."""
from __future__ import annotations

from typing import List, Set

from repro.ir.cfg import Function, IRError, Module
from repro.ir.instructions import Instr
from repro.ir.opcodes import BinOp, Opcode, UnOp


def validate_module(module: Module) -> None:
    """Validate a whole module; raises :class:`IRError` on the first problem."""
    global_names = set()
    for var in module.globals:
        if var.name in global_names:
            raise IRError(f"duplicate global {var.name!r}")
        global_names.add(var.name)

    function_names = set()
    for func in module.functions:
        if func.name in function_names:
            raise IRError(f"duplicate function {func.name!r}")
        function_names.add(func.name)

    if not module.has_function("main"):
        raise IRError(f"module {module.name!r} has no 'main' function")

    for func in module.functions:
        _validate_function(module, func, global_names, function_names)


def _validate_function(
    module: Module, func: Function, global_names: Set[str],
    function_names: Set[str],
) -> None:
    if not func.blocks:
        raise IRError(f"function {func.name!r} has no blocks")
    if func.num_params > func.num_regs:
        raise IRError(
            f"function {func.name!r}: {func.num_params} params but only "
            f"{func.num_regs} registers"
        )

    labels = func.block_map()  # raises on duplicates
    seen_branch_ids = set()
    entry_label = func.blocks[0].label

    for block in func.blocks:
        where = f"{func.name}/{block.label}"
        if block.terminator is None:
            raise IRError(f"{where}: block does not end in a terminator")
        for position, instr in enumerate(block.instrs):
            if instr.is_terminator() and position != len(block.instrs) - 1:
                raise IRError(f"{where}: terminator not at end of block")
            _validate_registers(func, where, instr)
            if instr.op == Opcode.BIN:
                BinOp(instr.subop)
            elif instr.op == Opcode.UN:
                UnOp(instr.subop)
            elif instr.op == Opcode.ADDR:
                if instr.symbol not in global_names:
                    raise IRError(f"{where}: unknown global {instr.symbol!r}")
            elif instr.op in (Opcode.FUNCADDR, Opcode.CALL):
                if instr.symbol not in function_names:
                    raise IRError(f"{where}: unknown function {instr.symbol!r}")
                if instr.op == Opcode.CALL:
                    callee = module.function(instr.symbol)
                    if len(instr.args) != callee.num_params:
                        raise IRError(
                            f"{where}: call to {instr.symbol!r} with "
                            f"{len(instr.args)} args, expects {callee.num_params}"
                        )
            elif instr.op == Opcode.BR:
                if instr.branch_id is None:
                    raise IRError(f"{where}: conditional branch without BranchId")
                if instr.branch_id in seen_branch_ids:
                    raise IRError(f"{where}: duplicate BranchId {instr.branch_id}")
                seen_branch_ids.add(instr.branch_id)
                if instr.branch_id.function != func.name:
                    raise IRError(
                        f"{where}: BranchId {instr.branch_id} names another function"
                    )
            for succ in instr.successors():
                if succ is None:
                    raise IRError(
                        f"{where}: {instr.op.name.lower()} terminator is "
                        f"missing a target label"
                    )
                if succ not in labels:
                    raise IRError(f"{where}: branch to undefined label {succ!r}")
                if succ == entry_label:
                    # The entry block is the function's unique start: a
                    # predecessor would make parameter state on re-entry
                    # ambiguous and breaks the dominator/loop machinery.
                    raise IRError(
                        f"{where}: branch targets the entry block "
                        f"{entry_label!r}"
                    )


def _validate_registers(func: Function, where: str, instr: Instr) -> None:
    regs: List[int] = list(instr.uses())
    if instr.dst is not None:
        regs.append(instr.dst)
    for reg in regs:
        if not (0 <= reg < func.num_regs):
            raise IRError(
                f"{where}: register r{reg} out of range "
                f"(function has {func.num_regs})"
            )
