"""Lowering CFG-form IR to the flat executable form the VM runs.

The lowered form is deliberately plain: per function, a list of tuples whose
first element is the integer opcode.  Branch targets are absolute indices
into the function's code list.  Global symbols become absolute memory
addresses; function references become indices into the program's function
table (that index is also the run-time value of a ``funcaddr``, which is what
indirect calls dispatch on).

Tuple layouts::

    (CONST, dst, imm)
    (MOV, dst, a)
    (BIN, subop, dst, a, b)
    (UN, subop, dst, a)
    (SELECT, dst, cond, b, c)
    (LOAD, dst, a)            # dst <- memory[regs[a]]
    (STORE, a, b)             # memory[regs[a]] <- regs[b]
    (GETC, dst)
    (PUTC, a)
    (CALL, func_index, dst, args)     # dst == -1 when result unused
    (ICALL, a, dst, args)
    (BR, cond, then_pc, else_pc, branch_index)
    (JMP, pc)
    (RET, a)                  # a == -1 when no value (returns 0)
    (HALT,)

``branch_index`` indexes the program-wide :attr:`LoweredProgram.branch_table`
of :class:`~repro.ir.instructions.BranchId`, which is what per-run branch
counters are keyed by.

As a code-layout optimization (and because the paper assumes an ILP compiler
eliminates unconditional-jump breaks by laying code out well), a ``JMP``
whose target is the immediately following block is elided.
"""
from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.cfg import BasicBlock, Function, IRError, Module
from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import Opcode
from repro.ir.validate import validate_module


@dataclasses.dataclass
class LoweredFunction:
    """One function in executable form."""

    name: str
    num_params: int
    num_regs: int
    code: List[Tuple[Any, ...]]
    #: Decode metadata: every pc a BR/JMP in this function can transfer to.
    #: The fast-path engine (:mod:`repro.vm.engine`) breaks superinstruction
    #: fusion at these pcs so every jump target stays addressable after
    #: decoding.  ``None`` means "unknown" (a hand-built function); the
    #: engine then derives the set by scanning ``code``.
    jump_targets: Optional[FrozenSet[int]] = dataclasses.field(
        default=None, repr=False, compare=False
    )


@dataclasses.dataclass
class LoweredProgram:
    """A whole program in executable form."""

    name: str
    functions: List[LoweredFunction]
    function_index: Dict[str, int]
    main_index: int
    memory_size: int
    memory_init: List[int]
    symbols: Dict[str, int]
    branch_table: List[BranchId]
    #: Cache slot for the fast-path engine's decoded form (a
    #: ``repro.vm.engine.PredecodedProgram``); populated lazily by
    #: ``repro.vm.engine.predecode`` so repeated runs of one compiled
    #: program pay the decode exactly once per process.
    predecoded: Optional[Any] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def branch_index_of(self, branch_id: BranchId) -> int:
        """Index of a branch identity in :attr:`branch_table`."""
        return self.branch_table.index(branch_id)


def lower_module(module: Module, validate: bool = True) -> LoweredProgram:
    """Lower a validated module to executable form."""
    if validate:
        validate_module(module)

    # Global memory layout: globals in declaration order.
    symbols: Dict[str, int] = {}
    memory_init: List[int] = []
    for var in module.globals:
        symbols[var.name] = len(memory_init)
        cells = list(var.init) + [0] * (var.size - len(var.init))
        memory_init.extend(cells)

    function_index = {func.name: i for i, func in enumerate(module.functions)}
    branch_table: List[BranchId] = []
    branch_index: Dict[BranchId, int] = {}

    functions: List[LoweredFunction] = []
    for func in module.functions:
        functions.append(
            _lower_function(func, symbols, function_index, branch_table, branch_index)
        )

    return LoweredProgram(
        name=module.name,
        functions=functions,
        function_index=function_index,
        main_index=function_index["main"],
        memory_size=len(memory_init),
        memory_init=memory_init,
        symbols=symbols,
        branch_table=branch_table,
    )


def _layout_blocks(func: Function) -> List[BasicBlock]:
    """Order blocks to maximize fall-through (greedy chain placement).

    Starting from each not-yet-placed block (entry first), follow the jump
    target (for ``JMP``) or the not-taken edge (for ``BR``) while the
    successor is unplaced.  This is the code-rearrangement the paper assumes
    a good ILP compiler performs to eliminate unconditional-jump breaks.
    """
    block_map = {block.label: block for block in func.blocks}
    placed: List[BasicBlock] = []
    visited: Set[str] = set()
    for seed in func.blocks:
        block: Optional[BasicBlock] = seed
        while block is not None and block.label not in visited:
            visited.add(block.label)
            placed.append(block)
            term = block.terminator
            succ = None
            if term is not None:
                if term.op == Opcode.JMP:
                    succ = term.then_label
                elif term.op == Opcode.BR:
                    succ = term.else_label
            if succ is None or succ in visited:
                block = None
            else:
                block = block_map.get(succ)
    return placed


def _lower_function(
    func: Function,
    symbols: Dict[str, int],
    function_index: Dict[str, int],
    branch_table: List[BranchId],
    branch_index: Dict[BranchId, int],
) -> LoweredFunction:
    blocks = _layout_blocks(func)

    # First pass: compute the starting pc of every block, accounting for
    # elided fall-through jumps.
    block_pcs: Dict[str, int] = {}
    pc = 0
    for position, block in enumerate(blocks):
        block_pcs[block.label] = pc
        for instr in block.instrs:
            if _is_fallthrough_jump(blocks, position, instr):
                continue
            pc += 1

    code: List[Tuple[Any, ...]] = []
    jump_targets: Set[int] = set()
    for position, block in enumerate(blocks):
        for instr in block.instrs:
            if _is_fallthrough_jump(blocks, position, instr):
                continue
            if instr.op == Opcode.BR:
                jump_targets.add(block_pcs[instr.then_label])
                jump_targets.add(block_pcs[instr.else_label])
            elif instr.op == Opcode.JMP:
                jump_targets.add(block_pcs[instr.then_label])
            code.append(
                _lower_instr(
                    instr, block_pcs, symbols, function_index, branch_table,
                    branch_index,
                )
            )

    return LoweredFunction(
        name=func.name,
        num_params=func.num_params,
        num_regs=func.num_regs,
        code=code,
        jump_targets=frozenset(jump_targets),
    )


def _is_fallthrough_jump(
    blocks: List[BasicBlock], position: int, instr: Instr
) -> bool:
    """Whether ``instr`` is a JMP to the next block in layout order."""
    if instr.op != Opcode.JMP:
        return False
    if position + 1 >= len(blocks):
        return False
    return instr.then_label == blocks[position + 1].label


def _lower_instr(
    instr: Instr,
    block_pcs: Dict[str, int],
    symbols: Dict[str, int],
    function_index: Dict[str, int],
    branch_table: List[BranchId],
    branch_index: Dict[BranchId, int],
) -> Tuple[Any, ...]:
    op = instr.op
    if op == Opcode.CONST:
        return (int(Opcode.CONST), instr.dst, instr.imm)
    if op == Opcode.MOV:
        return (int(Opcode.MOV), instr.dst, instr.a)
    if op == Opcode.ADDR:
        return (int(Opcode.CONST), instr.dst, symbols[instr.symbol])
    if op == Opcode.FUNCADDR:
        return (int(Opcode.CONST), instr.dst, function_index[instr.symbol])
    if op == Opcode.BIN:
        return (int(Opcode.BIN), instr.subop, instr.dst, instr.a, instr.b)
    if op == Opcode.UN:
        return (int(Opcode.UN), instr.subop, instr.dst, instr.a)
    if op == Opcode.SELECT:
        return (int(Opcode.SELECT), instr.dst, instr.a, instr.b, instr.c)
    if op == Opcode.LOAD:
        return (int(Opcode.LOAD), instr.dst, instr.a)
    if op == Opcode.STORE:
        return (int(Opcode.STORE), instr.a, instr.b)
    if op == Opcode.GETC:
        return (int(Opcode.GETC), instr.dst)
    if op == Opcode.PUTC:
        return (int(Opcode.PUTC), instr.a)
    if op == Opcode.CALL:
        dst = -1 if instr.dst is None else instr.dst
        return (int(Opcode.CALL), function_index[instr.symbol], dst, instr.args)
    if op == Opcode.ICALL:
        dst = -1 if instr.dst is None else instr.dst
        return (int(Opcode.ICALL), instr.a, dst, instr.args)
    if op == Opcode.BR:
        bid = instr.branch_id
        if bid not in branch_index:
            branch_index[bid] = len(branch_table)
            branch_table.append(bid)
        return (
            int(Opcode.BR),
            instr.a,
            block_pcs[instr.then_label],
            block_pcs[instr.else_label],
            branch_index[bid],
        )
    if op == Opcode.JMP:
        return (int(Opcode.JMP), block_pcs[instr.then_label])
    if op == Opcode.RET:
        return (int(Opcode.RET), -1 if instr.a is None else instr.a)
    if op == Opcode.HALT:
        return (int(Opcode.HALT),)
    raise IRError(f"cannot lower opcode {op!r}")
