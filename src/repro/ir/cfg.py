"""Basic blocks, functions and modules (the CFG-form program container)."""
from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import Opcode


class IRError(Exception):
    """Raised for malformed IR (validation failures, bad references)."""


@dataclasses.dataclass
class BasicBlock:
    """A labelled sequence of instructions ending in a single terminator."""

    label: str
    instrs: List[Instr] = dataclasses.field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        """The final instruction, if it is a terminator; else ``None``."""
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        """Labels of possible successor blocks."""
        term = self.terminator
        return term.successors() if term is not None else []

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)


@dataclasses.dataclass
class Function:
    """A function: parameter count, register count and a block list.

    ``blocks[0]`` is the entry block.  ``num_regs`` is the number of virtual
    registers used; parameters occupy registers ``0 .. num_params - 1``.
    """

    name: str
    num_params: int
    num_regs: int
    blocks: List[BasicBlock] = dataclasses.field(default_factory=list)

    def block_map(self) -> Dict[str, BasicBlock]:
        """Label -> block mapping (labels must be unique)."""
        mapping = {}
        for block in self.blocks:
            if block.label in mapping:
                raise IRError(f"duplicate block label {block.label!r} in {self.name}")
            mapping[block.label] = block
        return mapping

    def new_reg(self) -> int:
        """Allocate a fresh virtual register."""
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def instructions(self) -> Iterator[Instr]:
        """All instructions across all blocks, in layout order."""
        for block in self.blocks:
            yield from block.instrs

    def branch_ids(self) -> List[BranchId]:
        """Identities of all conditional branches present in the function."""
        return [
            instr.branch_id
            for instr in self.instructions()
            if instr.op == Opcode.BR
        ]

    def predecessors(self) -> Dict[str, List[str]]:
        """Label -> list of predecessor labels."""
        preds: Dict[str, List[str]] = {block.label: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                if succ not in preds:
                    raise IRError(
                        f"{self.name}/{block.label}: branch to unknown block {succ!r}"
                    )
                preds[succ].append(block.label)
        return preds


@dataclasses.dataclass
class GlobalVar:
    """A global scalar (size 1) or array (size > 1) with optional initializer."""

    name: str
    size: int
    init: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.size < 1:
            raise IRError(f"global {self.name!r} has non-positive size {self.size}")
        if len(self.init) > self.size:
            raise IRError(
                f"global {self.name!r}: initializer longer than size {self.size}"
            )


@dataclasses.dataclass
class Module:
    """A whole program: globals plus functions.  Execution starts at ``main``."""

    name: str
    globals: List[GlobalVar] = dataclasses.field(default_factory=list)
    functions: List[Function] = dataclasses.field(default_factory=list)

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        for func in self.functions:
            if func.name == name:
                return func
        raise IRError(f"module {self.name!r} has no function {name!r}")

    def has_function(self, name: str) -> bool:
        """Whether a function with the given name exists."""
        return any(func.name == name for func in self.functions)

    def global_var(self, name: str) -> GlobalVar:
        """Look up a global by name."""
        for var in self.globals:
            if var.name == name:
                return var
        raise IRError(f"module {self.name!r} has no global {name!r}")

    def branch_ids(self) -> List[BranchId]:
        """Identities of all conditional branches in the module."""
        ids: List[BranchId] = []
        for func in self.functions:
            ids.extend(func.branch_ids())
        return ids

    def static_counts(self) -> Dict[str, int]:
        """Static instruction statistics (for reports and tests)."""
        counts = {"instructions": 0, "branches": 0, "blocks": 0, "functions": 0}
        for func in self.functions:
            counts["functions"] += 1
            counts["blocks"] += len(func.blocks)
            for instr in func.instructions():
                counts["instructions"] += 1
                if instr.op == Opcode.BR:
                    counts["branches"] += 1
        return counts
