"""CFG-form IR instructions.

Instructions reference virtual registers by integer index.  Block references
(branch and jump targets) are block *labels* (strings), resolved by the
containing :class:`~repro.ir.cfg.Function`.

Conditional branches carry a :class:`BranchId` — the stable, source-order
identity that the profiler keys its counters by.  Branch identities are
assigned by the language front end *before* optimization, mirroring the
paper's IFPROBBER, whose results "are independent of compiler optimizations,
and reflect the probabilities associated with the static source branches".
"""
from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Tuple

from repro.ir.opcodes import BinOp, Opcode, UnOp


@dataclasses.dataclass(frozen=True, order=True)
class BranchId:
    """Stable identity of a source-level conditional branch.

    ``function`` is the name of the containing function and ``index`` the
    zero-based position of the branch in the function's source order (the
    order the code generator encountered it).  The identity survives any
    optimization that does not delete the branch.
    """

    function: str
    index: int

    def __str__(self) -> str:
        return f"{self.function}#{self.index}"


@dataclasses.dataclass
class Instr:
    """A single CFG-form instruction.

    Operand meaning by opcode (``dst``/``a``/``b``/``c`` are register
    numbers unless stated otherwise):

    ======== ==========================================================
    CONST    dst, imm
    MOV      dst, a
    ADDR     dst, symbol
    FUNCADDR dst, symbol (function name)
    BIN      dst, a, b, subop (:class:`BinOp`)
    UN       dst, a, subop (:class:`UnOp`)
    SELECT   dst, a (cond), b (if true), c (if false)
    LOAD     dst, a (address)
    STORE    a (address), b (value)
    GETC     dst
    PUTC     a
    CALL     dst (or None), symbol, args
    ICALL    dst (or None), a (callable), args
    BR       a (cond), then_label, else_label, branch_id
    JMP      then_label
    RET      a (or None for ``return`` without value)
    HALT     --
    ======== ==========================================================
    """

    op: Opcode
    dst: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None
    c: Optional[int] = None
    imm: Optional[int] = None
    subop: Optional[int] = None
    symbol: Optional[str] = None
    args: Tuple[int, ...] = ()
    then_label: Optional[str] = None
    else_label: Optional[str] = None
    branch_id: Optional[BranchId] = None

    def is_terminator(self) -> bool:
        """Whether this instruction ends a basic block."""
        return self.op in (Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.HALT)

    def has_side_effects(self) -> bool:
        """Whether the instruction does more than define ``dst``.

        Side-effecting instructions may never be removed by dead-instruction
        elimination even when their result is unused.
        """
        return self.op in (
            Opcode.STORE,
            Opcode.GETC,
            Opcode.PUTC,
            Opcode.CALL,
            Opcode.ICALL,
            Opcode.BR,
            Opcode.JMP,
            Opcode.RET,
            Opcode.HALT,
        )

    def uses(self) -> List[int]:
        """Registers read by this instruction."""
        used = [r for r in (self.a, self.b, self.c) if r is not None]
        used.extend(self.args)
        return used

    def replace_uses(self, mapping: Mapping[int, int]) -> None:
        """Rewrite used registers through ``mapping`` (reg -> reg), in place."""
        if self.a is not None:
            self.a = mapping.get(self.a, self.a)
        if self.b is not None:
            self.b = mapping.get(self.b, self.b)
        if self.c is not None:
            self.c = mapping.get(self.c, self.c)
        if self.args:
            self.args = tuple(mapping.get(r, r) for r in self.args)

    def successors(self) -> List[str]:
        """Labels of the blocks this terminator may transfer control to."""
        if self.op == Opcode.BR:
            return [self.then_label, self.else_label]
        if self.op == Opcode.JMP:
            return [self.then_label]
        return []

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op.name.lower()
        if self.op == Opcode.CONST:
            return f"r{self.dst} = const {self.imm}"
        if self.op == Opcode.MOV:
            return f"r{self.dst} = r{self.a}"
        if self.op == Opcode.ADDR:
            return f"r{self.dst} = addr {self.symbol}"
        if self.op == Opcode.FUNCADDR:
            return f"r{self.dst} = funcaddr {self.symbol}"
        if self.op == Opcode.BIN:
            return f"r{self.dst} = r{self.a} {BinOp(self.subop).name.lower()} r{self.b}"
        if self.op == Opcode.UN:
            return f"r{self.dst} = {UnOp(self.subop).name.lower()} r{self.a}"
        if self.op == Opcode.SELECT:
            return f"r{self.dst} = select r{self.a} ? r{self.b} : r{self.c}"
        if self.op == Opcode.LOAD:
            return f"r{self.dst} = load [r{self.a}]"
        if self.op == Opcode.STORE:
            return f"store [r{self.a}] = r{self.b}"
        if self.op == Opcode.GETC:
            return f"r{self.dst} = getc"
        if self.op == Opcode.PUTC:
            return f"putc r{self.a}"
        if self.op in (Opcode.CALL, Opcode.ICALL):
            target = self.symbol if self.op == Opcode.CALL else f"*r{self.a}"
            arglist = ", ".join(f"r{r}" for r in self.args)
            prefix = f"r{self.dst} = " if self.dst is not None else ""
            return f"{prefix}{op} {target}({arglist})"
        if self.op == Opcode.BR:
            return (
                f"br r{self.a} ? {self.then_label} : {self.else_label}"
                f"  ; {self.branch_id}"
            )
        if self.op == Opcode.JMP:
            return f"jmp {self.then_label}"
        if self.op == Opcode.RET:
            return f"ret r{self.a}" if self.a is not None else "ret"
        if self.op == Opcode.HALT:
            return "halt"
        return op
