"""Opcode definitions for the RISC-like intermediate representation.

The IR models the RISC-level operations of the Multiflow Trace (the unit the
paper counts): three-register ALU operations, explicit loads and stores, a
``select`` operation (paper footnote 2), direct and indirect calls, and
two-way conditional branches.  Every executed operation counts as exactly one
instruction in the virtual machine.
"""
from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """All IR operations.

    The integer values are also used by the lowered (flat tuple) form that the
    virtual machine executes, so they are stable and explicitly assigned.
    """

    # Data movement / constants.
    CONST = 0       # dst <- immediate
    MOV = 1         # dst <- src
    ADDR = 2        # dst <- address of a global symbol (resolved at lowering)
    FUNCADDR = 3    # dst <- callable index of a function (for indirect calls)

    # ALU.
    BIN = 4         # dst <- a <binop> b
    UN = 5          # dst <- <unop> a
    SELECT = 6      # dst <- (cond != 0) ? a : b   (the Trace "select")

    # Memory.
    LOAD = 7        # dst <- memory[addr]
    STORE = 8       # memory[addr] <- val

    # I/O intrinsics (count as single operations, like any RISC op).
    GETC = 9        # dst <- next input byte, or -1 at end of input
    PUTC = 10       # append low byte of src to the output stream

    # Calls.
    CALL = 11       # dst <- f(args...)          direct call
    ICALL = 12      # dst <- (*freg)(args...)    indirect call

    # Terminators.
    BR = 13         # if cond != 0 goto then_block else goto else_block
    JMP = 14        # goto block
    RET = 15        # return [value]
    HALT = 16       # stop the machine


class BinOp(enum.IntEnum):
    """Binary ALU operations.  Comparisons produce 0 or 1."""

    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3     # C-style truncating division
    MOD = 4     # C-style remainder (sign follows the dividend)
    AND = 5     # bitwise
    OR = 6      # bitwise
    XOR = 7
    SHL = 8
    SHR = 9     # arithmetic shift right
    EQ = 10
    NE = 11
    LT = 12
    LE = 13
    GT = 14
    GE = 15


class UnOp(enum.IntEnum):
    """Unary ALU operations."""

    NEG = 0     # arithmetic negation
    NOT = 1     # logical not: 1 if operand == 0 else 0
    BNOT = 2    # bitwise complement


def _c_div(a: int, b: int) -> int:
    """C-style truncating integer division (raises on division by zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_mod(a: int, b: int) -> int:
    """C-style remainder: ``a - _c_div(a, b) * b`` (sign of the dividend)."""
    return a - _c_div(a, b) * b


#: Evaluation functions indexed by :class:`BinOp` value.  Shared by the
#: virtual machine and the constant folder so semantics cannot diverge.
BINOP_FUNCS = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    _c_div,
    _c_mod,
    lambda a, b: a & b,
    lambda a, b: a | b,
    lambda a, b: a ^ b,
    lambda a, b: a << b,
    lambda a, b: a >> b,
    lambda a, b: 1 if a == b else 0,
    lambda a, b: 1 if a != b else 0,
    lambda a, b: 1 if a < b else 0,
    lambda a, b: 1 if a <= b else 0,
    lambda a, b: 1 if a > b else 0,
    lambda a, b: 1 if a >= b else 0,
]

#: Evaluation functions indexed by :class:`UnOp` value.
UNOP_FUNCS = [
    lambda a: -a,
    lambda a: 1 if a == 0 else 0,
    lambda a: ~a,
]

#: Binary operators that are commutative (used by local CSE).
COMMUTATIVE_BINOPS = frozenset(
    {BinOp.ADD, BinOp.MUL, BinOp.AND, BinOp.OR, BinOp.XOR, BinOp.EQ, BinOp.NE}
)

#: Comparison operators, and the operator each one negates to
#: (used by branch simplification).
NEGATED_COMPARISON = {
    BinOp.EQ: BinOp.NE,
    BinOp.NE: BinOp.EQ,
    BinOp.LT: BinOp.GE,
    BinOp.LE: BinOp.GT,
    BinOp.GT: BinOp.LE,
    BinOp.GE: BinOp.LT,
}
