"""Disassembler for lowered (executable) programs.

Prints the flat tuple code the VM runs, with resolved branch targets and
branch identities — the view MFPixie-style tooling works at.
"""
from __future__ import annotations

from typing import Any, List, Tuple

from repro.ir.lower import LoweredFunction, LoweredProgram
from repro.ir.opcodes import BinOp, Opcode, UnOp


def _format_ins(program: LoweredProgram, ins: Tuple[Any, ...]) -> str:
    op = Opcode(ins[0])
    if op == Opcode.CONST:
        return f"const   r{ins[1]}, {ins[2]}"
    if op == Opcode.MOV:
        return f"mov     r{ins[1]}, r{ins[2]}"
    if op == Opcode.BIN:
        name = BinOp(ins[1]).name.lower()
        return f"{name:7s} r{ins[2]}, r{ins[3]}, r{ins[4]}"
    if op == Opcode.UN:
        name = UnOp(ins[1]).name.lower()
        return f"{name:7s} r{ins[2]}, r{ins[3]}"
    if op == Opcode.SELECT:
        return f"select  r{ins[1]}, r{ins[2]} ? r{ins[3]} : r{ins[4]}"
    if op == Opcode.LOAD:
        return f"load    r{ins[1]}, [r{ins[2]}]"
    if op == Opcode.STORE:
        return f"store   [r{ins[1]}], r{ins[2]}"
    if op == Opcode.GETC:
        return f"getc    r{ins[1]}"
    if op == Opcode.PUTC:
        return f"putc    r{ins[1]}"
    if op == Opcode.CALL:
        callee = program.functions[ins[1]].name
        args = ", ".join(f"r{reg}" for reg in ins[3])
        dst = f"r{ins[2]}" if ins[2] != -1 else "_"
        return f"call    {dst} = {callee}({args})"
    if op == Opcode.ICALL:
        args = ", ".join(f"r{reg}" for reg in ins[3])
        dst = f"r{ins[2]}" if ins[2] != -1 else "_"
        return f"icall   {dst} = (*r{ins[1]})({args})"
    if op == Opcode.BR:
        branch_id = program.branch_table[ins[4]]
        return f"br      r{ins[1]} ? @{ins[2]} : @{ins[3]}    ; {branch_id}"
    if op == Opcode.JMP:
        return f"jmp     @{ins[1]}"
    if op == Opcode.RET:
        return f"ret     r{ins[1]}" if ins[1] != -1 else "ret"
    if op == Opcode.HALT:
        return "halt"
    return repr(ins)  # pragma: no cover


def disassemble_function(
    program: LoweredProgram, func: LoweredFunction
) -> str:
    """One function's code with pc-prefixed lines."""
    lines: List[str] = [
        f"func {func.name} (params={func.num_params}, regs={func.num_regs}):"
    ]
    # Mark branch/jump targets so the listing is navigable.
    targets = set()
    for ins in func.code:
        op = ins[0]
        if op == int(Opcode.BR):
            targets.update((ins[2], ins[3]))
        elif op == int(Opcode.JMP):
            targets.add(ins[1])
    for pc, ins in enumerate(func.code):
        marker = "@" if pc in targets else " "
        lines.append(f"  {marker}{pc:5d}  {_format_ins(program, ins)}")
    return "\n".join(lines)


def disassemble(program: LoweredProgram) -> str:
    """The whole program: memory map plus every function."""
    lines: List[str] = [
        f"program {program.name}: {len(program.functions)} functions, "
        f"{program.memory_size} memory words, "
        f"{len(program.branch_table)} static branches"
    ]
    for symbol, address in sorted(program.symbols.items(), key=lambda kv: kv[1]):
        lines.append(f"  .data {symbol} @ {address}")
    for func in program.functions:
        lines.append("")
        lines.append(disassemble_function(program, func))
    return "\n".join(lines)
