"""A convenience builder for constructing CFG-form IR.

Used by the language code generator and by tests that construct IR directly.
"""
from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.cfg import BasicBlock, Function, IRError
from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import BinOp, Opcode, UnOp


class IRBuilder:
    """Builds instructions into the blocks of a single function.

    The builder tracks a current insertion block; emitting a terminator
    closes the block (subsequent emission into it is an error, which catches
    code-generator mistakes early).
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self._block: Optional[BasicBlock] = None
        self._label_counter = 0
        self._branch_counter = 0

    # -- block management --------------------------------------------------

    def new_label(self, hint: str = "bb") -> str:
        """Generate a fresh, unique block label."""
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        """Create a block, append it to the function, and return it."""
        block = BasicBlock(label or self.new_label())
        self.func.blocks.append(block)
        return block

    def set_block(self, block: BasicBlock) -> None:
        """Set the insertion point."""
        self._block = block

    @property
    def block(self) -> BasicBlock:
        """The current insertion block."""
        if self._block is None:
            raise IRError("no insertion block set")
        return self._block

    def block_terminated(self) -> bool:
        """Whether the current block already ends in a terminator."""
        return self.block.terminator is not None

    def _emit(self, instr: Instr) -> Instr:
        if self.block_terminated():
            raise IRError(
                f"emitting into terminated block {self.block.label!r} "
                f"of {self.func.name!r}"
            )
        self.block.instrs.append(instr)
        return instr

    # -- register allocation ------------------------------------------------

    def new_reg(self) -> int:
        """Allocate a fresh virtual register."""
        return self.func.new_reg()

    # -- straight-line instructions ------------------------------------------

    def const(self, value: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.CONST, dst=dst, imm=value))
        return dst

    def mov(self, src: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.MOV, dst=dst, a=src))
        return dst

    def addr(self, symbol: str, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.ADDR, dst=dst, symbol=symbol))
        return dst

    def funcaddr(self, symbol: str, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.FUNCADDR, dst=dst, symbol=symbol))
        return dst

    def bin(self, op: BinOp, a: int, b: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.BIN, dst=dst, a=a, b=b, subop=int(op)))
        return dst

    def un(self, op: UnOp, a: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.UN, dst=dst, a=a, subop=int(op)))
        return dst

    def select(self, cond: int, a: int, b: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.SELECT, dst=dst, a=cond, b=a, c=b))
        return dst

    def load(self, addr: int, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.LOAD, dst=dst, a=addr))
        return dst

    def store(self, addr: int, value: int) -> None:
        self._emit(Instr(Opcode.STORE, a=addr, b=value))

    def getc(self, dst: Optional[int] = None) -> int:
        dst = self.new_reg() if dst is None else dst
        self._emit(Instr(Opcode.GETC, dst=dst))
        return dst

    def putc(self, src: int) -> None:
        self._emit(Instr(Opcode.PUTC, a=src))

    def call(
        self, symbol: str, args: Sequence[int], dst: Optional[int] = None
    ) -> Optional[int]:
        self._emit(Instr(Opcode.CALL, dst=dst, symbol=symbol, args=tuple(args)))
        return dst

    def icall(
        self, callee: int, args: Sequence[int], dst: Optional[int] = None
    ) -> Optional[int]:
        self._emit(Instr(Opcode.ICALL, dst=dst, a=callee, args=tuple(args)))
        return dst

    # -- terminators ----------------------------------------------------------

    def next_branch_id(self) -> BranchId:
        """Allocate the next source-order branch identity for this function."""
        branch_id = BranchId(self.func.name, self._branch_counter)
        self._branch_counter += 1
        return branch_id

    def br(
        self,
        cond: int,
        then_label: str,
        else_label: str,
        branch_id: Optional[BranchId] = None,
    ) -> Instr:
        """Emit a conditional branch.

        A fresh source-order :class:`BranchId` is allocated unless one is
        supplied (optimization passes that re-emit a branch must preserve
        its original identity).
        """
        if branch_id is None:
            branch_id = self.next_branch_id()
        return self._emit(
            Instr(
                Opcode.BR,
                a=cond,
                then_label=then_label,
                else_label=else_label,
                branch_id=branch_id,
            )
        )

    def jmp(self, label: str) -> Instr:
        return self._emit(Instr(Opcode.JMP, then_label=label))

    def ret(self, value: Optional[int] = None) -> Instr:
        return self._emit(Instr(Opcode.RET, a=value))

    def halt(self) -> Instr:
        return self._emit(Instr(Opcode.HALT))
