"""RISC-like intermediate representation: the unit of counting in the paper.

The IR has two forms: a CFG form (basic blocks of :class:`Instr`) that the
front end produces and the optimizer transforms, and a lowered flat-tuple
form that the virtual machine executes.
"""
from repro.ir.builder import IRBuilder
from repro.ir.cfg import BasicBlock, Function, GlobalVar, IRError, Module
from repro.ir.disasm import disassemble, disassemble_function
from repro.ir.instructions import BranchId, Instr
from repro.ir.lower import LoweredFunction, LoweredProgram, lower_module
from repro.ir.opcodes import (
    BINOP_FUNCS,
    COMMUTATIVE_BINOPS,
    UNOP_FUNCS,
    BinOp,
    Opcode,
    UnOp,
)
from repro.ir.printer import format_function, format_module
from repro.ir.validate import validate_module

__all__ = [
    "BINOP_FUNCS",
    "COMMUTATIVE_BINOPS",
    "disassemble",
    "disassemble_function",
    "UNOP_FUNCS",
    "BasicBlock",
    "BinOp",
    "BranchId",
    "Function",
    "GlobalVar",
    "IRBuilder",
    "IRError",
    "Instr",
    "LoweredFunction",
    "LoweredProgram",
    "Module",
    "Opcode",
    "UnOp",
    "format_function",
    "format_module",
    "lower_module",
    "validate_module",
]
