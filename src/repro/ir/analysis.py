"""CFG analyses: edges, dominators, post-dominators, natural loops.

Used by the heuristic predictors (loop/non-loop distinction), the
trace-selection extension, the optimization passes (shared successor /
predecessor derivation instead of per-pass ad-hoc scans) and the
:mod:`repro.analysis` dataflow framework.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

from repro.ir.cfg import BasicBlock, Function
from repro.ir.opcodes import Opcode


def retarget_block(block: BasicBlock, resolve: Callable[[str], str]) -> bool:
    """Rewrite the block's terminator targets through ``resolve``.

    Returns whether any target changed.  Shared by the passes that redirect
    control-flow edges (jump threading, and any future CFG simplification)
    so edge rewriting lives in one place.
    """
    term = block.terminator
    if term is None:
        return False
    changed = False
    if term.op in (Opcode.JMP, Opcode.BR) and term.then_label is not None:
        target = resolve(term.then_label)
        if target != term.then_label:
            term.then_label = target
            changed = True
    if term.op == Opcode.BR and term.else_label is not None:
        target = resolve(term.else_label)
        if target != term.else_label:
            term.else_label = target
            changed = True
    return changed


def successor_map(func: Function) -> Dict[str, List[str]]:
    """Label -> successor labels, for every block (reachable or not)."""
    return {block.label: block.successors() for block in func.blocks}


def predecessor_map(func: Function) -> Dict[str, List[str]]:
    """Label -> predecessor labels, for every block (reachable or not).

    Unlike :meth:`repro.ir.cfg.Function.predecessors` this does not raise on
    edges to unknown labels; malformed modules are the validator's business,
    and analyses should be runnable on anything the validator accepts.
    """
    preds: Dict[str, List[str]] = {block.label: [] for block in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block.label)
    return preds


def cfg_edges(func: Function) -> List[Tuple[str, str]]:
    """All (source, target) control-flow edges, in layout order.

    A two-way branch with identical targets contributes the edge twice —
    callers that care about edge multiplicity (critical-edge checks,
    degenerate-branch detection) need to see both.
    """
    edges: List[Tuple[str, str]] = []
    for block in func.blocks:
        for succ in block.successors():
            edges.append((block.label, succ))
    return edges


def reachable_from_entry(func: Function) -> Set[str]:
    """Labels of blocks reachable from the entry block."""
    succs = successor_map(func)
    reachable: Set[str] = set()
    worklist: List[str] = [func.blocks[0].label] if func.blocks else []
    while worklist:
        label = worklist.pop()
        if label in reachable:
            continue
        reachable.add(label)
        worklist.extend(succ for succ in succs[label] if succ in succs)
    return reachable


def reachable_labels(func: Function) -> List[str]:
    """Labels reachable from entry, in reverse-postorder."""
    block_map = func.block_map()
    entry = func.blocks[0].label
    order: List[str] = []
    visited: Set[str] = set()

    def visit(label: str) -> None:
        stack = [(label, iter(block_map[label].successors()))]
        visited.add(label)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(block_map[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(entry)
    order.reverse()
    return order


def _iterative_dominators(
    order: List[str],
    entries: List[str],
    preds: Dict[str, List[str]],
) -> Dict[str, Set[str]]:
    """The classic iterative dominator dataflow over an explicit edge map.

    ``order`` lists the nodes to solve over (ideally topologically sorted
    for fast convergence); ``entries`` are the boundary nodes that dominate
    only themselves; ``preds`` gives the in-edges used for the meet.
    Shared by :func:`dominators` and :func:`postdominators`, which differ
    only in edge direction and boundary.
    """
    all_labels = set(order)
    entry_set = set(entries)
    dom: Dict[str, Set[str]] = {
        label: ({label} if label in entry_set else set(all_labels))
        for label in order
    }
    changed = True
    while changed:
        changed = False
        for label in order:
            if label in entry_set:
                continue
            pred_doms = [dom[p] for p in preds[label] if p in dom]
            if pred_doms:
                new = set.intersection(*pred_doms)
            else:
                new = set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def dominators(func: Function) -> Dict[str, Set[str]]:
    """Label -> set of labels that dominate it (including itself).

    Only reachable blocks are included.
    """
    order = reachable_labels(func)
    order_set = set(order)
    preds = {
        label: [p for p in pred_list if p in order_set]
        for label, pred_list in predecessor_map(func).items()
        if label in order_set
    }
    return _iterative_dominators(order, [order[0]], preds)


def exit_labels(func: Function) -> List[str]:
    """Labels of blocks that leave the function (``ret`` or ``halt``)."""
    exits: List[str] = []
    for block in func.blocks:
        term = block.terminator
        if term is not None and term.op in (Opcode.RET, Opcode.HALT):
            exits.append(block.label)
    return exits


def postdominators(func: Function) -> Dict[str, Set[str]]:
    """Label -> set of labels that post-dominate it (including itself).

    Computed over the reverse CFG with every exit block (``ret``/``halt``)
    as a boundary node.  A block from which no exit is reachable (an
    infinite loop) keeps the vacuous "everything post-dominates it" set;
    blocks unreachable from the entry are still included, since
    post-domination is a property of paths *to* the exit.
    """
    if not func.blocks:
        return {}
    succs = successor_map(func)
    order = [block.label for block in func.blocks]
    # Solve in reverse layout order: exits tend to come last, so walking
    # the block list backwards approximates a reverse-CFG RPO.
    order = list(reversed(order))
    return _iterative_dominators(order, exit_labels(func), succs)


def back_edges(func: Function) -> Set[Tuple[str, str]]:
    """(source, header) pairs where the edge target dominates the source —
    the back edges of natural loops."""
    dom = dominators(func)
    block_map = func.block_map()
    edges: Set[Tuple[str, str]] = set()
    for label in dom:
        for succ in block_map[label].successors():
            if succ in dom.get(label, set()):
                edges.add((label, succ))
    return edges


def loop_headers(func: Function) -> Set[str]:
    """Labels that are natural-loop headers."""
    return {header for _, header in back_edges(func)}


def natural_loop_bodies(func: Function) -> Dict[str, Set[str]]:
    """Header label -> all labels in that header's natural loop.

    Back edges sharing a header are merged into one loop, per the usual
    natural-loop definition.
    """
    preds = predecessor_map(func)
    bodies: Dict[str, Set[str]] = {}
    for source, header in back_edges(func):
        loop = bodies.setdefault(header, {header})
        worklist = [source]
        loop.add(source)
        while worklist:
            label = worklist.pop()
            if label == header:
                continue
            for pred in preds[label]:
                if pred not in loop:
                    loop.add(pred)
                    worklist.append(pred)
    return bodies


def natural_loop_blocks(func: Function) -> Set[str]:
    """All labels that belong to some natural loop body."""
    members: Set[str] = set()
    for body in natural_loop_bodies(func).values():
        members |= body
    return members
