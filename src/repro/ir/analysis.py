"""CFG analyses: dominators, back edges, natural-loop membership.

Used by the heuristic predictors (loop/non-loop distinction) and by the
trace-selection extension.
"""
from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.cfg import Function


def reachable_labels(func: Function) -> List[str]:
    """Labels reachable from entry, in reverse-postorder."""
    block_map = func.block_map()
    entry = func.blocks[0].label
    order: List[str] = []
    visited: Set[str] = set()

    def visit(label: str) -> None:
        stack = [(label, iter(block_map[label].successors()))]
        visited.add(label)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(block_map[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(entry)
    order.reverse()
    return order


def dominators(func: Function) -> Dict[str, Set[str]]:
    """Label -> set of labels that dominate it (including itself).

    Classic iterative dataflow; only reachable blocks are included.
    """
    order = reachable_labels(func)
    block_map = func.block_map()
    entry = order[0]
    preds: Dict[str, List[str]] = {label: [] for label in order}
    for label in order:
        for succ in block_map[label].successors():
            if succ in preds:
                preds[succ].append(label)

    all_labels = set(order)
    dom: Dict[str, Set[str]] = {label: set(all_labels) for label in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            pred_doms = [dom[p] for p in preds[label]]
            if pred_doms:
                new = set.intersection(*pred_doms)
            else:
                new = set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def back_edges(func: Function) -> Set[Tuple[str, str]]:
    """(source, header) pairs where the edge target dominates the source —
    the back edges of natural loops."""
    dom = dominators(func)
    block_map = func.block_map()
    edges: Set[Tuple[str, str]] = set()
    for label in dom:
        for succ in block_map[label].successors():
            if succ in dom.get(label, set()):
                edges.add((label, succ))
    return edges


def loop_headers(func: Function) -> Set[str]:
    """Labels that are natural-loop headers."""
    return {header for _, header in back_edges(func)}


def natural_loop_blocks(func: Function) -> Set[str]:
    """All labels that belong to some natural loop body."""
    block_map = func.block_map()
    preds: Dict[str, List[str]] = {block.label: [] for block in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.label)

    members: Set[str] = set()
    for source, header in back_edges(func):
        loop = {header, source}
        worklist = [source]
        while worklist:
            label = worklist.pop()
            for pred in preds[label]:
                if pred not in loop:
                    loop.add(pred)
                    worklist.append(pred)
        members |= loop
    return members
