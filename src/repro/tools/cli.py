"""repro-mf: the profile-feedback user interface for MF programs.

Subcommands::

    repro-mf run program.mf --input data.bin --stats
    repro-mf profile program.mf --dataset d1 --input data.bin --db prof.json
    repro-mf feedback program.mf --db prof.json -o program_fb.mf
    repro-mf predict program.mf --input new.bin --db prof.json
    repro-mf dynsim program.mf --input data.bin --table-size 256
    repro-mf lint program.mf
    repro-mf report --db prof.json

``profile`` accumulates branch counters into a JSON database across runs
(the IFPROBBER flow); ``feedback`` writes the counts back into the source
as ``IFPROB`` directives; ``predict`` scores the accumulated profile
against a fresh run with the paper's instructions-per-break measure.
"""
from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.compiler import CompileOptions, compile_source
from repro.lang.directives import apply_feedback
from repro.metrics.ipb import (
    branch_density,
    ipb_no_prediction,
    ipb_self_prediction,
    ipb_with_predictor,
)
from repro.opt.pipeline import OptOptions
from repro.prediction.base import ProfilePredictor
from repro.prediction.evaluate import evaluate_static
from repro.profiling.database import ProfileDatabase
from repro.vm.machine import run_program


def _compile_options(args) -> CompileOptions:
    opt = OptOptions.with_dce() if getattr(args, "dce", False) else (
        OptOptions.classical()
    )
    opt.if_conversion = getattr(args, "ifconvert", False)
    return CompileOptions(inline=getattr(args, "inline", False), opt=opt)


def _read_input(args) -> bytes:
    if args.input is None:
        return b""
    if args.input == "-":
        return sys.stdin.buffer.read()
    with open(args.input, "rb") as handle:
        return handle.read()


def _load_source(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _program_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _load_db(path: str) -> ProfileDatabase:
    if os.path.exists(path):
        return ProfileDatabase.load(path)
    return ProfileDatabase()


# -- subcommands ---------------------------------------------------------------


def cmd_run(args) -> int:
    source = _load_source(args.program)
    compiled = compile_source(
        source, name=_program_name(args.program), options=_compile_options(args)
    )
    result = run_program(compiled.lowered, input_data=_read_input(args))
    sys.stdout.buffer.write(result.output)
    sys.stdout.flush()
    if args.stats:
        print(file=sys.stderr)
        print(f"exit code:            {result.exit_code}", file=sys.stderr)
        print(f"instructions:         {result.instructions}", file=sys.stderr)
        print(f"branch executions:    {result.total_branch_execs}", file=sys.stderr)
        print(f"percent taken:        {result.percent_taken():.1%}", file=sys.stderr)
        print(f"instrs per branch:    {branch_density(result):.1f}", file=sys.stderr)
        print(f"instrs/break (none):  {ipb_no_prediction(result):.1f}",
              file=sys.stderr)
        print(f"instrs/break (self):  {ipb_self_prediction(result):.1f}",
              file=sys.stderr)
        for key, value in result.events.as_dict().items():
            print(f"{key + ':':<22}{value}", file=sys.stderr)
    return result.exit_code


def cmd_profile(args) -> int:
    source = _load_source(args.program)
    name = _program_name(args.program)
    compiled = compile_source(source, name=name, options=_compile_options(args))
    result = run_program(compiled.lowered, input_data=_read_input(args))
    database = _load_db(args.db)
    database.record(result, args.dataset)
    database.save(args.db)
    print(
        f"recorded {name}/{args.dataset}: {result.instructions} instructions, "
        f"{result.total_branch_execs} branch executions -> {args.db}"
    )
    return 0


def cmd_feedback(args) -> int:
    source = _load_source(args.program)
    name = _program_name(args.program)
    database = ProfileDatabase.load(args.db)
    profile = database.program_profile(name)
    if not len(profile):
        print(f"error: no counts recorded for {name!r} in {args.db}",
              file=sys.stderr)
        return 1
    counts = {}
    for branch_id, (executed, taken) in profile.counts.items():
        executed_int = max(int(round(executed)), 1)
        counts[branch_id] = (executed_int, min(int(round(taken)), executed_int))
    feedback_text = apply_feedback(source, counts)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(feedback_text)
        print(f"wrote {args.output} ({len(counts)} IFPROB directives)")
    else:
        sys.stdout.write(feedback_text)
    return 0


def cmd_predict(args) -> int:
    source = _load_source(args.program)
    name = _program_name(args.program)
    compiled = compile_source(source, name=name, options=_compile_options(args))
    result = run_program(compiled.lowered, input_data=_read_input(args))

    if args.db:
        database = ProfileDatabase.load(args.db)
        profile = database.program_profile(name)
        predictor_label = f"database {args.db}"
    elif compiled.feedback:
        from repro.profiling.ifprobber import profile_from_feedback

        profile = profile_from_feedback(compiled)
        predictor_label = "IFPROB directives in source"
    else:
        print("error: no --db given and the source has no IFPROB directives",
              file=sys.stderr)
        return 1

    predictor = ProfilePredictor(profile, name="feedback")
    report = evaluate_static(result, predictor)
    print(f"predictor:            {predictor_label}")
    print(f"instructions:         {result.instructions}")
    print(f"branch executions:    {report.branch_execs}")
    print(f"predicted correctly:  {report.percent_correct:.1%}")
    print(f"instrs/break (none):  {ipb_no_prediction(result):.1f}")
    print(f"instrs/break (fed):   {ipb_with_predictor(result, predictor):.1f}")
    print(f"instrs/break (self):  {ipb_self_prediction(result):.1f}")
    return 0


def cmd_dynsim(args) -> int:
    from repro.dynamic import DynamicScoreMonitor, StaticAsDynamic, default_zoo

    source = _load_source(args.program)
    name = _program_name(args.program)
    compiled = compile_source(source, name=name, options=_compile_options(args))
    models = []
    if args.db:
        database = ProfileDatabase.load(args.db)
        profile = database.program_profile(name)
        if not len(profile):
            print(f"error: no counts recorded for {name!r} in {args.db}",
                  file=sys.stderr)
            return 1
        models.append(
            StaticAsDynamic(
                ProfilePredictor(profile, name="feedback"),
                name="static-feedback",
            )
        )
    try:
        models.extend(default_zoo(args.table_size or (64, 256, 1024)))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    monitor = DynamicScoreMonitor(models, compiled.lowered.branch_table)
    result = run_program(
        compiled.lowered, input_data=_read_input(args), monitors=[monitor]
    )
    print(f"{result.instructions} instructions, "
          f"{result.total_branch_execs} branch executions")
    print(f"{'predictor':<18} {'budget(bits)':>12} {'% correct':>10} "
          f"{'instrs/mispredict':>18}")
    for score in monitor.scores(result):
        budget = "-" if score.budget_bits is None else str(score.budget_bits)
        print(f"{score.predictor:<18} {budget:>12} "
              f"{score.percent_correct:>9.1%} "
              f"{score.instructions_per_break:>18.1f}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.lint import lint_module, severity_counts

    source = _load_source(args.program)
    compiled = compile_source(
        source, name=_program_name(args.program), options=_compile_options(args)
    )
    findings = lint_module(compiled.module, min_severity=args.min_severity)
    for finding in findings:
        print(finding)
    counts = severity_counts(findings)
    summary = ", ".join(
        f"{count} {severity}{'s' if count != 1 else ''}"
        for severity, count in counts.items()
        if count
    )
    print(f"{args.program}: {summary or 'clean'}")
    failing = counts["error"] + (counts["warning"] if args.strict else 0)
    return 1 if failing else 0


def cmd_disasm(args) -> int:
    from repro.ir.disasm import disassemble

    source = _load_source(args.program)
    compiled = compile_source(
        source, name=_program_name(args.program), options=_compile_options(args)
    )
    print(disassemble(compiled.lowered))
    return 0


def cmd_report(args) -> int:
    database = ProfileDatabase.load(args.db)
    programs = database.programs()
    if not programs:
        print("database is empty")
        return 0
    for program in programs:
        print(f"{program}:")
        for dataset in database.datasets(program):
            profile = database.dataset_profile(program, dataset)
            print(
                f"  {dataset:16s} runs {profile.runs:>3}  "
                f"branches {len(profile):>5}  "
                f"executions {profile.total_executed:>12.0f}  "
                f"taken {profile.percent_taken():6.1%}"
            )
    return 0


# -- argument parsing ------------------------------------------------------------


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dce", action="store_true",
                        help="enable global dead code elimination")
    parser.add_argument("--inline", action="store_true",
                        help="inline small leaf functions")
    parser.add_argument("--ifconvert", action="store_true",
                        help="if-convert trap-free hammocks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mf",
        description="Run, profile and predict MF programs "
        "(the paper's feedback user interface).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="compile and run a program")
    run_parser.add_argument("program")
    run_parser.add_argument("--input", help="input file ('-' for stdin)")
    run_parser.add_argument("--stats", action="store_true",
                            help="print run statistics to stderr")
    _add_compile_flags(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    profile_parser = subparsers.add_parser(
        "profile", help="run and accumulate branch counters into a database"
    )
    profile_parser.add_argument("program")
    profile_parser.add_argument("--dataset", required=True)
    profile_parser.add_argument("--input", help="input file ('-' for stdin)")
    profile_parser.add_argument("--db", default="profiles.json")
    _add_compile_flags(profile_parser)
    profile_parser.set_defaults(handler=cmd_profile)

    feedback_parser = subparsers.add_parser(
        "feedback", help="insert IFPROB directives from the database"
    )
    feedback_parser.add_argument("program")
    feedback_parser.add_argument("--db", default="profiles.json")
    feedback_parser.add_argument("-o", "--output")
    feedback_parser.set_defaults(handler=cmd_feedback)

    predict_parser = subparsers.add_parser(
        "predict", help="score the accumulated profile against a fresh run"
    )
    predict_parser.add_argument("program")
    predict_parser.add_argument("--input", help="input file ('-' for stdin)")
    predict_parser.add_argument("--db",
                                help="profile database (default: use IFPROB "
                                "directives found in the source)")
    _add_compile_flags(predict_parser)
    predict_parser.set_defaults(handler=cmd_predict)

    dynsim_parser = subparsers.add_parser(
        "dynsim",
        help="simulate hardware branch predictors over one run",
    )
    dynsim_parser.add_argument("program")
    dynsim_parser.add_argument("--input", help="input file ('-' for stdin)")
    dynsim_parser.add_argument(
        "--table-size",
        type=int,
        action="append",
        metavar="N",
        help="predictor table entries, repeatable (default: 64 256 1024)",
    )
    dynsim_parser.add_argument(
        "--db",
        help="also score this profile database as a static predictor",
    )
    _add_compile_flags(dynsim_parser)
    dynsim_parser.set_defaults(handler=cmd_dynsim)

    lint_parser = subparsers.add_parser(
        "lint", help="run the IR sanitizer over the compiled program"
    )
    lint_parser.add_argument("program")
    lint_parser.add_argument(
        "--min-severity",
        choices=["error", "warning", "info"],
        default="info",
        help="lowest severity to report (default: info, i.e. everything)",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    _add_compile_flags(lint_parser)
    lint_parser.set_defaults(handler=cmd_lint)

    disasm_parser = subparsers.add_parser(
        "disasm", help="disassemble the compiled program"
    )
    disasm_parser.add_argument("program")
    _add_compile_flags(disasm_parser)
    disasm_parser.set_defaults(handler=cmd_disasm)

    report_parser = subparsers.add_parser(
        "report", help="summarize a profile database"
    )
    report_parser.add_argument("--db", default="profiles.json")
    report_parser.set_defaults(handler=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
