"""User-facing command-line tools.

The paper closes: "An important issue not covered here is the user
interface to a system that provides this feedback.  We know of no work
published in this area, nor do we know of any commercial compilers that
have offered branch direction prediction feedback as an option."
:mod:`repro.tools.cli` is that interface for MF programs: run, profile,
feed back, predict.
"""
