"""C/integer workload analogs (paper Table 2, lower half)."""
from __future__ import annotations

from repro.workloads import sourcegen
from repro.workloads.base import C, Dataset, Workload, load_program_source

# --- gcc / mfcom (the mcc compiler over source modules) -----------------------


def build_gcc() -> Workload:
    """001.gcc analog: the mcc compiler run over source modules.

    The paper compiled 19 modules and reported on 6; we generate 6 distinct
    systems-flavoured modules.
    """
    styles = ["scanner", "tables", "recursive", "commented", "numeric", "mixed"]
    datasets = [
        Dataset(
            f"module{i}",
            f"generated systems C module #{i} ({style} style)",
            sourcegen.c_module(
                seed=100 + i, functions=20 + 3 * i, style=style
            ).encode(),
        )
        for i, style in enumerate(styles, start=1)
    ]
    return Workload(
        name="gcc",
        category=C,
        description="GNU C compiler analog: the MF-written mcc compiler "
        "(lexer, parser, symbol table, pseudo-code emitter)",
        source=load_program_source("mcc.mf"),
        datasets=datasets,
    )


def build_mfcom() -> Workload:
    """mfcom analog: the same compiler front end over 'systems C' vs
    'scientific FORTRAN' flavoured source (the paper's c_metric and
    fortran_metric profiling datasets)."""
    c_metric = "\n".join(
        sourcegen.c_module(seed=200 + i, functions=16) for i in range(4)
    )
    fortran_metric = "\n".join(
        sourcegen.fortran_module(seed=300 + i, functions=20) for i in range(4)
    )
    return Workload(
        name="mfcom",
        category=C,
        description="Multiflow compiler analog: mcc over systems-C vs "
        "scientific-FORTRAN flavoured source",
        source=load_program_source("mcc.mf"),
        datasets=[
            Dataset("c_metric", "systems-oriented C-like source", c_metric.encode()),
            Dataset(
                "fortran_metric",
                "scientific subroutine source",
                fortran_metric.encode(),
            ),
        ],
    )


# --- espresso -----------------------------------------------------------------


def build_espresso() -> Workload:
    """008.espresso analog: PLA minimization over four reference PLAs."""
    datasets = [
        Dataset(
            "bca",
            "dense control PLA (few don't-cares: containment-dominated)",
            sourcegen.pla_cubes(11, 12, 100, dontcare_weight=1),
        ),
        Dataset(
            "cps",
            "sparse wide PLA (don't-care heavy: merge-dominated)",
            sourcegen.pla_cubes(22, 14, 110, dontcare_weight=6),
        ),
        Dataset(
            "ti",
            "mixed-density PLA",
            sourcegen.pla_cubes(33, 10, 100, dontcare_weight=3),
        ),
        Dataset(
            "tial",
            "large dense PLA",
            sourcegen.pla_cubes(44, 13, 105, dontcare_weight=1),
        ),
    ]
    return Workload(
        name="espresso",
        category=C,
        description="PLA optimizer analog: cube-list minimization "
        "(merge/contain passes over bit-pair sets)",
        source=load_program_source("espresso.mf"),
        datasets=datasets,
    )


# --- li -------------------------------------------------------------------------

_QUEENS_PRELUDE = """
; n-queens solution counter (SPEC 022.li queens input, board size reduced
; to keep simulated run lengths tractable)
(define abs (lambda (x) (if (< x 0) (- 0 x) x)))
(define safe (lambda (row placed dist)
  (if (null placed) 1
    (if (= (car placed) row) 0
      (if (= (abs (- (car placed) row)) dist) 0
        (safe row (cdr placed) (+ dist 1)))))))
(define tryq (lambda (col n placed)
  (if (= col n) 1
    (tryrow col n placed 0))))
(define tryrow (lambda (col n placed row)
  (if (= row n) 0
    (+ (if (safe row placed 1) (tryq (+ col 1) n (cons row placed)) 0)
       (tryrow col n placed (+ row 1))))))
"""

_KITTYV = """
; kittyv: the tomcatv mesh solver rewritten in lisp (vector grid relaxation)
(define n 16)
(define nn (* n n))
(define grid (mkvec nn 0))
(define i 0)
(while (< i nn)
  (vset grid i (% (* i 7) 97))
  (setq i (+ i 1)))
(define sweep (lambda (pass)
  (progn
    (setq i (+ n 1))
    (while (< i (- nn (+ n 1)))
      (if (= (% i n) 0) 0
        (if (= (% i n) (- n 1)) 0
          (vset grid i (/ (+ (+ (vref grid (- i 1)) (vref grid (+ i 1)))
                            (+ (vref grid (- i n)) (vref grid (+ i n)))) 4))))
      (setq i (+ i 1))))))
(define pass 0)
(while (< pass 4)
  (sweep pass)
  (setq pass (+ pass 1)))
(define total 0)
(setq i 0)
(while (< i nn)
  (setq total (+ total (vref grid i)))
  (setq i (+ i 1)))
(print total)
"""


def _sieve_lisp(limit: int) -> str:
    """Register-style lisp 'emitted by the machine-language simulator'."""
    return (
        "; sieve1: lisp produced by the pseudo-assembly-to-lisp simulator\n"
        f"(define mem (mkvec {limit} 1))\n"
        "(define r0 2)\n(define r1 0)\n(define r2 0)\n(define r3 0)\n"
        f"(while (< r0 {limit})\n"
        "  (setq r1 (vref mem r0))\n"
        "  (if (= r1 1)\n"
        "    (progn\n"
        "      (setq r2 (dbl r0))\n"
        f"      (while (< r2 {limit})\n"
        "        (vset mem r2 0)\n"
        "        (setq r2 (+ r2 r0)))\n"
        "      (setq r3 (+ r3 1)))\n"
        "    0)\n"
        "  (setq r0 (+ r0 1)))\n"
        "(print r3)\n"
    )


def build_li() -> Workload:
    """022.li analog: the MF-written Lisp interpreter over four programs.

    The paper used 8queens/9queens; our boards are 5 and 6 so that each run
    stays in the low millions of simulated operations (documented dataset
    compression — the program structure and branch behaviour are what
    matter).
    """
    datasets = [
        Dataset(
            "5queens",
            "queens solution counter, 5x5 board (paper: 8queens)",
            (_QUEENS_PRELUDE + "(print (tryq 0 5 (quote ())))\n").encode(),
        ),
        Dataset(
            "6queens",
            "queens solution counter, 6x6 board (paper: 9queens)",
            (_QUEENS_PRELUDE + "(print (tryq 0 6 (quote ())))\n").encode(),
        ),
        Dataset("kittyv", "tomcatv rewritten in lisp", _KITTYV.encode()),
        Dataset(
            "sieve1",
            "prime sieve, machine-generated register-style lisp",
            _sieve_lisp(520).encode(),
        ),
    ]
    return Workload(
        name="li",
        category=C,
        description="XLISP interpreter analog written in MF: reader, "
        "eval/apply with cascaded builtin dispatch, cell pool",
        source=load_program_source("li.mf"),
        datasets=datasets,
    )


# --- eqntott ----------------------------------------------------------------------


def build_eqntott() -> Workload:
    return Workload(
        name="eqntott",
        category=C,
        description="boolean equations to sorted truth table "
        "(DAG evaluation over all input combinations + shell sort)",
        source=load_program_source("eqntott.mf"),
        datasets=[
            Dataset(
                "add4",
                "naive sum/carry equations, 4-bit adder",
                sourcegen.adder_equations(4).encode(),
            ),
            Dataset(
                "add5",
                "naive sum/carry equations, 5-bit adder",
                sourcegen.adder_equations(5).encode(),
            ),
            Dataset(
                "add6",
                "naive sum/carry equations, 6-bit adder",
                sourcegen.adder_equations(6).encode(),
            ),
            Dataset(
                "intpri",
                "priority circuit equations",
                sourcegen.priority_equations(10).encode(),
            ),
        ],
    )


# --- spiff -------------------------------------------------------------------------


def _float_file(seed: int, lines: int, changed: int) -> bytes:
    """A pair of float-number files with a few differing lines, joined by FS."""
    import random

    rng = random.Random(seed)
    base = [f"{rng.random():.6f}" for _ in range(lines)]
    other = list(base)
    for index in rng.sample(range(lines), changed):
        other[index] = f"{rng.random():.6f}"
    return ("\n".join(base) + "\n").encode() + bytes([28]) + (
        "\n".join(other) + "\n"
    ).encode()


def _listing_file() -> bytes:
    """26/28-line directory listings with the last few lines different."""
    first = [f"-rw-r--r-- 1 user staff {100 + 7 * i} file{i:02d}.c" for i in range(26)]
    second = list(first[:23])
    second += [f"-rw-r--r-- 1 user staff {900 + i} newfile{i}.c" for i in range(5)]
    return ("\n".join(first) + "\n").encode() + bytes([28]) + (
        "\n".join(second) + "\n"
    ).encode()


def build_spiff() -> Workload:
    return Workload(
        name="spiff",
        category=C,
        description="file comparison analog: line hashing + LCS dynamic "
        "program + edit-script walk",
        source=load_program_source("spiff.mf"),
        datasets=[
            Dataset("case1", "float files, scattered diffs", _float_file(1, 160, 12)),
            Dataset("case2", "float files, few diffs", _float_file(2, 150, 4)),
            Dataset("case3", "26/28-line directory listings", _listing_file()),
        ],
    )
