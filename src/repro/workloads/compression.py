"""The compress / uncompress workload pair.

One binary, two programs (mode byte selects): the paper's point is that the
two modes share no branch behaviour.  The uncompress datasets are built by
actually running the MF compress program over the plain datasets — the same
code that will decompress them — so the pair is exact.

The "compiled image" datasets (cmprss, spice) mirror the paper's use of
Multiflow executable images as compression inputs: we serialize the lowered
code of our own compiled programs into a dense byte stream.
"""
from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.compiler import compile_source
from repro.vm.machine import run_program
from repro.workloads import sourcegen
from repro.workloads.base import C, Dataset, Workload, load_program_source


def _image_bytes(program_file: str, limit: int = 9000) -> bytes:
    """A pseudo executable image: the lowered code of a compiled MF program
    serialized to bytes (the paper compressed compiled Multiflow images)."""
    compiled = compile_source(load_program_source(program_file), name="image")
    raw: List[int] = []
    for func in compiled.lowered.functions:
        for ins in func.code:
            for field in ins:
                if isinstance(field, tuple):
                    raw.extend(field)
                else:
                    raw.append(field)
    data = bytearray()
    for value in raw:
        data.append(value & 0xFF)
        data.append((value >> 8) & 0xFF)
    return bytes(data[:limit])


def _plain_datasets() -> List[Dataset]:
    return [
        Dataset(
            "cmprssc",
            "C source of the compress program itself",
            load_program_source("compress.mf").encode(),
        ),
        Dataset(
            "cmprss",
            "compiled image of compress (binary data)",
            _image_bytes("compress.mf"),
        ),
        Dataset(
            "long",
            "reference text data (English-like)",
            sourcegen.english_text(5, 2600).encode(),
        ),
        Dataset(
            "spicef",
            "FORTRAN-flavoured source of spice",
            sourcegen.fortran_module(900, functions=40).encode(),
        ),
        Dataset(
            "spice",
            "compiled image of spice (binary data)",
            _image_bytes("spice.mf"),
        ),
    ]


@lru_cache(maxsize=None)
def _compressed(data: bytes) -> bytes:
    """Compress ``data`` by running the MF compress program in the VM."""
    compiled = compile_source(load_program_source("compress.mf"), name="compress")
    result = run_program(compiled.lowered, input_data=b"C" + data)
    return result.output


def build_compress() -> Workload:
    datasets = [
        Dataset(ds.name, ds.description, b"C" + ds.data)
        for ds in _plain_datasets()
    ]
    return Workload(
        name="compress",
        category=C,
        description="UNIX compress analog: 12-bit LZW, compression mode",
        source=load_program_source("compress.mf"),
        datasets=datasets,
    )


def build_uncompress() -> Workload:
    datasets = [
        Dataset(
            ds.name,
            f"{ds.description} (LZW-compressed)",
            b"D" + _compressed(ds.data),
        )
        for ds in _plain_datasets()
    ]
    return Workload(
        name="uncompress",
        category=C,
        description="UNIX compress analog: 12-bit LZW, decompression mode "
        "(same binary as compress, mode switch set to decompress)",
        source=load_program_source("compress.mf"),
        datasets=datasets,
    )
