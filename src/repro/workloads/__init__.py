"""Workload analogs of the paper's Table 2 program/dataset sample base."""
from repro.workloads.base import (
    C,
    FORTRAN,
    Dataset,
    Workload,
    encode_ints,
    load_program_source,
)
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    multi_dataset_workloads,
    workload_names,
)

__all__ = [
    "C",
    "FORTRAN",
    "Dataset",
    "Workload",
    "all_workloads",
    "encode_ints",
    "get_workload",
    "load_program_source",
    "multi_dataset_workloads",
    "workload_names",
]
