"""The workload registry: every program of the paper's Table 2 by name."""
from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import Workload

#: Factories in the paper's Table 2 order (FORTRAN/FP first, then C/integer).
_FACTORY_NAMES: List[str] = [
    "spice2g6",
    "doduc",
    "nasa7",
    "matrix300",
    "fpppp",
    "tomcatv",
    "lfk",
    "gcc",
    "espresso",
    "li",
    "eqntott",
    "compress",
    "uncompress",
    "mfcom",
    "spiff",
]


def _factories() -> Dict[str, Callable[[], Workload]]:
    # Imported lazily: dataset construction (e.g. uncompress) may compile
    # and run programs, which should not happen at import time.
    from repro.workloads import circuits, compression, spec_fp, spec_int

    return {
        "spice2g6": circuits.build_spice,
        "doduc": spec_fp.build_doduc,
        "nasa7": spec_fp.build_nasa7,
        "matrix300": spec_fp.build_matrix300,
        "fpppp": spec_fp.build_fpppp,
        "tomcatv": spec_fp.build_tomcatv,
        "lfk": spec_fp.build_lfk,
        "gcc": spec_int.build_gcc,
        "espresso": spec_int.build_espresso,
        "li": spec_int.build_li,
        "eqntott": spec_int.build_eqntott,
        "compress": compression.build_compress,
        "uncompress": compression.build_uncompress,
        "mfcom": spec_int.build_mfcom,
        "spiff": spec_int.build_spiff,
    }


_CACHE: Dict[str, Workload] = {}


def workload_names() -> List[str]:
    """All workload names, in the paper's Table 2 order."""
    return list(_FACTORY_NAMES)


def get_workload(name: str) -> Workload:
    """Build (and cache) one workload by name."""
    if name not in _CACHE:
        factories = _factories()
        if name not in factories:
            raise KeyError(
                f"unknown workload {name!r}; known: {', '.join(_FACTORY_NAMES)}"
            )
        _CACHE[name] = factories[name]()
    return _CACHE[name]


def all_workloads() -> List[Workload]:
    """Every workload, built."""
    return [get_workload(name) for name in workload_names()]


def multi_dataset_workloads() -> List[Workload]:
    """Workloads with 2+ datasets (the cross-prediction experiments)."""
    return [wl for wl in all_workloads() if len(wl.datasets) >= 2]
