"""FORTRAN/floating-point workload analogs (paper Table 2, upper half).

These are the programs whose branch behaviour the paper expected to be very
predictable.  Most read no dataset (matrix300, nasa7, tomcatv, LFK); doduc
and fpppp read small parameter datasets.
"""
from __future__ import annotations

from repro.workloads.base import (
    FORTRAN,
    Dataset,
    Workload,
    encode_ints,
    load_program_source,
)


def build_matrix300() -> Workload:
    return Workload(
        name="matrix300",
        category=FORTRAN,
        description="300x300 linear matrix solver analog (general matmul "
        "with constant transposition knobs + triangular solve)",
        source=load_program_source("matrix300.mf"),
        datasets=[
            Dataset("default", "program does not read a dataset", b""),
        ],
    )


def build_tomcatv() -> Workload:
    return Workload(
        name="tomcatv",
        category=FORTRAN,
        description="mesh generation and solver analog (SOR relaxation "
        "sweeps over a structured grid)",
        source=load_program_source("tomcatv.mf"),
        datasets=[
            Dataset("default", "program does not read a dataset", b""),
        ],
    )


def build_nasa7() -> Workload:
    return Workload(
        name="nasa7",
        category=FORTRAN,
        description="7 synthetic numeric kernels analog",
        source=load_program_source("nasa7.mf"),
        datasets=[
            Dataset("default", "program does not read a dataset", b""),
        ],
    )


def build_lfk() -> Workload:
    return Workload(
        name="lfk",
        category=FORTRAN,
        description="Livermore FORTRAN Kernels analog (short-vector loops)",
        source=load_program_source("lfk.mf"),
        datasets=[
            Dataset("default", "program does not read a dataset", b""),
        ],
    )


def build_doduc() -> Workload:
    source = load_program_source("doduc.mf")
    return Workload(
        name="doduc",
        category=FORTRAN,
        description="nuclear reactor modelling analog (time-stepped "
        "diffusion + table interpolation + control logic)",
        source=source,
        datasets=[
            Dataset("tiny", "short run, low power", encode_ints(12, 350, 3)),
            Dataset("small", "medium run", encode_ints(30, 500, 5)),
            Dataset("ref", "reference run", encode_ints(55, 640, 8)),
        ],
    )


def build_fpppp() -> Workload:
    source = load_program_source("fpppp.mf")
    return Workload(
        name="fpppp",
        category=FORTRAN,
        description="quantum chemistry analog: giant straight-line integral "
        "blocks driven over atom pairs",
        source=source,
        datasets=[
            Dataset("4atoms", "4-atom system (6 pairs/pass)", encode_ints(4)),
            Dataset("8atoms", "8-atom system (28 pairs/pass)", encode_ints(8)),
        ],
    )
