"""The spice2g6 workload: nine netlists over four device-model modules.

Dataset design follows the paper's Table 2: five example circuits from the
Spice 2G user's guide, two 4-bit adders (BJT "ttl" and FET "mosfet" gate
variants) and two greycode-counter transients of very different lengths.
The mix deliberately makes datasets exercise *different modules* — the
property the paper blamed for spice2g6 being the hardest program to predict
across datasets.
"""
from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.base import FORTRAN, Dataset, Workload, load_program_source
from repro.workloads.sourcegen import netlist

Device = Tuple[int, int, int, int, int]

R, DIODE, BJT, FET = 1, 2, 3, 4


def _resistor_chain(rng: random.Random, nnodes: int) -> List[Device]:
    return [
        (R, i - 1, i, 0, rng.randint(50, 400))
        for i in range(2, nnodes)
    ]


def _diode_ladder(rng: random.Random, nnodes: int) -> List[Device]:
    devices = _resistor_chain(rng, nnodes)
    for i in range(2, nnodes, 2):
        devices.append((DIODE, i, max(i - 2, 0), 0, rng.randint(20, 90)))
    return devices


def _bjt_gates(rng: random.Random, nnodes: int) -> List[Device]:
    devices = []
    for i in range(2, nnodes):
        devices.append((R, i - 1, i, 0, rng.randint(80, 300)))
        devices.append((BJT, i, (i % (nnodes - 1)) + 1, 0, rng.randint(20, 80)))
    return devices


def _fet_gates(rng: random.Random, nnodes: int) -> List[Device]:
    devices = []
    for i in range(2, nnodes):
        devices.append((R, i - 1, i, 0, rng.randint(80, 300)))
        devices.append((FET, i, (i % (nnodes - 1)) + 1, 0, rng.randint(10, 40)))
    return devices


def _mixed(rng: random.Random, nnodes: int) -> List[Device]:
    devices = _resistor_chain(rng, nnodes)
    for i in range(2, nnodes, 3):
        devices.append((DIODE, i, 0, 0, rng.randint(20, 60)))
    for i in range(3, nnodes, 4):
        devices.append((BJT, i, (i + 1) % nnodes, 0, rng.randint(30, 70)))
    return devices


def build_spice() -> Workload:
    rng = random.Random(1992)
    datasets = [
        Dataset(
            "circuit1",
            "resistive divider DC sweep (user's guide ex. 1)",
            netlist(1, 8, _resistor_chain(rng, 8), 25),
        ),
        Dataset(
            "circuit2",
            "small diode clipper, very short run",
            netlist(1, 6, _diode_ladder(rng, 6), 2),
        ),
        Dataset(
            "circuit3",
            "diode ladder DC sweep",
            netlist(1, 14, _diode_ladder(rng, 14), 30),
        ),
        Dataset(
            "circuit4",
            "mixed R/D/BJT network DC sweep",
            netlist(1, 18, _mixed(rng, 18), 30),
        ),
        Dataset(
            "circuit5",
            "BJT amplifier transient",
            netlist(2, 12, _bjt_gates(rng, 12), 60),
        ),
        Dataset(
            "add_bjt",
            "4-bit all-nand adder, ttl (BJT) gates, DC",
            netlist(1, 26, _bjt_gates(rng, 26), 45),
        ),
        Dataset(
            "add_fet",
            "4-bit all-nand adder, mosfet (FET) gates, DC",
            netlist(1, 26, _fet_gates(rng, 26), 45),
        ),
        Dataset(
            "greysmall",
            "greycode counter transient, smaller input",
            netlist(2, 16, _fet_gates(rng, 16), 25),
        ),
        Dataset(
            "greybig",
            "greycode counter transient, larger input",
            netlist(2, 16, _fet_gates(rng, 16), 320),
        ),
    ]
    return Workload(
        name="spice2g6",
        category=FORTRAN,  # FORTRAN in the paper's Table 2; Figures 2a/3a
        # give it its own panel, which the experiments replicate.
        description="electronic design simulator analog: nodal solver with "
        "R/diode/BJT/FET device-model modules, DC and transient analyses",
        source=load_program_source("spice.mf"),
        datasets=datasets,
    )
