"""Deterministic generators for textual datasets.

Several workloads consume program text (the mcc compiler, compress) or
structured text (eqntott equations, spice netlists).  Everything here is
seeded, so datasets are bit-for-bit reproducible.
"""
from __future__ import annotations

import random
from typing import List, Sequence

_C_FRAGMENTS = [
    """int {name}(p, n) {{
    int i = 0; int acc = 0;
    while (i < n) {{
        acc = acc + peek(p + i) * {m1};
        if (acc > {lim}) {{ acc = acc % {mod}; }}
        i = i + 1;
    }}
    return acc;
}}""",
    """int {name}(key, size) {{
    int idx = key % size;
    while (probe(idx) != 0) {{
        if (probe(idx) == key) {{ return idx; }}
        idx = idx + 1;
        if (idx >= size) {{ idx = 0; }}
    }}
    insert(idx, key);
    return idx;
}}""",
    """int {name}(a, b) {{
    int best = 0; int i = 0;
    for (i = 0; i < {m1}; i = i + 1) {{
        int cand = score(a, i) - cost(b, i);
        if (cand > best && valid(i)) {{ best = cand; }}
    }}
    return best;
}}""",
    """int {name}(node) {{
    if (node == 0) {{ return 0; }}
    int left = {prev}(child(node, 0));
    int right = {prev}(child(node, 1));
    if (left > right) {{ return left + 1; }}
    return right + 1;
}}""",
    """int {name}(buf, len) {{
    int state = {m1}; int i = 0;
    while (i < len) {{
        int c = peek(buf + i);
        if (c == {m2}) {{ state = state * 2 + 1; }}
        else {{ if (c > {m3}) {{ state = state + c; }} else {{ state = state - 1; }} }}
        i = i + 1;
    }}
    return state;
}}""",
]

_FORTRAN_FRAGMENTS = [
    """int {name}(n) {{
    int i = 0; int s = 0;
    for (i = 0; i < n; i = i + 1) {{
        s = s + a(i) * b(i) + c(i) * {m1};
    }}
    return s;
}}""",
    """int {name}(n, m) {{
    int i = 0; int j = 0; int acc = 0;
    for (i = 0; i < n; i = i + 1) {{
        for (j = 0; j < m; j = j + 1) {{
            acc = acc + geta(i, j) * getb(j, i);
        }}
        seta(i, acc / {m1});
    }}
    return acc;
}}""",
    """int {name}(n) {{
    int k = 1;
    while (k < n) {{
        setx(k, getx(k - 1) * {m1} + gety(k) / {m2});
        k = k + 1;
    }}
    return getx(n - 1);
}}""",
]

_WORDS = (
    "the quick brown fox jumps over lazy dog branch predict direction "
    "profile compiler schedule trace instruction parallel speculative "
    "dataset program static dynamic hardware pipeline cache memory breaks "
    "control conditional run previous feedback count taken history"
).split()


#: Module styles: which fragment templates a module draws from, plus
#: formatting quirks.  Different styles exercise different parts of the
#: compiler (comment skipping, literal scanning, nested expressions, symbol
#: interning), so modules are not interchangeable as predictors.
C_STYLES = {
    "scanner": {"fragments": [0, 4], "comments": 1, "exprs": 0},
    "tables": {"fragments": [1], "comments": 0, "exprs": 6},
    "recursive": {"fragments": [3, 2], "comments": 0, "exprs": 0},
    "commented": {"fragments": [0, 1, 2, 3, 4], "comments": 6, "exprs": 0},
    "numeric": {"fragments": [2, 4], "comments": 0, "exprs": 14},
    "mixed": {"fragments": [0, 1, 2, 3, 4], "comments": 2, "exprs": 3},
}


def _const_table(rng: random.Random, name: str, entries: int) -> str:
    """A function that is one long folded-constant expression chain."""
    lines = [f"int {name}() {{", "    int acc = 0;"]
    for _ in range(entries):
        terms = " + ".join(str(rng.randint(1, 9999)) for _ in range(6))
        lines.append(f"    acc = acc + {terms};")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)


def c_module(seed: int, functions: int = 24, style: str = "mixed") -> str:
    """A 'systems C'-flavoured module for the compiler workloads."""
    rng = random.Random(seed)
    spec = C_STYLES[style]
    parts: List[str] = [f"// module m{seed}: generated systems code ({style})"]
    parts.append(f"int table_size = {rng.randint(64, 512)};")
    prev = "depth0"
    for index in range(functions):
        for _ in range(spec["comments"]):
            words = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(4, 12)))
            parts.append(f"/* {words} */")
        template = _C_FRAGMENTS[rng.choice(spec["fragments"])]
        name = f"fn{seed}_{index}"
        parts.append(
            template.format(
                name=name,
                prev=prev,
                m1=rng.randint(2, 64),
                m2=rng.randint(32, 126),
                m3=rng.randint(32, 126),
                lim=rng.randint(1000, 100000),
                mod=rng.choice([997, 4093, 65521]),
            )
        )
        prev = name
    for index in range(spec["exprs"]):
        parts.append(_const_table(rng, f"tab{seed}_{index}", rng.randint(8, 20)))
    return "\n\n".join(parts) + "\n"


def fortran_module(seed: int, functions: int = 28) -> str:
    """A 'scientific FORTRAN'-flavoured module (loop-heavy, regular)."""
    rng = random.Random(seed)
    parts: List[str] = [f"// module f{seed}: generated scientific code"]
    for index in range(functions):
        template = rng.choice(_FORTRAN_FRAGMENTS)
        parts.append(
            template.format(
                name=f"sub{seed}_{index}",
                m1=rng.randint(2, 32),
                m2=rng.randint(2, 8),
            )
        )
    return "\n\n".join(parts) + "\n"


_MF_FRAGMENTS = [
    # Scan-accumulate with a clamp guard (the C fragment family 0).
    """func {name}(n) {{
    var i = 0; var acc = {m1};
    while (i < n) {{
        acc = acc + getc() * {m2};
        if (acc > {lim}) {{ acc = acc % {mod}; }}
        i = i + 1;
    }}
    return acc;
}}""",
    # Nested regular loops (the FORTRAN family).
    """func {name}(n, m) {{
    var i; var j; var acc = 0;
    for (i = 0; i < n; i += 1) {{
        for (j = 0; j < m; j += 1) {{
            acc = acc + (i * {m1} + j) % {mod};
        }}
    }}
    return acc;
}}""",
    # Self-recursion with a max-of-children shape (C family 3).
    """func {name}(node) {{
    if (node <= 0) {{ return 0; }}
    var left = {name}(node - {m1});
    var right = {name}(node - {m2});
    if (left > right) {{ return left + 1; }}
    return right + 1;
}}""",
    # Character-driven state machine with an if/else ladder (C family 4).
    """func {name}(len) {{
    var state = {m1}; var i = 0;
    while (i < len) {{
        var c = getc();
        if (c == {m3}) {{ state = state * 2 + 1; }}
        else {{ if (c > {m2}) {{ state = state + c; }}
                else {{ state = state - 1; }} }}
        i = i + 1;
    }}
    return state;
}}""",
    # Bounded probe loop with wraparound (C family 1).
    """func {name}(key, size) {{
    var idx = key % {mod};
    var steps = 0;
    while (steps < size) {{
        if (idx == key) {{ return idx; }}
        idx = idx + 1;
        if (idx >= size) {{ idx = 0; }}
        steps = steps + 1;
    }}
    return idx;
}}""",
]

#: Parameter counts of the fragments above, used to synthesize call sites.
_MF_ARITY = [1, 2, 1, 1, 2]


def mf_module(seed: int, functions: int = 5) -> str:
    """A seeded, always-valid MF module for compiler property tests.

    Exercises the same control shapes as the C/FORTRAN dataset fragments
    (scan loops, clamps, nested loops, recursion, if/else ladders, probe
    loops with wraparound) but in MF syntax, so the optimizer and the
    analysis framework can be property-tested over realistic CFGs rather
    than hand-picked examples.
    """
    rng = random.Random(seed)
    parts: List[str] = [f"// module p{seed}: generated MF control-flow shapes"]
    knob = rng.randint(0, 3)
    parts.append(f"var knob = {knob};")
    calls: List[str] = []
    for index in range(functions):
        which = rng.randrange(len(_MF_FRAGMENTS))
        name = f"gen{seed % 1000}_{index}"
        parts.append(
            _MF_FRAGMENTS[which].format(
                name=name,
                m1=rng.randint(2, 9),
                m2=rng.randint(1, 90),
                m3=rng.randint(91, 200),
                lim=rng.randint(100, 4000),
                mod=rng.randint(7, 97),
            )
        )
        args = ", ".join(
            str(rng.randint(1, 6)) for _ in range(_MF_ARITY[which])
        )
        calls.append(f"    total = total + {name}({args});")
    parts.append(
        "func main() {\n"
        "    var total = 0;\n"
        + "\n".join(calls)
        + "\n    if (knob) { total = total + 1; }\n"
        "    return total;\n"
        "}"
    )
    return "\n\n".join(parts) + "\n"


def english_text(seed: int, words: int) -> str:
    """English-like filler text (the compress 'reference data' analog)."""
    rng = random.Random(seed)
    output: List[str] = []
    line_len = 0
    for _ in range(words):
        word = rng.choice(_WORDS)
        output.append(word)
        line_len += len(word) + 1
        if line_len > 68:
            output.append("\n")
            line_len = 0
        else:
            output.append(" ")
    return "".join(output)


def adder_equations(bits: int) -> str:
    """Naive ripple-carry sum/carry equations for a ``bits``-bit adder
    (the eqntott add4/add5/add6 datasets)."""
    lines: List[str] = []
    carry = None
    for k in range(bits):
        a, b = f"a{k}", f"b{k}"
        if carry is None:
            lines.append(f"c{k} = {a} & {b} ;")
            lines.append(f"s{k} = ({a} | {b}) & !({a} & {b}) ;")
        else:
            lines.append(f"c{k} = ({a} & {b}) | ({carry} & ({a} | {b})) ;")
            # Sum bit = odd parity of (a, b, carry): exactly one, or all three.
            lines.append(
                f"s{k} = (({a} | {b} | {carry}) & "
                f"!(({a} & {b}) | ({a} & {carry}) | ({b} & {carry}))) "
                f"| ({a} & {b} & {carry}) ;"
            )
        carry = f"c{k}"
    return "\n".join(lines) + "\n"


def priority_equations(inputs: int) -> str:
    """Priority-encoder equations (the eqntott intpri dataset)."""
    lines: List[str] = []
    for k in range(inputs):
        higher = " & ".join(f"!i{j}" for j in range(k + 1, inputs))
        if higher:
            lines.append(f"p{k} = i{k} & {higher} ;")
        else:
            lines.append(f"p{k} = i{k} ;")
    any_terms = " | ".join(f"i{j}" for j in range(inputs))
    lines.append(f"anyv = {any_terms} ;")
    return "\n".join(lines) + "\n"


def pla_cubes(
    seed: int, ninputs: int, ncubes: int, dontcare_weight: int = 1
) -> bytes:
    """A random single-output PLA in the espresso workload's byte format.

    ``dontcare_weight`` sets the density: higher values produce sparser
    cubes (more ``-`` positions), which merge aggressively and steer the
    minimizer through different passes than dense PLAs do.
    """
    rng = random.Random(seed)
    population = [0, 1, 1, 0] + [2] * dontcare_weight
    data = bytearray([ninputs, ncubes & 255, ncubes >> 8])
    for _ in range(ncubes):
        for _ in range(ninputs):
            data.append(rng.choice(population))
        data.append(1)
    return bytes(data)


def netlist(mode: int, nnodes: int, devices: Sequence[tuple], steps: int) -> bytes:
    """Encode a spice netlist as the ASCII-integer stream spice.mf reads."""
    values = [mode, nnodes, len(devices)]
    for device in devices:
        values.extend(device)
    values.append(steps)
    return ("\n".join(str(value) for value in values) + "\n").encode()
