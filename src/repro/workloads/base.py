"""Workload definitions: a program (MF source) plus its datasets.

Each workload is an analog of one program from the paper's Table 2 — a real
program written in the MF language, executed by the VM over several input
datasets.  The input to a run is a byte stream (read with ``getc``); dataset
generators are deterministic (seeded), so every number in the experiments is
reproducible.
"""
from __future__ import annotations

import dataclasses
import os
from typing import Dict, List

#: Directory holding the .mf program sources.
PROGRAMS_DIR = os.path.join(os.path.dirname(__file__), "programs")

#: Workload categories, matching the paper's two charts per figure.
FORTRAN = "fortran"  # FORTRAN / floating-point analogs (Figures 1a, 2a, 3a)
C = "c"              # C / integer analogs (Figures 1b, 2b, 3b)


def load_program_source(filename: str) -> str:
    """Read an MF program from the bundled ``programs/`` directory."""
    path = os.path.join(PROGRAMS_DIR, filename)
    with open(path) as handle:
        return handle.read()


@dataclasses.dataclass(frozen=True)
class Dataset:
    """One input dataset for a workload."""

    name: str
    description: str
    data: bytes


@dataclasses.dataclass
class Workload:
    """A program and its datasets (one row of the paper's Table 2)."""

    name: str
    category: str
    description: str
    source: str
    datasets: List[Dataset]

    def __post_init__(self) -> None:
        if self.category not in (FORTRAN, C):
            raise ValueError(f"bad category {self.category!r}")
        names = [dataset.name for dataset in self.datasets]
        if len(set(names)) != len(names):
            raise ValueError(f"workload {self.name!r} has duplicate dataset names")
        if not self.datasets:
            raise ValueError(f"workload {self.name!r} has no datasets")

    def dataset_names(self) -> List[str]:
        return [dataset.name for dataset in self.datasets]

    def dataset(self, name: str) -> Dataset:
        for dataset in self.datasets:
            if dataset.name == name:
                return dataset
        raise KeyError(f"workload {self.name!r} has no dataset {name!r}")

    def dataset_map(self) -> Dict[str, Dataset]:
        return {dataset.name: dataset for dataset in self.datasets}


def encode_ints(*values: int) -> bytes:
    """Encode integers as ASCII decimal lines (the common input format)."""
    return "".join(f"{value}\n" for value in values).encode()
