"""Trace selection over profiled CFGs (the paper's motivating use).

Trace scheduling [Fisher 81] picks *traces* — likely-executed linear paths
through the CFG — and schedules each as if it were straight-line code, with
compensation at the off-trace exits.  Branch predictions decide which
successor a trace follows, so the quality of static prediction directly
bounds the candidate-set size the scheduler sees.  This module implements
the selection step: grow traces by always following each conditional
branch's predicted direction.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.ir.cfg import Function
from repro.ir.opcodes import Opcode
from repro.prediction.base import StaticPredictor


@dataclasses.dataclass
class Trace:
    """One selected trace: a path of block labels within a function."""

    function: str
    blocks: List[str]

    def __len__(self) -> int:
        return len(self.blocks)


def select_traces(func: Function, predictor: StaticPredictor) -> List[Trace]:
    """Partition the function's blocks into traces.

    Traces are seeded in layout order from still-unplaced blocks and grown
    forward: an unconditional jump follows its target, a conditional branch
    follows the *predicted* direction.  Growth stops at returns, halts,
    already-placed blocks, or when the predicted successor is the trace's
    own head (a backedge: the loop body becomes one trace).
    """
    block_map = func.block_map()
    placed: Set[str] = set()
    traces: List[Trace] = []
    for seed in func.blocks:
        if seed.label in placed:
            continue
        blocks: List[str] = []
        current = seed
        while current is not None and current.label not in placed:
            placed.add(current.label)
            blocks.append(current.label)
            successor = _predicted_successor(current, predictor)
            current = block_map.get(successor) if successor else None
        traces.append(Trace(function=func.name, blocks=blocks))
    return traces


def _predicted_successor(block, predictor: StaticPredictor) -> Optional[str]:
    term = block.terminator
    if term is None:
        return None
    if term.op == Opcode.JMP:
        return term.then_label
    if term.op == Opcode.BR:
        taken = predictor.predict(term.branch_id)
        return term.then_label if taken else term.else_label
    return None


def trace_instruction_counts(func: Function, traces: List[Trace]) -> Dict[int, int]:
    """Trace index -> static instruction count along the trace."""
    block_map = func.block_map()
    return {
        index: sum(len(block_map[label].instrs) for label in trace.blocks)
        for index, trace in enumerate(traces)
    }
