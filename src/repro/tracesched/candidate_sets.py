"""Expected candidate-set sizes along selected traces.

The paper motivates everything with the candidate set: "the compiler must
look at a large group of instructions in order to use the machine's
resources well".  Given a trace and a *target* run's branch statistics, the
expected number of instructions the scheduler can usefully consider is

    E[useful] = sum over instructions i of P(control reaches i on-trace)

where the survival probability decays at each conditional branch by the
probability the branch actually goes the way the trace assumed.  Good
predictions keep survival high; a mispredicted-at-50% branch halves
everything after it.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.ir.cfg import Function
from repro.ir.opcodes import Opcode
from repro.profiling.branch_profile import BranchProfile
from repro.tracesched.trace_selection import Trace


@dataclasses.dataclass
class CandidateSetReport:
    """Candidate-set statistics for one function's traces."""

    function: str
    #: per-trace expected useful instruction counts
    expected_useful: List[float]
    #: per-trace static instruction counts
    static_lengths: List[int]

    @property
    def best_expected(self) -> float:
        return max(self.expected_useful) if self.expected_useful else 0.0

    @property
    def mean_expected(self) -> float:
        if not self.expected_useful:
            return 0.0
        return sum(self.expected_useful) / len(self.expected_useful)


def expected_useful_length(
    func: Function, trace: Trace, profile: BranchProfile
) -> float:
    """Expected on-trace instructions, under the target profile.

    The trace was built assuming each branch goes in some direction; the
    profile says how often it actually does.  Unknown branches are assumed
    50/50 (the conservative choice).
    """
    block_map = func.block_map()
    survival = 1.0
    expected = 0.0
    for position, label in enumerate(trace.blocks):
        block = block_map[label]
        expected += survival * len(block.instrs)
        term = block.terminator
        if term is None or term.op != Opcode.BR:
            continue
        if position + 1 >= len(trace.blocks):
            break
        counts = profile.counts.get(term.branch_id)
        if counts is None or counts[0] == 0:
            stay_probability = 0.5
        else:
            executed, taken = counts
            taken_fraction = taken / executed
            next_label = trace.blocks[position + 1]
            if next_label == term.then_label:
                stay_probability = taken_fraction
            else:
                stay_probability = 1.0 - taken_fraction
        survival *= stay_probability
    return expected


def candidate_set_report(
    func: Function, traces: List[Trace], profile: BranchProfile
) -> CandidateSetReport:
    """Candidate-set statistics for every trace of a function."""
    block_map = func.block_map()
    return CandidateSetReport(
        function=func.name,
        expected_useful=[
            expected_useful_length(func, trace, profile) for trace in traces
        ],
        static_lengths=[
            sum(len(block_map[label].instrs) for label in trace.blocks)
            for trace in traces
        ],
    )


def compare_predictors(
    func: Function,
    profile: BranchProfile,
    predictors: Dict[str, "StaticPredictor"],
) -> Dict[str, CandidateSetReport]:
    """Candidate-set reports per predictor (the ablation the paper implies:
    better predictions -> longer useful traces)."""
    from repro.tracesched.trace_selection import select_traces

    return {
        name: candidate_set_report(func, select_traces(func, predictor), profile)
        for name, predictor in predictors.items()
    }
