"""Trace selection and candidate-set analysis (extension: the paper's
motivating ILP-compiler use of static branch prediction)."""
from repro.tracesched.candidate_sets import (
    CandidateSetReport,
    candidate_set_report,
    compare_predictors,
    expected_useful_length,
)
from repro.tracesched.trace_selection import (
    Trace,
    select_traces,
    trace_instruction_counts,
)

__all__ = [
    "CandidateSetReport",
    "Trace",
    "candidate_set_report",
    "compare_predictors",
    "expected_useful_length",
    "select_traces",
    "trace_instruction_counts",
]
