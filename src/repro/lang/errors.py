"""Front-end error type with source positions."""
from __future__ import annotations


class LangError(Exception):
    """A lexical, syntactic or semantic error in MF source."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)
