"""AST node definitions for the MF language."""
from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


@dataclasses.dataclass
class Node:
    """Base class carrying a source line for error messages."""

    line: int


# -- expressions ------------------------------------------------------------


@dataclasses.dataclass
class IntLit(Node):
    value: int


@dataclasses.dataclass
class Name(Node):
    """A bare identifier (variable reference)."""

    ident: str


@dataclasses.dataclass
class FuncRef(Node):
    """``&f`` — the address of a function, used for indirect calls."""

    ident: str


@dataclasses.dataclass
class Index(Node):
    """``a[i]`` — element of a global array."""

    array: str
    index: "Expr"


@dataclasses.dataclass
class Unary(Node):
    """``-x``, ``!x`` or ``~x``."""

    op: str
    operand: "Expr"


@dataclasses.dataclass
class Binary(Node):
    """Any binary operator, including short-circuit ``&&`` and ``||``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclasses.dataclass
class Call(Node):
    """Direct call ``f(a, b)`` or builtin call (``getc``, ``putc``)."""

    func: str
    args: List["Expr"]


@dataclasses.dataclass
class IndirectCall(Node):
    """Call through a computed value: ``v(a, b)`` or ``table[i](a)``."""

    callee: "Expr"
    args: List["Expr"]


Expr = (IntLit, Name, FuncRef, Index, Unary, Binary, Call, IndirectCall)


# -- statements ---------------------------------------------------------------


@dataclasses.dataclass
class VarDecl(Node):
    """``var x;`` / ``var x = e;`` — local (in a function) or global scalar."""

    ident: str
    init: Optional["Expr"]
    const_init: Optional[int] = None  # used for globals (must be constant)


@dataclasses.dataclass
class Assign(Node):
    """``lvalue op= expr`` where op= is ``=``, ``+=``, ...; lvalue is a
    name or array element."""

    target: "Expr"  # Name or Index
    op: str  # "=", "+=", ...
    value: "Expr"


@dataclasses.dataclass
class ExprStmt(Node):
    """An expression evaluated for effect (a call)."""

    expr: "Expr"


@dataclasses.dataclass
class If(Node):
    cond: "Expr"
    then_body: List["Stmt"]
    else_body: List["Stmt"]


@dataclasses.dataclass
class While(Node):
    cond: "Expr"
    body: List["Stmt"]


@dataclasses.dataclass
class DoWhile(Node):
    body: List["Stmt"]
    cond: "Expr"


@dataclasses.dataclass
class For(Node):
    init: Optional["Stmt"]
    cond: Optional["Expr"]
    step: Optional["Stmt"]
    body: List["Stmt"]


@dataclasses.dataclass
class SwitchArm(Node):
    """One ``case N:`` (value set) or ``default:`` arm; C-style fallthrough."""

    values: Optional[List[int]]  # None for default
    body: List["Stmt"]


@dataclasses.dataclass
class Switch(Node):
    scrutinee: "Expr"
    arms: List[SwitchArm]


@dataclasses.dataclass
class Break(Node):
    pass


@dataclasses.dataclass
class Continue(Node):
    pass


@dataclasses.dataclass
class Return(Node):
    value: Optional["Expr"]


@dataclasses.dataclass
class Halt(Node):
    """``halt;`` — stop the machine immediately."""


Stmt = (
    VarDecl,
    Assign,
    ExprStmt,
    If,
    While,
    DoWhile,
    For,
    Switch,
    Break,
    Continue,
    Return,
    Halt,
)


# -- top level -----------------------------------------------------------------


@dataclasses.dataclass
class ArrDecl(Node):
    """``arr a[N];`` / ``arr a[N] = {…};`` — a global array."""

    ident: str
    size: int
    init: Tuple[int, ...]


@dataclasses.dataclass
class FuncDecl(Node):
    ident: str
    params: List[str]
    body: List["Stmt"]


@dataclasses.dataclass
class ProgramAST(Node):
    """A whole source file."""

    globals: List[Node]  # VarDecl (with const_init) and ArrDecl
    functions: List[FuncDecl]
    directives: List[str]
