"""Lexer for the MF language.

Comments are ``//`` to end of line and ``/* ... */``.  Comments beginning
with ``//!MF!`` are *directive comments* (the paper's compiler-directive
channel); their text is collected and returned alongside the token stream so
that IFPROB profile-feedback directives can be parsed from source.
"""
from __future__ import annotations

from typing import List, Tuple

from repro.lang.errors import LangError
from repro.lang.tokens import KEYWORDS, MULTI_CHAR_OPS, SINGLE_CHAR_OPS, Token

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> Tuple[List[Token], List[str]]:
    """Tokenize MF source; returns ``(tokens, directive_comments)``.

    The token list always ends with a single ``eof`` token.
    """
    tokens: List[Token] = []
    directives: List[str] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def error(message: str) -> LangError:
        return LangError(message, line, col)

    while pos < length:
        ch = source[pos]

        if ch == "\n":
            pos += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            pos += 1
            col += 1
            continue

        if source.startswith("//", pos):
            end = source.find("\n", pos)
            end = length if end == -1 else end
            text = source[pos:end]
            if text.startswith("//!MF!"):
                directives.append(text[len("//!MF!"):].strip())
            col += end - pos
            pos = end
            continue

        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[pos : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            pos = end + 2
            continue

        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                if pos == start + 2:
                    raise error("malformed hex literal")
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos])
            tokens.append(Token("int", value, line, col))
            col += pos - start
            continue

        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += pos - start
            continue

        if ch == "'":
            start = pos
            pos += 1
            if pos >= length:
                raise error("unterminated character literal")
            if source[pos] == "\\":
                pos += 1
                if pos >= length or source[pos] not in _ESCAPES:
                    raise error("bad escape in character literal")
                value = _ESCAPES[source[pos]]
                pos += 1
            else:
                value = ord(source[pos])
                pos += 1
            if pos >= length or source[pos] != "'":
                raise error("unterminated character literal")
            pos += 1
            tokens.append(Token("int", value, line, col))
            col += pos - start
            continue

        matched = False
        for op in MULTI_CHAR_OPS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line, col))
                pos += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue

        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token("op", ch, line, col))
            pos += 1
            col += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", None, line, col))
    return tokens, directives
