"""Recursive-descent parser for the MF language.

Grammar summary::

    program   := item*
    item      := 'var' IDENT ('=' const)? ';'
               | 'arr' IDENT '[' const ']' ('=' '{' const (',' const)* ','? '}')? ';'
               | 'func' IDENT '(' (IDENT (',' IDENT)*)? ')' block
    block     := '{' stmt* '}'
    stmt      := 'var' IDENT ('=' expr)? ';'
               | 'if' '(' expr ')' body ('else' body)?
               | 'while' '(' expr ')' body
               | 'do' body 'while' '(' expr ')' ';'
               | 'for' '(' simple? ';' expr? ';' simple? ')' body
               | 'switch' '(' expr ')' '{' arm* '}'
               | 'break' ';' | 'continue' ';' | 'return' expr? ';' | 'halt' ';'
               | block | simple ';'
    arm       := ('case' const (',' const)* | 'default') ':' stmt*
    body      := block | stmt
    simple    := lvalue ('=' | '+=' | ...) expr | postfix-call

Expressions use C-like precedence.  ``&&`` and ``||`` short-circuit (the code
generator lowers each to its own conditional branch, as the paper's compiler
did).  ``&f`` takes the address of function ``f`` for indirect calls.
"""
from __future__ import annotations

from typing import List

from repro.lang import ast_nodes as ast
from repro.lang.errors import LangError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.ProgramAST`."""

    def __init__(self, tokens: List[Token], directives: List[str]):
        self.tokens = tokens
        self.directives = directives
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.cur
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str) -> LangError:
        return LangError(message, self.cur.line, self.cur.col)

    def expect_op(self, text: str) -> Token:
        if not self.cur.is_op(text):
            raise self.error(f"expected {text!r}, found {self.cur.describe()}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.cur.is_keyword(text):
            raise self.error(f"expected {text!r}, found {self.cur.describe()}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            raise self.error(f"expected identifier, found {self.cur.describe()}")
        return self.advance().value

    def accept_op(self, text: str) -> bool:
        if self.cur.is_op(text):
            self.advance()
            return True
        return False

    def accept_keyword(self, text: str) -> bool:
        if self.cur.is_keyword(text):
            self.advance()
            return True
        return False

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        globals_: List[ast.Node] = []
        functions: List[ast.FuncDecl] = []
        while self.cur.kind != "eof":
            if self.cur.is_keyword("var"):
                globals_.append(self._parse_global_var())
            elif self.cur.is_keyword("arr"):
                globals_.append(self._parse_arr_decl())
            elif self.cur.is_keyword("func"):
                functions.append(self._parse_func())
            else:
                raise self.error(
                    f"expected 'var', 'arr' or 'func', found {self.cur.describe()}"
                )
        return ast.ProgramAST(
            line=1, globals=globals_, functions=functions,
            directives=list(self.directives),
        )

    def _parse_const(self) -> int:
        negative = self.cur.is_op("-")
        if negative:
            self.advance()
        if self.cur.kind != "int":
            raise self.error(
                f"expected integer constant, found {self.cur.describe()}"
            )
        value = self.advance().value
        return -value if negative else value

    def _parse_global_var(self) -> ast.VarDecl:
        line = self.cur.line
        self.expect_keyword("var")
        ident = self.expect_ident()
        const_init = 0
        if self.accept_op("="):
            const_init = self._parse_const()
        self.expect_op(";")
        return ast.VarDecl(line=line, ident=ident, init=None, const_init=const_init)

    def _parse_arr_decl(self) -> ast.ArrDecl:
        line = self.cur.line
        self.expect_keyword("arr")
        ident = self.expect_ident()
        self.expect_op("[")
        size = self._parse_const()
        self.expect_op("]")
        init: List[int] = []
        if self.accept_op("="):
            self.expect_op("{")
            if not self.cur.is_op("}"):
                init.append(self._parse_const())
                while self.accept_op(","):
                    if self.cur.is_op("}"):
                        break
                    init.append(self._parse_const())
            self.expect_op("}")
        self.expect_op(";")
        if size < 1:
            raise LangError(f"array {ident!r} must have positive size", line, 0)
        if len(init) > size:
            raise LangError(f"array {ident!r} initializer too long", line, 0)
        return ast.ArrDecl(line=line, ident=ident, size=size, init=tuple(init))

    def _parse_func(self) -> ast.FuncDecl:
        line = self.cur.line
        self.expect_keyword("func")
        ident = self.expect_ident()
        self.expect_op("(")
        params: List[str] = []
        if not self.cur.is_op(")"):
            params.append(self.expect_ident())
            while self.accept_op(","):
                params.append(self.expect_ident())
        self.expect_op(")")
        body = self._parse_block()
        return ast.FuncDecl(line=line, ident=ident, params=params, body=body)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> List[ast.Node]:
        self.expect_op("{")
        stmts: List[ast.Node] = []
        while not self.cur.is_op("}"):
            if self.cur.kind == "eof":
                raise self.error("unterminated block")
            stmts.append(self._parse_stmt())
        self.expect_op("}")
        return stmts

    def _parse_body(self) -> List[ast.Node]:
        """A statement body: either a block or a single statement."""
        if self.cur.is_op("{"):
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_stmt(self) -> ast.Node:
        token = self.cur
        if token.is_keyword("var"):
            line = token.line
            self.advance()
            ident = self.expect_ident()
            init = None
            if self.accept_op("="):
                init = self._parse_expr()
            self.expect_op(";")
            return ast.VarDecl(line=line, ident=ident, init=init)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            line = token.line
            self.advance()
            self.expect_op("(")
            cond = self._parse_expr()
            self.expect_op(")")
            body = self._parse_body()
            return ast.While(line=line, cond=cond, body=body)
        if token.is_keyword("do"):
            line = token.line
            self.advance()
            body = self._parse_body()
            self.expect_keyword("while")
            self.expect_op("(")
            cond = self._parse_expr()
            self.expect_op(")")
            self.expect_op(";")
            return ast.DoWhile(line=line, body=body, cond=cond)
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(line=token.line)
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.cur.is_op(";"):
                value = self._parse_expr()
            self.expect_op(";")
            return ast.Return(line=token.line, value=value)
        if token.is_keyword("halt"):
            self.advance()
            self.expect_op(";")
            return ast.Halt(line=token.line)
        if token.is_op("{"):
            # A bare block introduces no scope in MF; flatten via If(1).
            line = token.line
            body = self._parse_block()
            return ast.If(
                line=line, cond=ast.IntLit(line=line, value=1),
                then_body=body, else_body=[],
            )
        stmt = self._parse_simple()
        self.expect_op(";")
        return stmt

    def _parse_if(self) -> ast.If:
        line = self.cur.line
        self.expect_keyword("if")
        self.expect_op("(")
        cond = self._parse_expr()
        self.expect_op(")")
        then_body = self._parse_body()
        else_body: List[ast.Node] = []
        if self.accept_keyword("else"):
            if self.cur.is_keyword("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body()
        return ast.If(line=line, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_for(self) -> ast.For:
        line = self.cur.line
        self.expect_keyword("for")
        self.expect_op("(")
        init = None if self.cur.is_op(";") else self._parse_simple()
        self.expect_op(";")
        cond = None if self.cur.is_op(";") else self._parse_expr()
        self.expect_op(";")
        step = None if self.cur.is_op(")") else self._parse_simple()
        self.expect_op(")")
        body = self._parse_body()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    def _parse_switch(self) -> ast.Switch:
        line = self.cur.line
        self.expect_keyword("switch")
        self.expect_op("(")
        scrutinee = self._parse_expr()
        self.expect_op(")")
        self.expect_op("{")
        arms: List[ast.SwitchArm] = []
        seen_default = False
        while not self.cur.is_op("}"):
            arm_line = self.cur.line
            if self.accept_keyword("case"):
                values = [self._parse_const()]
                while self.accept_op(","):
                    values.append(self._parse_const())
                self.expect_op(":")
            elif self.accept_keyword("default"):
                if seen_default:
                    raise self.error("duplicate 'default' arm")
                seen_default = True
                values = None
                self.expect_op(":")
            else:
                raise self.error(
                    f"expected 'case' or 'default', found {self.cur.describe()}"
                )
            body: List[ast.Node] = []
            while not (
                self.cur.is_op("}")
                or self.cur.is_keyword("case")
                or self.cur.is_keyword("default")
            ):
                if self.cur.kind == "eof":
                    raise self.error("unterminated switch")
                body.append(self._parse_stmt())
            arms.append(ast.SwitchArm(line=arm_line, values=values, body=body))
        self.expect_op("}")
        return ast.Switch(line=line, scrutinee=scrutinee, arms=arms)

    def _parse_simple(self) -> ast.Node:
        """An assignment or a call used as a statement."""
        line = self.cur.line
        expr = self._parse_expr()
        for op in _ASSIGN_OPS:
            if self.cur.is_op(op):
                self.advance()
                if not isinstance(expr, (ast.Name, ast.Index)):
                    raise self.error("assignment target must be a name or element")
                value = self._parse_expr()
                return ast.Assign(line=line, target=expr, op=op, value=value)
        if not isinstance(expr, (ast.Call, ast.IndirectCall)):
            raise self.error("expression statement must be a call")
        return ast.ExprStmt(line=line, expr=expr)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Node:
        return self._parse_binary(1)

    def _parse_binary(self, min_prec: int) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self.cur
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.value)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line=token.line, op=token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Node:
        token = self.cur
        if token.is_op("-") or token.is_op("!") or token.is_op("~"):
            self.advance()
            operand = self._parse_unary()
            if token.value == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(line=token.line, value=-operand.value)
            return ast.Unary(line=token.line, op=token.value, operand=operand)
        if token.is_op("&"):
            self.advance()
            ident = self.expect_ident()
            return ast.FuncRef(line=token.line, ident=ident)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expr = self._parse_primary()
        while True:
            if self.cur.is_op("("):
                line = self.cur.line
                self.advance()
                args: List[ast.Node] = []
                if not self.cur.is_op(")"):
                    args.append(self._parse_expr())
                    while self.accept_op(","):
                        args.append(self._parse_expr())
                self.expect_op(")")
                if isinstance(expr, ast.Name):
                    # Direct vs indirect is decided by semantic analysis.
                    expr = ast.Call(line=line, func=expr.ident, args=args)
                else:
                    expr = ast.IndirectCall(line=line, callee=expr, args=args)
            elif self.cur.is_op("["):
                line = self.cur.line
                if not isinstance(expr, ast.Name):
                    raise self.error("only named arrays can be indexed")
                self.advance()
                index = self._parse_expr()
                self.expect_op("]")
                expr = ast.Index(line=line, array=expr.ident, index=index)
            else:
                return expr

    def _parse_primary(self) -> ast.Node:
        token = self.cur
        if token.kind == "int":
            self.advance()
            return ast.IntLit(line=token.line, value=token.value)
        if token.kind == "ident":
            self.advance()
            return ast.Name(line=token.line, ident=token.value)
        if token.is_op("("):
            self.advance()
            expr = self._parse_expr()
            self.expect_op(")")
            return expr
        raise self.error(f"expected expression, found {token.describe()}")


def parse_source(source: str) -> ast.ProgramAST:
    """Tokenize and parse MF source text."""
    tokens, directives = tokenize(source)
    return Parser(tokens, directives).parse_program()
