"""The MF language front end: lexer, parser, semantic analysis, codegen."""
from repro.lang.ast_nodes import ProgramAST
from repro.lang.codegen import generate_module
from repro.lang.directives import (
    apply_feedback,
    format_directives,
    parse_directives,
    strip_feedback,
)
from repro.lang.errors import LangError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_source
from repro.lang.sema import BUILTINS, SemaInfo, analyze

__all__ = [
    "BUILTINS",
    "LangError",
    "ProgramAST",
    "SemaInfo",
    "analyze",
    "apply_feedback",
    "format_directives",
    "generate_module",
    "parse_directives",
    "parse_source",
    "strip_feedback",
    "tokenize",
]
