"""IFPROB compiler directives: the profile-feedback channel.

The paper's compiler accepted directives such as ``C!MF! IFPROB(32543, 20, 0)``
attached to a branch, produced by a utility that read the accumulated branch
count database.  Our equivalent is a comment directive keyed by the stable
:class:`BranchId` (function name + source-order index)::

    //!MF! IFPROB(eval, 12, 105000, 3200)

meaning: branch #12 of function ``eval`` executed 105000 times, of which the
condition was true 3200 times.  The lexer collects ``//!MF!`` comments; this
module parses them into a branch->counts mapping and renders the mapping back
into source text (the "feed the counts back into the source" utility).
"""
from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.ir.instructions import BranchId
from repro.lang.errors import LangError

_IFPROB_RE = re.compile(
    r"^IFPROB\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*,\s*(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)$"
)


def parse_directives(texts: Iterable[str]) -> Dict[BranchId, Tuple[int, int]]:
    """Parse directive comment texts into ``{BranchId: (executed, taken)}``.

    Unknown directives raise; duplicate IFPROBs for one branch accumulate
    (matching the accumulate-across-runs database semantics).
    """
    counts: Dict[BranchId, Tuple[int, int]] = {}
    for text in texts:
        text = text.strip()
        if not text:
            continue
        match = _IFPROB_RE.match(text)
        if match is None:
            raise LangError(f"unrecognized compiler directive: {text!r}")
        function, index, executed, taken = match.groups()
        branch_id = BranchId(function, int(index))
        executed = int(executed)
        taken = int(taken)
        if taken > executed:
            raise LangError(
                f"IFPROB for {branch_id}: taken {taken} exceeds executed {executed}"
            )
        old_exec, old_taken = counts.get(branch_id, (0, 0))
        counts[branch_id] = (old_exec + executed, old_taken + taken)
    return counts


def format_directives(counts: Dict[BranchId, Tuple[int, int]]) -> str:
    """Render branch counts as directive comment lines (sorted, stable)."""
    lines: List[str] = []
    for branch_id in sorted(counts):
        executed, taken = counts[branch_id]
        lines.append(
            f"//!MF! IFPROB({branch_id.function}, {branch_id.index}, "
            f"{executed}, {taken})"
        )
    return "\n".join(lines)


def apply_feedback(source: str, counts: Dict[BranchId, Tuple[int, int]]) -> str:
    """Insert (or replace) IFPROB directives in MF source text.

    Existing IFPROB directive lines are removed first, so feeding back twice
    does not double-count; the fresh block is prepended.
    """
    kept = [
        line
        for line in source.splitlines()
        if not line.lstrip().startswith("//!MF! IFPROB(")
    ]
    header = format_directives(counts)
    body = "\n".join(kept)
    if header:
        return header + "\n" + body + ("\n" if not body.endswith("\n") else "")
    return body


def strip_feedback(source: str) -> str:
    """Remove all IFPROB directive lines from source text."""
    return apply_feedback(source, {})
