"""Token definitions for the MF language."""
from __future__ import annotations

import dataclasses

#: Reserved words.
KEYWORDS = frozenset(
    {
        "var",
        "arr",
        "func",
        "if",
        "else",
        "while",
        "do",
        "for",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "return",
        "halt",
    }
)

#: Multi-character operators, longest first (order matters to the lexer).
MULTI_CHAR_OPS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
)

#: Single-character operators and punctuation.
SINGLE_CHAR_OPS = "+-*/%&|^~!<>=(){}[];:,"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"int"``, ``"ident"``, ``"keyword"``, ``"op"`` or
    ``"eof"``.  ``value`` holds the integer value, identifier text, keyword
    text or operator text respectively.
    """

    kind: str
    value: object
    line: int
    col: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.value == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.value == text

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.value!r}"
