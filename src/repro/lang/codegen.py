"""Code generation: MF AST -> CFG-form IR.

Lowering decisions that matter to the experiments (they determine where
conditional branches appear, which is what the paper measures):

* ``&&`` and ``||`` short-circuit, so each operand test becomes its own
  conditional branch with its own :class:`BranchId` — like the C compilers
  of the paper's era.
* ``switch`` is lowered to a *cascade* of conditional branches, one per case
  value, exactly as the paper describes its compiler doing ("our compiler
  turns these into a set of linear or cascaded conditional branches").
* Simple two-armed ``if`` statements that assign the same local variable are
  converted to a branchless ``select`` operation (paper footnote 2: the Trace
  front ends did this, suppressing a few branches).  Only trap-free operand
  expressions (no division, no memory access, no calls) are converted.
* ``!`` in a branch condition flips the branch rather than materializing a
  value; constant conditions (``while (1)``) emit no branch at all.

Branch identities are allocated in emission order within each function,
which is deterministic and source-driven; they are the stable keys the
profile database uses across compilations, like the paper's IFPROBBER.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.builder import IRBuilder
from repro.ir.cfg import Function, GlobalVar, Module
from repro.ir.opcodes import BinOp, UnOp
from repro.lang import ast_nodes as ast
from repro.lang.errors import LangError
from repro.lang.sema import BUILTINS, SemaInfo, analyze

_BINOP_MAP = {
    "+": BinOp.ADD,
    "-": BinOp.SUB,
    "*": BinOp.MUL,
    "/": BinOp.DIV,
    "%": BinOp.MOD,
    "&": BinOp.AND,
    "|": BinOp.OR,
    "^": BinOp.XOR,
    "<<": BinOp.SHL,
    ">>": BinOp.SHR,
    "==": BinOp.EQ,
    "!=": BinOp.NE,
    "<": BinOp.LT,
    "<=": BinOp.LE,
    ">": BinOp.GT,
    ">=": BinOp.GE,
}

_COMPOUND_OPS = {
    "+=": BinOp.ADD,
    "-=": BinOp.SUB,
    "*=": BinOp.MUL,
    "/=": BinOp.DIV,
    "%=": BinOp.MOD,
    "&=": BinOp.AND,
    "|=": BinOp.OR,
    "^=": BinOp.XOR,
    "<<=": BinOp.SHL,
    ">>=": BinOp.SHR,
}

#: Binary operators safe to evaluate unconditionally (select conversion).
_TRAP_FREE_BINOPS = frozenset(_BINOP_MAP) - {"/", "%"}


def generate_module(
    program: ast.ProgramAST,
    name: str,
    info: Optional[SemaInfo] = None,
    enable_select: bool = True,
) -> Module:
    """Generate a :class:`Module` from an analyzed program AST."""
    if info is None:
        info = analyze(program)
    module = Module(name=name)
    for decl in program.globals:
        if isinstance(decl, ast.VarDecl):
            init = (decl.const_init,) if decl.const_init else ()
            module.globals.append(GlobalVar(decl.ident, 1, init))
        else:
            module.globals.append(GlobalVar(decl.ident, decl.size, decl.init))
    for func in program.functions:
        generator = _FunctionGen(func, info, enable_select)
        module.functions.append(generator.run())
    return module


class _LoopContext:
    """Break/continue targets for one enclosing loop or switch."""

    def __init__(self, break_label: str, continue_label: Optional[str]):
        self.break_label = break_label
        self.continue_label = continue_label  # None for switches


class _FunctionGen:
    def __init__(self, decl: ast.FuncDecl, info: SemaInfo, enable_select: bool):
        self.decl = decl
        self.info = info
        self.enable_select = enable_select
        local_names = info.locals_by_function[decl.ident]
        self.func = Function(
            name=decl.ident,
            num_params=len(decl.params),
            num_regs=len(local_names),
        )
        self.builder = IRBuilder(self.func)
        self.local_regs: Dict[str, int] = {
            name: reg for reg, name in enumerate(local_names)
        }
        self.loop_stack: List[_LoopContext] = []

    def error(self, message: str, node: ast.Node) -> LangError:
        return LangError(f"in {self.decl.ident!r}: {message}", node.line)

    def run(self) -> Function:
        entry = self.builder.add_block("entry")
        self.builder.set_block(entry)
        self.gen_stmts(self.decl.body)
        if not self.builder.block_terminated():
            self.builder.ret(None)
        return self.func

    # -- statements ----------------------------------------------------------

    def gen_stmts(self, stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            if self.builder.block_terminated():
                # Unreachable code after return/break/...: keep generating
                # into a fresh block so branch IDs stay stable; the optimizer
                # removes it.
                dead = self.builder.add_block(self.builder.new_label("dead"))
                self.builder.set_block(dead)
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ast.Node) -> None:
        builder = self.builder
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                value = self.gen_expr(stmt.init)
                builder.mov(value, dst=self.local_regs[stmt.ident])
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr_for_effect(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self.gen_switch(stmt)
        elif isinstance(stmt, ast.Break):
            builder.jmp(self.loop_stack[-1].break_label)
        elif isinstance(stmt, ast.Continue):
            target = next(
                ctx.continue_label
                for ctx in reversed(self.loop_stack)
                if ctx.continue_label is not None
            )
            builder.jmp(target)
        elif isinstance(stmt, ast.Return):
            value = None if stmt.value is None else self.gen_expr(stmt.value)
            builder.ret(value)
        elif isinstance(stmt, ast.Halt):
            builder.halt()
        else:  # pragma: no cover - sema admits only known nodes
            raise self.error(f"cannot generate {type(stmt).__name__}", stmt)

    def gen_assign(self, stmt: ast.Assign) -> None:
        builder = self.builder
        target = stmt.target
        if isinstance(target, ast.Name):
            name = target.ident
            if name in self.local_regs:
                dst = self.local_regs[name]
                if stmt.op == "=":
                    value = self.gen_expr(stmt.value)
                    builder.mov(value, dst=dst)
                else:
                    value = self.gen_expr(stmt.value)
                    builder.bin(_COMPOUND_OPS[stmt.op], dst, value, dst=dst)
            else:  # global scalar
                addr = builder.addr(name)
                if stmt.op == "=":
                    value = self.gen_expr(stmt.value)
                else:
                    old = builder.load(addr)
                    rhs = self.gen_expr(stmt.value)
                    value = builder.bin(_COMPOUND_OPS[stmt.op], old, rhs)
                builder.store(addr, value)
        else:  # array element
            base = builder.addr(target.array)
            index = self.gen_expr(target.index)
            addr = builder.bin(BinOp.ADD, base, index)
            if stmt.op == "=":
                value = self.gen_expr(stmt.value)
            else:
                old = builder.load(addr)
                rhs = self.gen_expr(stmt.value)
                value = builder.bin(_COMPOUND_OPS[stmt.op], old, rhs)
            builder.store(addr, value)

    def gen_if(self, stmt: ast.If) -> None:
        if self.enable_select and self._try_select(stmt):
            return
        builder = self.builder
        then_block = builder.add_block(builder.new_label("then"))
        join_label = builder.new_label("join")
        if stmt.else_body:
            else_block = builder.add_block(builder.new_label("else"))
            self.gen_cond(stmt.cond, then_block.label, else_block.label)
        else:
            self.gen_cond(stmt.cond, then_block.label, join_label)
        builder.set_block(then_block)
        self.gen_stmts(stmt.then_body)
        then_done = builder.block_terminated()
        if not then_done:
            builder.jmp(join_label)
        if stmt.else_body:
            builder.set_block(else_block)
            self.gen_stmts(stmt.else_body)
            if not builder.block_terminated():
                builder.jmp(join_label)
        join_block = builder.add_block(join_label)
        builder.set_block(join_block)

    def _try_select(self, stmt: ast.If) -> bool:
        """Convert ``if (c) x = e1; [else x = e2;]`` to a ``select``.

        Returns True when the conversion applied.  Both arms must assign the
        same *local* scalar with ``=`` and both value expressions must be
        trap-free (evaluating the unchosen side must be safe): no calls, no
        memory or I/O access, no division.
        """
        then_assign = self._sole_local_assign(stmt.then_body)
        if then_assign is None:
            return False
        if stmt.else_body:
            else_assign = self._sole_local_assign(stmt.else_body)
            if else_assign is None:
                return False
            if else_assign.target.ident != then_assign.target.ident:
                return False
            else_value: Optional[ast.Node] = else_assign.value
        else:
            else_value = None
        if not _selectable(then_assign.value, self.local_regs):
            return False
        if else_value is not None and not _selectable(else_value, self.local_regs):
            return False
        builder = self.builder
        cond = self.gen_expr(stmt.cond)
        true_value = self.gen_expr(then_assign.value)
        dst = self.local_regs[then_assign.target.ident]
        false_value = dst if else_value is None else self.gen_expr(else_value)
        result = builder.select(cond, true_value, false_value)
        builder.mov(result, dst=dst)
        return True

    def _sole_local_assign(self, body: List[ast.Node]) -> Optional[ast.Assign]:
        if len(body) != 1:
            return None
        stmt = body[0]
        if not isinstance(stmt, ast.Assign) or stmt.op != "=":
            return None
        if not isinstance(stmt.target, ast.Name):
            return None
        if stmt.target.ident not in self.local_regs:
            return None
        return stmt

    def gen_while(self, stmt: ast.While) -> None:
        builder = self.builder
        head = builder.add_block(builder.new_label("while.head"))
        builder.jmp(head.label)
        builder.set_block(head)
        body_label = builder.new_label("while.body")
        end_label = builder.new_label("while.end")
        body_block = builder.add_block(body_label)
        # Condition is evaluated in the head block (backedge returns here).
        builder.set_block(head)
        self.gen_cond(stmt.cond, body_label, end_label)
        builder.set_block(body_block)
        self.loop_stack.append(_LoopContext(end_label, head.label))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        if not builder.block_terminated():
            builder.jmp(head.label)
        end_block = builder.add_block(end_label)
        builder.set_block(end_block)

    def gen_do_while(self, stmt: ast.DoWhile) -> None:
        builder = self.builder
        body_block = builder.add_block(builder.new_label("do.body"))
        builder.jmp(body_block.label)
        builder.set_block(body_block)
        cond_label = builder.new_label("do.cond")
        end_label = builder.new_label("do.end")
        self.loop_stack.append(_LoopContext(end_label, cond_label))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        if not builder.block_terminated():
            builder.jmp(cond_label)
        cond_block = builder.add_block(cond_label)
        builder.set_block(cond_block)
        self.gen_cond(stmt.cond, body_block.label, end_label)
        end_block = builder.add_block(end_label)
        builder.set_block(end_block)

    def gen_for(self, stmt: ast.For) -> None:
        builder = self.builder
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head = builder.add_block(builder.new_label("for.head"))
        builder.jmp(head.label)
        body_label = builder.new_label("for.body")
        step_label = builder.new_label("for.step")
        end_label = builder.new_label("for.end")
        builder.set_block(head)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, end_label)
        else:
            builder.jmp(body_label)
        body_block = builder.add_block(body_label)
        builder.set_block(body_block)
        self.loop_stack.append(_LoopContext(end_label, step_label))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        if not builder.block_terminated():
            builder.jmp(step_label)
        step_block = builder.add_block(step_label)
        builder.set_block(step_block)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        builder.jmp(head.label)
        end_block = builder.add_block(end_label)
        builder.set_block(end_block)

    def gen_switch(self, stmt: ast.Switch) -> None:
        """Lower to a cascade of equality tests, preserving fallthrough."""
        builder = self.builder
        scrutinee = self.gen_expr(stmt.scrutinee)
        # Keep the scrutinee in a dedicated temp so arm bodies cannot
        # disturb it (tests all execute before any body runs, but the
        # register could alias a local).
        scrutinee = builder.mov(scrutinee)
        end_label = builder.new_label("switch.end")

        body_labels = [builder.new_label("switch.arm") for _ in stmt.arms]
        default_label = end_label
        for arm, label in zip(stmt.arms, body_labels):
            if arm.values is None:
                default_label = label

        # Test cascade: one conditional branch per case value.
        for arm, label in zip(stmt.arms, body_labels):
            if arm.values is None:
                continue
            for value in arm.values:
                const = builder.const(value)
                test = builder.bin(BinOp.EQ, scrutinee, const)
                next_label = builder.new_label("switch.test")
                builder.br(test, label, next_label)
                next_block = builder.add_block(next_label)
                builder.set_block(next_block)
        builder.jmp(default_label)

        # Arm bodies, in source order, with fallthrough.
        self.loop_stack.append(_LoopContext(end_label, None))
        for position, (arm, label) in enumerate(zip(stmt.arms, body_labels)):
            block = builder.add_block(label)
            builder.set_block(block)
            self.gen_stmts(arm.body)
            if not builder.block_terminated():
                if position + 1 < len(stmt.arms):
                    builder.jmp(body_labels[position + 1])
                else:
                    builder.jmp(end_label)
        self.loop_stack.pop()
        end_block = builder.add_block(end_label)
        builder.set_block(end_block)

    # -- conditions --------------------------------------------------------

    def gen_cond(self, expr: ast.Node, true_label: str, false_label: str) -> None:
        """Generate control flow for a boolean context.

        Short-circuit operators expand to branch cascades; ``!`` swaps the
        targets; integer constants become unconditional jumps.
        """
        builder = self.builder
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = builder.new_label("and.rhs")
            self.gen_cond(expr.left, mid, false_label)
            mid_block = builder.add_block(mid)
            builder.set_block(mid_block)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = builder.new_label("or.rhs")
            self.gen_cond(expr.left, true_label, mid)
            mid_block = builder.add_block(mid)
            builder.set_block(mid_block)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.IntLit):
            builder.jmp(true_label if expr.value != 0 else false_label)
            return
        cond = self.gen_expr(expr)
        builder.br(cond, true_label, false_label)

    # -- expressions -----------------------------------------------------------

    def gen_expr(self, expr: ast.Node) -> int:
        """Generate code computing ``expr``; returns the result register."""
        builder = self.builder
        if isinstance(expr, ast.IntLit):
            return builder.const(expr.value)
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self.local_regs:
                return self.local_regs[name]
            addr = builder.addr(name)
            return builder.load(addr)
        if isinstance(expr, ast.FuncRef):
            return builder.funcaddr(expr.ident)
        if isinstance(expr, ast.Index):
            base = builder.addr(expr.array)
            index = self.gen_expr(expr.index)
            addr = builder.bin(BinOp.ADD, base, index)
            return builder.load(addr)
        if isinstance(expr, ast.Unary):
            operand = self.gen_expr(expr.operand)
            unop = {"-": UnOp.NEG, "!": UnOp.NOT, "~": UnOp.BNOT}[expr.op]
            return builder.un(unop, operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._gen_bool_value(expr)
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            return builder.bin(_BINOP_MAP[expr.op], left, right)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, want_value=True)
        if isinstance(expr, ast.IndirectCall):
            callee = self.gen_expr(expr.callee)
            args = [self.gen_expr(arg) for arg in expr.args]
            dst = builder.new_reg()
            builder.icall(callee, args, dst=dst)
            return dst
        raise self.error(f"cannot generate {type(expr).__name__}", expr)

    def gen_expr_for_effect(self, expr: ast.Node) -> None:
        """Generate a call whose result is discarded."""
        builder = self.builder
        if isinstance(expr, ast.Call):
            self._gen_call(expr, want_value=False)
            return
        if isinstance(expr, ast.IndirectCall):
            callee = self.gen_expr(expr.callee)
            args = [self.gen_expr(arg) for arg in expr.args]
            builder.icall(callee, args, dst=None)
            return
        raise self.error("expression statement must be a call", expr)

    def _gen_call(self, expr: ast.Call, want_value: bool) -> Optional[int]:
        builder = self.builder
        name = expr.func
        if name in self.info.functions:
            args = [self.gen_expr(arg) for arg in expr.args]
            dst = builder.new_reg() if want_value else None
            builder.call(name, args, dst=dst)
            return dst
        if name in BUILTINS:
            if name == "getc":
                return builder.getc()
            # putc
            value = self.gen_expr(expr.args[0])
            builder.putc(value)
            return builder.const(0) if want_value else None
        # Indirect call through a variable's value.
        callee = self.gen_expr(ast.Name(line=expr.line, ident=name))
        args = [self.gen_expr(arg) for arg in expr.args]
        dst = builder.new_reg() if want_value else None
        builder.icall(callee, args, dst=dst)
        return dst

    def _gen_bool_value(self, expr: ast.Binary) -> int:
        """Materialize a short-circuit expression as a 0/1 value."""
        builder = self.builder
        result = builder.new_reg()
        true_label = builder.new_label("bool.true")
        false_label = builder.new_label("bool.false")
        join_label = builder.new_label("bool.join")
        self.gen_cond(expr, true_label, false_label)
        true_block = builder.add_block(true_label)
        builder.set_block(true_block)
        builder.const(1, dst=result)
        builder.jmp(join_label)
        false_block = builder.add_block(false_label)
        builder.set_block(false_block)
        builder.const(0, dst=result)
        builder.jmp(join_label)
        join_block = builder.add_block(join_label)
        builder.set_block(join_block)
        return result


def _selectable(expr: ast.Node, local_regs: Dict[str, int]) -> bool:
    """Whether an expression is safe to evaluate unconditionally."""
    if isinstance(expr, ast.IntLit):
        return True
    if isinstance(expr, ast.Name):
        return expr.ident in local_regs
    if isinstance(expr, ast.Unary):
        return _selectable(expr.operand, local_regs)
    if isinstance(expr, ast.Binary):
        return (
            expr.op in _TRAP_FREE_BINOPS
            and _selectable(expr.left, local_regs)
            and _selectable(expr.right, local_regs)
        )
    return False
