"""Semantic analysis for MF programs.

Resolves names, checks arities and lvalues, classifies calls as direct
(callee is a declared function) or indirect (callee is a value), and checks
``break``/``continue`` placement.  MF has one flat scope per function
(parameters and ``var`` declarations anywhere in the body), plus the global
scope.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from repro.lang import ast_nodes as ast
from repro.lang.errors import LangError

#: Built-in functions: name -> arity.  ``getc`` returns the next input byte
#: (-1 at end of input); ``putc`` appends a byte to the output stream.
BUILTINS: Dict[str, int] = {"getc": 0, "putc": 1}


@dataclasses.dataclass
class SemaInfo:
    """Results of semantic analysis, consumed by the code generator."""

    global_scalars: Set[str]
    global_arrays: Dict[str, int]  # name -> size
    functions: Dict[str, int]  # name -> arity
    locals_by_function: Dict[str, List[str]]  # name -> ordered local names


def analyze(program: ast.ProgramAST) -> SemaInfo:
    """Analyze a parsed program; raises :class:`LangError` on the first fault.

    A ``Call`` node whose callee name is a variable (not a declared function
    or builtin) is an *indirect* call through the variable's value; both this
    pass and the code generator classify calls by that rule.
    """
    global_scalars: Set[str] = set()
    global_arrays: Dict[str, int] = {}
    for decl in program.globals:
        name = decl.ident
        if name in global_scalars or name in global_arrays or name in BUILTINS:
            raise LangError(f"duplicate global {name!r}", decl.line)
        if isinstance(decl, ast.VarDecl):
            global_scalars.add(name)
        else:
            global_arrays[name] = decl.size

    functions: Dict[str, int] = {}
    for func in program.functions:
        if (
            func.ident in functions
            or func.ident in BUILTINS
            or func.ident in global_scalars
            or func.ident in global_arrays
        ):
            raise LangError(f"duplicate definition of {func.ident!r}", func.line)
        functions[func.ident] = len(func.params)

    if "main" not in functions:
        raise LangError("program has no 'main' function")
    if functions["main"] != 0:
        raise LangError("'main' must take no parameters")

    info = SemaInfo(
        global_scalars=global_scalars,
        global_arrays=global_arrays,
        functions=functions,
        locals_by_function={},
    )
    for func in program.functions:
        info.locals_by_function[func.ident] = _analyze_function(func, info)
    return info


class _FunctionAnalyzer:
    def __init__(self, func: ast.FuncDecl, info: SemaInfo):
        self.func = func
        self.info = info
        self.locals: List[str] = []
        self.local_set: Set[str] = set()
        self.loop_depth = 0
        self.break_depth = 0  # loops + switches

    def error(self, message: str, node: ast.Node) -> LangError:
        return LangError(f"in {self.func.ident!r}: {message}", node.line)

    def declare_local(self, name: str, node: ast.Node) -> None:
        if name in self.local_set:
            raise self.error(f"duplicate local {name!r}", node)
        if name in self.info.functions or name in BUILTINS:
            raise self.error(f"local {name!r} shadows a function", node)
        if name in self.info.global_arrays:
            raise self.error(f"local {name!r} shadows a global array", node)
        self.local_set.add(name)
        self.locals.append(name)

    def run(self) -> List[str]:
        for param in self.func.params:
            self.declare_local(param, self.func)
        # Locals may be declared anywhere; collect them up front so that the
        # code generator can allocate registers in one pass.
        self._collect_decls(self.func.body)
        self._check_stmts(self.func.body)
        return self.locals

    def _collect_decls(self, stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.VarDecl):
                self.declare_local(stmt.ident, stmt)
            elif isinstance(stmt, ast.If):
                self._collect_decls(stmt.then_body)
                self._collect_decls(stmt.else_body)
            elif isinstance(stmt, (ast.While, ast.DoWhile)):
                self._collect_decls(stmt.body)
            elif isinstance(stmt, ast.For):
                if stmt.init is not None:
                    self._collect_decls([stmt.init])
                if stmt.step is not None:
                    self._collect_decls([stmt.step])
                self._collect_decls(stmt.body)
            elif isinstance(stmt, ast.Switch):
                for arm in stmt.arms:
                    self._collect_decls(arm.body)

    # -- statements --------------------------------------------------------

    def _check_stmts(self, stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._check_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            self._check_lvalue(stmt.target)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_stmts(stmt.then_body)
            self._check_stmts(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self.loop_depth += 1
            self.break_depth += 1
            self._check_stmts(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.break_depth += 1
            self._check_stmts(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            self._check_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self.loop_depth += 1
            self.break_depth += 1
            self._check_stmts(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
        elif isinstance(stmt, ast.Switch):
            self._check_expr(stmt.scrutinee)
            seen_values: Set[int] = set()
            for arm in stmt.arms:
                if arm.values is not None:
                    for value in arm.values:
                        if value in seen_values:
                            raise self.error(f"duplicate case {value}", arm)
                        seen_values.add(value)
            self.break_depth += 1
            for arm in stmt.arms:
                self._check_stmts(arm.body)
            self.break_depth -= 1
        elif isinstance(stmt, ast.Break):
            if self.break_depth == 0:
                raise self.error("'break' outside loop or switch", stmt)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise self.error("'continue' outside loop", stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.Halt):
            pass
        else:  # pragma: no cover - parser produces only known nodes
            raise self.error(f"unknown statement {type(stmt).__name__}", stmt)

    def _check_lvalue(self, target: ast.Node) -> None:
        if isinstance(target, ast.Name):
            name = target.ident
            if name in self.local_set or name in self.info.global_scalars:
                return
            if name in self.info.global_arrays:
                raise self.error(f"cannot assign to array {name!r} directly", target)
            raise self.error(f"undefined variable {name!r}", target)
        if isinstance(target, ast.Index):
            self._check_index(target)
            return
        raise self.error("assignment target must be a name or element", target)

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, expr: ast.Node) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self.local_set or name in self.info.global_scalars:
                return
            if name in self.info.global_arrays:
                raise self.error(
                    f"array {name!r} used as a value (index it instead)", expr
                )
            if name in self.info.functions or name in BUILTINS:
                raise self.error(
                    f"function {name!r} used as a value (use &{name})", expr
                )
            raise self.error(f"undefined variable {name!r}", expr)
        if isinstance(expr, ast.FuncRef):
            if expr.ident not in self.info.functions:
                raise self.error(f"'&' applied to non-function {expr.ident!r}", expr)
            return
        if isinstance(expr, ast.Index):
            self._check_index(expr)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Call):
            self._check_call(expr)
            return
        if isinstance(expr, ast.IndirectCall):
            self._check_expr(expr.callee)
            for arg in expr.args:
                self._check_expr(arg)
            return
        raise self.error(f"unknown expression {type(expr).__name__}", expr)

    def _check_index(self, expr: ast.Index) -> None:
        if expr.array not in self.info.global_arrays:
            raise self.error(f"{expr.array!r} is not an array", expr)
        self._check_expr(expr.index)

    def _check_call(self, expr: ast.Call) -> None:
        name = expr.func
        arity = self.info.functions.get(name)
        if arity is None:
            arity = BUILTINS.get(name)
        if arity is not None:
            if len(expr.args) != arity:
                raise self.error(
                    f"call to {name!r} with {len(expr.args)} args, expects {arity}",
                    expr,
                )
            for arg in expr.args:
                self._check_expr(arg)
            return
        # Callee is a variable: this is an indirect call through its value
        # (the code generator classifies calls the same way).
        if name in self.local_set or name in self.info.global_scalars:
            for arg in expr.args:
                self._check_expr(arg)
            return
        raise self.error(f"call to undefined function {name!r}", expr)


def _analyze_function(func: ast.FuncDecl, info: SemaInfo) -> List[str]:
    return _FunctionAnalyzer(func, info).run()
