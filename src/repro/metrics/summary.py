"""Per-run summaries used by reports and EXPERIMENTS.md."""
from __future__ import annotations

import dataclasses

from repro.metrics.ipb import branch_density, ipb_no_prediction, ipb_self_prediction
from repro.prediction.evaluate import self_prediction
from repro.vm.counters import RunResult


@dataclasses.dataclass
class RunSummary:
    """The headline numbers for one (program, dataset) run."""

    program: str
    dataset: str
    instructions: int
    branch_execs: int
    percent_taken: float
    branch_density: float
    percent_correct_self: float
    ipb_unpredicted: float
    ipb_unpredicted_with_calls: float
    ipb_self: float

    @classmethod
    def from_run(cls, run: RunResult, dataset: str) -> "RunSummary":
        return cls(
            program=run.program,
            dataset=dataset,
            instructions=run.instructions,
            branch_execs=run.total_branch_execs,
            percent_taken=run.percent_taken(),
            branch_density=branch_density(run),
            percent_correct_self=self_prediction(run).percent_correct,
            ipb_unpredicted=ipb_no_prediction(run, include_direct_calls=False),
            ipb_unpredicted_with_calls=ipb_no_prediction(
                run, include_direct_calls=True
            ),
            ipb_self=ipb_self_prediction(run),
        )
