"""Breaks in control: the paper's classification and counting rules.

* **Unavoidable breaks** — indirect calls and their returns (MF, like the
  paper's FORTRAN sample, has no assigned GOTO).
* **Avoidable breaks** — direct calls and returns (reported both included
  and excluded, Figure 1), and unconditional jumps (assumed eliminated by a
  good ILP compiler — never counted, matching the paper's assumption).
* Conditional branches count as breaks when unpredicted (Figure 1) or when
  mispredicted (Figure 2).
"""
from __future__ import annotations

import dataclasses

from repro.vm.counters import RunResult


@dataclasses.dataclass(frozen=True)
class BreakPolicy:
    """Which avoidable breaks to include.

    ``include_direct_calls`` adds direct calls and returns (Figure 1's
    white bars); jumps are never counted, per the paper's assumption that an
    ILP compiler eliminates them by code layout.
    """

    include_direct_calls: bool = False


def unavoidable_breaks(run: RunResult) -> int:
    """Indirect calls plus their returns."""
    return run.events.indirect_calls + run.events.indirect_returns


def unpredicted_breaks(run: RunResult, policy: BreakPolicy = BreakPolicy()) -> int:
    """Breaks when no branch prediction is attempted (Figure 1): every
    conditional branch execution plus unavoidable (and optionally direct
    call/return) breaks."""
    total = run.total_branch_execs + unavoidable_breaks(run)
    if policy.include_direct_calls:
        total += run.events.direct_calls + run.events.direct_returns
    return total


def predicted_breaks(
    run: RunResult,
    mispredicted: int,
    policy: BreakPolicy = BreakPolicy(),
) -> int:
    """Breaks when branches are predicted (Figure 2): mispredicted branches
    plus unavoidable (and optionally direct call/return) breaks."""
    total = mispredicted + unavoidable_breaks(run)
    if policy.include_direct_calls:
        total += run.events.direct_calls + run.events.direct_returns
    return total
