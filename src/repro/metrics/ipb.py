"""Instructions per break in control — the paper's central measure."""
from __future__ import annotations

from repro.metrics.breaks import BreakPolicy, predicted_breaks, unpredicted_breaks
from repro.prediction.base import StaticPredictor
from repro.prediction.evaluate import evaluate_static, self_prediction
from repro.vm.counters import RunResult


def ipb_no_prediction(
    run: RunResult, include_direct_calls: bool = False
) -> float:
    """Instructions per break with no prediction (Figure 1).

    Black bars: ``include_direct_calls=False``; white bars: ``True``.
    """
    policy = BreakPolicy(include_direct_calls=include_direct_calls)
    breaks = unpredicted_breaks(run, policy)
    return run.instructions / breaks if breaks else float(run.instructions)


def ipb_with_predictor(
    run: RunResult,
    predictor: StaticPredictor,
    include_direct_calls: bool = False,
) -> float:
    """Instructions per break when branches are predicted (Figure 2)."""
    report = evaluate_static(run, predictor)
    policy = BreakPolicy(include_direct_calls=include_direct_calls)
    breaks = predicted_breaks(run, report.mispredicted, policy)
    return run.instructions / breaks if breaks else float(run.instructions)


def ipb_self_prediction(run: RunResult, include_direct_calls: bool = False) -> float:
    """The best-possible instructions per break: the run predicts itself
    (Figure 2 black bars, Table 3)."""
    report = self_prediction(run)
    policy = BreakPolicy(include_direct_calls=include_direct_calls)
    breaks = predicted_breaks(run, report.mispredicted, policy)
    return run.instructions / breaks if breaks else float(run.instructions)


def branch_density(run: RunResult) -> float:
    """Instructions per executed conditional branch (the paper's li ~10 vs
    fpppp ~170 observation)."""
    branches = run.total_branch_execs
    return run.instructions / branches if branches else float(run.instructions)
