"""Break-in-control accounting and the instructions-per-break measures."""
from repro.metrics.breaks import (
    BreakPolicy,
    predicted_breaks,
    unavoidable_breaks,
    unpredicted_breaks,
)
from repro.metrics.ipb import (
    branch_density,
    ipb_no_prediction,
    ipb_self_prediction,
    ipb_with_predictor,
)
from repro.metrics.summary import RunSummary

__all__ = [
    "BreakPolicy",
    "RunSummary",
    "branch_density",
    "ipb_no_prediction",
    "ipb_self_prediction",
    "ipb_with_predictor",
    "predicted_breaks",
    "unavoidable_breaks",
    "unpredicted_breaks",
]
