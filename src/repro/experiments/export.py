"""Machine-readable export of every experiment result.

Downstream users (plotting scripts, regression dashboards) get one JSON
document containing all tables, figures and observations, keyed the same
way EXPERIMENTS.md is organized.
"""
from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.core.runner import WorkloadRunner
from repro.experiments import (
    ablations,
    coverage,
    dynamic_compare,
    figure1,
    figure2,
    figure3,
    informal,
    runlengths,
    scaling,
    table1,
    table2,
    table3,
)


def _plain(value):
    """Recursively convert dataclasses/containers to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def collect(runner: Optional[WorkloadRunner] = None) -> dict:
    """Run every experiment and return one JSON-compatible document."""
    if runner is None:
        runner = WorkloadRunner()
    return {
        "table1": _plain(table1.run(runner)),
        "table2": _plain(table2.run(runner)),
        "table3": _plain(table3.run(runner)),
        "figure1": _plain(figure1.run(runner)),
        "figure2": _plain(figure2.run(runner)),
        "figure3": _plain(figure3.run(runner)),
        "informal": {
            "combine_modes": _plain(informal.combine_modes(runner)),
            "heuristics": _plain(informal.heuristics(runner)),
            "percent_taken": _plain(informal.percent_taken(runner)),
            "compress_cross": _plain(informal.compress_cross(runner)),
            "wrong_measure": _plain(informal.wrong_measure(runner)),
        },
        "runlengths": _plain(runlengths.run(runner)),
        "scaling": _plain(scaling.run(runner)),
        "dynamic": _plain(dynamic_compare.run(runner)),
        "coverage": _plain(coverage.run(runner)),
        "ablations": {
            "inlining": _plain(ablations.inlining(runner)),
            "if_conversion": _plain(ablations.if_conversion(runner)),
        },
    }


def export_json(path: str, runner: Optional[WorkloadRunner] = None) -> dict:
    """Write the full results document to ``path``; returns it too."""
    document = collect(runner)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
    return document
