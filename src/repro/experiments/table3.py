"""Table 3: instructions per break for the FORTRAN programs with little
dataset variability, under the best possible (self) prediction.

"Table 3 lists the programs with only one meaningful dataset.  We believe
that any reasonable method will predict those programs' branch directions
almost perfectly."
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.parallel import RunRequest
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.ipb import ipb_self_prediction

#: (program, dataset) rows in the paper's order, with its reported values.
PAPER_TABLE3: List[Tuple[str, str, int]] = [
    ("tomcatv", "default", 7461),
    ("matrix300", "default", 4853),
    ("nasa7", "default", 3400),
    ("fpppp", "4atoms", 951),
    ("fpppp", "8atoms", 1028),
    ("lfk", "default", 399),
    ("doduc", "tiny", 257),
    ("doduc", "small", 269),
    ("doduc", "ref", 275),
]


@dataclasses.dataclass
class Table3Row:
    program: str
    dataset: str
    instructions_per_break: float
    paper_value: int


@dataclasses.dataclass
class Table3Result:
    rows: List[Table3Row]

    def ordering_matches_paper(self) -> bool:
        """Whether programs rank the same way as in the paper (per-program
        best value, descending)."""

        def ranking(values):
            best = {}
            for program, value in values:
                best[program] = max(best.get(program, 0.0), value)
            return sorted(best, key=best.get, reverse=True)

        ours = ranking(
            (row.program, row.instructions_per_break) for row in self.rows
        )
        paper = ranking((row.program, row.paper_value) for row in self.rows)
        return ours == paper

    def format_text(self) -> str:
        table = TextTable(
            "Table 3: instrs/break, FORTRAN programs with stable datasets",
            ["program", "dataset", "instrs/break", "paper"],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.dataset,
                row.instructions_per_break,
                row.paper_value,
            )
        table.add_note(
            "self-prediction (each dataset predicts itself); absolute values "
            "are compressed by our smaller problem sizes"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> Table3Result:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(
        [RunRequest(program, dataset) for program, dataset, _ in PAPER_TABLE3]
    )
    rows = [
        Table3Row(
            program=program,
            dataset=dataset,
            instructions_per_break=ipb_self_prediction(
                runner.run(program, dataset)
            ),
            paper_value=paper_value,
        )
        for program, dataset, paper_value in PAPER_TABLE3
    ]
    return Table3Result(rows=rows)
