"""Figures 1a & 1b: instructions per break in control, branches NOT
predicted.

Black bars: conditional branches + indirect calls/returns are breaks.
White bars: direct calls and returns added.  (Jumps excluded — the paper
assumes an ILP compiler eliminates them by code layout.)
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.ipb import ipb_no_prediction
from repro.workloads.base import FORTRAN
from repro.workloads.registry import all_workloads


@dataclasses.dataclass
class Figure1Bar:
    program: str
    dataset: str
    ipb_black: float          # without direct call/return breaks
    ipb_white: float          # with direct call/return breaks


@dataclasses.dataclass
class Figure1Result:
    fortran_bars: List[Figure1Bar]   # Figure 1a
    c_bars: List[Figure1Bar]         # Figure 1b

    def format_chart(self) -> str:
        """Paired-bar ASCII rendering of both panels."""
        from repro.experiments.charts import ascii_bars

        panels = []
        for title, bars in (
            ("Figure 1a (chart): FORTRAN/FP, no prediction", self.fortran_bars),
            ("Figure 1b (chart): C/integer, no prediction", self.c_bars),
        ):
            panels.append(
                ascii_bars(
                    title,
                    [
                        (f"{bar.program}/{bar.dataset}", bar.ipb_black,
                         bar.ipb_white)
                        for bar in bars
                    ],
                    black_legend="all branches are breaks",
                    white_legend="plus direct calls/returns",
                )
            )
        return "\n\n".join(panels)

    def format_text(self) -> str:
        sections = []
        for title, bars in (
            ("Figure 1a: FORTRAN/FP, instrs per break (no prediction)",
             self.fortran_bars),
            ("Figure 1b: C/integer, instrs per break (no prediction)",
             self.c_bars),
        ):
            table = TextTable(
                title,
                ["program", "dataset", "black (no call breaks)", "white (+calls)"],
            )
            for bar in bars:
                table.add_row(bar.program, bar.dataset, bar.ipb_black, bar.ipb_white)
            sections.append(table.format_text())
        return "\n\n".join(sections)


def run(runner: Optional[WorkloadRunner] = None) -> Figure1Result:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(dataset_requests(all_workloads()))
    fortran_bars: List[Figure1Bar] = []
    c_bars: List[Figure1Bar] = []
    for workload in all_workloads():
        bucket = fortran_bars if workload.category == FORTRAN else c_bars
        for dataset in workload.dataset_names():
            result = runner.run(workload.name, dataset)
            bucket.append(
                Figure1Bar(
                    program=workload.name,
                    dataset=dataset,
                    ipb_black=ipb_no_prediction(result, include_direct_calls=False),
                    ipb_white=ipb_no_prediction(result, include_direct_calls=True),
                )
            )
    return Figure1Result(fortran_bars=fortran_bars, c_bars=c_bars)
