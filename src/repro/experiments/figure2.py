"""Figures 2a & 2b: instructions per break when branches are predicted.

Black bars: best possible prediction (each dataset predicts itself).
White bars: the scaled sum of all other datasets predicts the target.
Figure 2a is spice2g6 alone; Figure 2b the C/integer programs.  Breaks are
mispredicted branches plus indirect calls and their returns.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.experiment import CrossDatasetExperiment, DatasetPrediction
from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.workloads.base import C
from repro.workloads.registry import all_workloads

SPICE = "spice2g6"


def _studied_workloads():
    """The multi-dataset workloads Figures 2 and 3 measure (spice plus
    the C/integer programs; stable-dataset FORTRAN programs are Table 3)."""
    return [
        workload
        for workload in all_workloads()
        if len(workload.datasets) >= 2
        and (workload.name == SPICE or workload.category == C)
    ]


@dataclasses.dataclass
class Figure2Result:
    spice_bars: List[DatasetPrediction]   # Figure 2a
    c_bars: List[DatasetPrediction]       # Figure 2b

    def all_bars(self) -> List[DatasetPrediction]:
        return self.spice_bars + self.c_bars

    def format_chart(self) -> str:
        """Paired-bar ASCII rendering of both panels."""
        from repro.experiments.charts import ascii_bars

        panels = []
        for title, bars in (
            ("Figure 2a (chart): spice2g6, predicted", self.spice_bars),
            ("Figure 2b (chart): C/integer, predicted", self.c_bars),
        ):
            panels.append(
                ascii_bars(
                    title,
                    [
                        (f"{bar.workload}/{bar.dataset}", bar.ipb_self,
                         bar.ipb_combined)
                        for bar in bars
                    ],
                    black_legend="self (best possible)",
                    white_legend="scaled sum of others",
                )
            )
        return "\n\n".join(panels)

    def format_text(self) -> str:
        sections = []
        for title, bars in (
            ("Figure 2a: spice2g6, instrs per break (predicted)", self.spice_bars),
            ("Figure 2b: C/integer, instrs per break (predicted)", self.c_bars),
        ):
            table = TextTable(
                title,
                [
                    "program", "dataset",
                    "black (self)", "white (sum of others)", "% of best",
                ],
            )
            for bar in bars:
                table.add_row(
                    bar.workload,
                    bar.dataset,
                    bar.ipb_self,
                    bar.ipb_combined,
                    f"{100 * bar.combined_fraction_of_self:.0f}%",
                )
            sections.append(table.format_text())
        return "\n\n".join(sections)


def run(
    runner: Optional[WorkloadRunner] = None, mode: str = "scaled"
) -> Figure2Result:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(dataset_requests(_studied_workloads()))
    spice_bars: List[DatasetPrediction] = []
    c_bars: List[DatasetPrediction] = []
    for workload in all_workloads():
        if len(workload.datasets) < 2:
            continue
        if workload.name == SPICE:
            bucket = spice_bars
        elif workload.category == C:
            bucket = c_bars
        else:
            continue  # FORTRAN programs with stable datasets are Table 3
        experiment = CrossDatasetExperiment(runner, workload.name)
        for dataset in experiment.dataset_names():
            bucket.append(experiment.dataset_prediction(dataset, mode=mode))
    return Figure2Result(spice_bars=spice_bars, c_bars=c_bars)
