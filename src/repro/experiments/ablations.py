"""Ablations for the compiler switches the paper's measurements kept off.

* **Inlining** — "An executed call that is not inlined will cost two breaks
  in control...  Below we show the instructions per break in control with
  calls and returns left in and with them ignored.  The differences in our
  sample set are reasonably small."  The ablation inlines small leaf
  procedures and re-measures Figure 1's black/white gap.
* **If-conversion** — the paper suppressed it because it deletes branches;
  the ablation measures how many branch executions it would have removed
  and what that does to instructions per break.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.parallel import RunRequest
from repro.core.runner import RunConfig, WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.ipb import ipb_no_prediction, ipb_self_prediction

#: Call-heavy programs where the ablations are most interesting.
DEFAULT_PROGRAMS = [
    ("li", "sieve1"),
    ("gcc", "module6"),
    ("spice2g6", "greybig"),
    ("doduc", "small"),
    ("lfk", "default"),
]


def _prewarm(runner: WorkloadRunner, programs, variant: RunConfig) -> None:
    """Batch the base and variant runs of every ablated triple."""
    runner.run_many(
        [
            RunRequest(program, dataset, config)
            for program, dataset in programs
            for config in (RunConfig(), variant)
        ]
    )


# --- inlining ------------------------------------------------------------------


@dataclasses.dataclass
class InliningRow:
    program: str
    dataset: str
    calls_base: int
    calls_inlined: int
    ipb_with_calls_base: float      # Figure 1 white bar, no inlining
    ipb_with_calls_inlined: float   # same, with inlining
    ipb_self_base: float
    ipb_self_inlined: float


@dataclasses.dataclass
class InliningResult:
    rows: List[InliningRow]

    def format_text(self) -> str:
        table = TextTable(
            "Inlining ablation: direct-call breaks and instrs/break",
            ["program", "dataset", "calls", "calls(inl)",
             "white-IPB", "white-IPB(inl)", "self-IPB", "self-IPB(inl)"],
        )
        for row in self.rows:
            table.add_row(
                row.program, row.dataset,
                row.calls_base, row.calls_inlined,
                row.ipb_with_calls_base, row.ipb_with_calls_inlined,
                row.ipb_self_base, row.ipb_self_inlined,
            )
        table.add_note(
            "white-IPB counts direct calls/returns as breaks (Figure 1 "
            "white bars); inlining removes small-leaf call pairs"
        )
        return table.format_text()


def inlining(
    runner: Optional[WorkloadRunner] = None,
    programs=DEFAULT_PROGRAMS,
) -> InliningResult:
    if runner is None:
        runner = WorkloadRunner()
    inline_config = RunConfig(inline=True)
    _prewarm(runner, programs, inline_config)
    rows: List[InliningRow] = []
    for program, dataset in programs:
        base = runner.run(program, dataset)
        inlined = runner.run(program, dataset, config=inline_config)
        rows.append(
            InliningRow(
                program=program,
                dataset=dataset,
                calls_base=base.events.direct_calls,
                calls_inlined=inlined.events.direct_calls,
                ipb_with_calls_base=ipb_no_prediction(
                    base, include_direct_calls=True
                ),
                ipb_with_calls_inlined=ipb_no_prediction(
                    inlined, include_direct_calls=True
                ),
                ipb_self_base=ipb_self_prediction(base),
                ipb_self_inlined=ipb_self_prediction(inlined),
            )
        )
    return InliningResult(rows=rows)


# --- if-conversion -----------------------------------------------------------------


@dataclasses.dataclass
class IfConversionRow:
    program: str
    dataset: str
    branch_execs_base: int
    branch_execs_converted: int
    selects_base: int
    selects_converted: int
    ipb_self_base: float
    ipb_self_converted: float

    @property
    def branch_reduction(self) -> float:
        if self.branch_execs_base == 0:
            return 0.0
        return 1.0 - self.branch_execs_converted / self.branch_execs_base


@dataclasses.dataclass
class IfConversionResult:
    rows: List[IfConversionRow]

    def format_text(self) -> str:
        table = TextTable(
            "If-conversion ablation: branch executions and instrs/break",
            ["program", "dataset", "branch execs", "after ifconv",
             "reduction", "selects", "selects(conv)", "self-IPB",
             "self-IPB(conv)"],
        )
        for row in self.rows:
            table.add_row(
                row.program, row.dataset,
                row.branch_execs_base, row.branch_execs_converted,
                f"{100 * row.branch_reduction:.1f}%",
                row.selects_base, row.selects_converted,
                row.ipb_self_base, row.ipb_self_converted,
            )
        table.add_note(
            "the paper suppressed if-conversion so the studied branches "
            "stayed in the code; the tiny dynamic effect matches its "
            "footnote 2 (selects were under 0.7% of executed operations)"
        )
        return table.format_text()


def if_conversion(
    runner: Optional[WorkloadRunner] = None,
    programs=DEFAULT_PROGRAMS,
) -> IfConversionResult:
    if runner is None:
        runner = WorkloadRunner()
    converted_config = RunConfig(if_conversion=True)
    _prewarm(runner, programs, converted_config)
    rows: List[IfConversionRow] = []
    for program, dataset in programs:
        base = runner.run(program, dataset)
        converted = runner.run(program, dataset, config=converted_config)
        rows.append(
            IfConversionRow(
                program=program,
                dataset=dataset,
                branch_execs_base=base.total_branch_execs,
                branch_execs_converted=converted.total_branch_execs,
                selects_base=base.events.selects,
                selects_converted=converted.events.selects,
                ipb_self_base=ipb_self_prediction(base),
                ipb_self_converted=ipb_self_prediction(converted),
            )
        )
    return IfConversionResult(rows=rows)
