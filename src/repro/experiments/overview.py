"""Suite overview: the headline numbers for every (program, dataset) run.

Not a paper table as such — it is the measurement substrate behind all of
them (branch density, percent taken, IPB with and without prediction), in
one place.  EXPERIMENTS.md quotes from it.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.summary import RunSummary
from repro.workloads.base import FORTRAN
from repro.workloads.registry import all_workloads


@dataclasses.dataclass
class OverviewResult:
    rows: List[RunSummary]
    categories: dict

    def total_instructions(self) -> int:
        return sum(row.instructions for row in self.rows)

    def find(self, program: str, dataset: str) -> RunSummary:
        for row in self.rows:
            if row.program == program and row.dataset == dataset:
                return row
        raise KeyError((program, dataset))

    def format_text(self) -> str:
        table = TextTable(
            "Suite overview: per-run measurements",
            ["program", "dataset", "instrs", "instrs/branch", "taken",
             "IPB none", "IPB self", "% correct"],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.dataset,
                row.instructions,
                row.branch_density,
                f"{100 * row.percent_taken:.0f}%",
                row.ipb_unpredicted,
                row.ipb_self,
                f"{100 * row.percent_correct_self:.1f}%",
            )
        table.add_note(
            f"{len(self.rows)} runs, {self.total_instructions()} simulated "
            f"operations in total"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> OverviewResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[RunSummary] = []
    categories = {}
    for workload in all_workloads():
        categories[workload.name] = (
            "fortran" if workload.category == FORTRAN else "c"
        )
        for dataset in workload.dataset_names():
            rows.append(
                RunSummary.from_run(runner.run(workload.name, dataset), dataset)
            )
    return OverviewResult(rows=rows, categories=categories)
