"""Dataset-size sensitivity of cross prediction (the spice observation).

"In spice2g6, the worst cases came about when a dataset was used to predict
another that ran over 20,000 times as long."  For every ordered
(predictor, target) pair of every multi-dataset workload we relate the
run-length ratio to prediction quality, and report the spice pairs
explicitly.
"""
from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from repro.core.experiment import CrossDatasetExperiment
from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.experiments.coverage import pearson
from repro.experiments.report import TextTable
from repro.workloads.registry import multi_dataset_workloads


@dataclasses.dataclass
class ScalingPair:
    workload: str
    predictor: str
    target: str
    #: target instructions / predictor instructions.
    length_ratio: float
    #: pairwise IPB / self IPB.
    quality: float


@dataclasses.dataclass
class ScalingResult:
    pairs: List[ScalingPair]
    #: Pearson r between |log10(length ratio)| and quality, all pairs.
    correlation: float

    def spice_pairs(self) -> List[ScalingPair]:
        return [pair for pair in self.pairs if pair.workload == "spice2g6"]

    def worst_spice_pair(self) -> ScalingPair:
        return min(self.spice_pairs(), key=lambda pair: pair.quality)

    def format_text(self) -> str:
        table = TextTable(
            "Run-length ratio vs cross-prediction quality (spice2g6 pairs)",
            ["predictor", "target", "target/predictor length", "quality"],
        )
        for pair in sorted(self.spice_pairs(), key=lambda p: p.quality)[:10]:
            table.add_row(
                pair.predictor,
                pair.target,
                f"{pair.length_ratio:.1f}x",
                f"{100 * pair.quality:.0f}%",
            )
        table.add_note(
            f"all-pairs Pearson r(|log10 ratio|, quality) = "
            f"{self.correlation:+.2f}; the paper's spice worst cases came "
            f"from predicting runs >20,000x longer (our scale is compressed)"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> ScalingResult:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(dataset_requests(multi_dataset_workloads()))
    pairs: List[ScalingPair] = []
    for workload in multi_dataset_workloads():
        experiment = CrossDatasetExperiment(runner, workload.name)
        names = experiment.dataset_names()
        lengths = {
            name: experiment.runs[name].instructions for name in names
        }
        for target in names:
            self_ipb = experiment.ipb(target, experiment.self_predictor(target))
            for predictor_name in names:
                if predictor_name == target:
                    continue
                quality = (
                    experiment.ipb(
                        target, experiment.single_predictor(predictor_name)
                    )
                    / self_ipb
                    if self_ipb
                    else 0.0
                )
                pairs.append(
                    ScalingPair(
                        workload=workload.name,
                        predictor=predictor_name,
                        target=target,
                        length_ratio=lengths[target] / lengths[predictor_name],
                        quality=quality,
                    )
                )
    correlation = pearson(
        [abs(math.log10(pair.length_ratio)) for pair in pairs],
        [pair.quality for pair in pairs],
    )
    return ScalingResult(pairs=pairs, correlation=correlation)
