"""Plain-text table rendering shared by all experiment reports."""
from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence


@dataclasses.dataclass
class TextTable:
    """A titled table that renders to aligned monospace text."""

    title: str
    headers: List[str]
    rows: List[List[str]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([_format_cell(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def format_text(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(widths[index]) if index == 0 else cell.rjust(widths[index])
                for index, cell in enumerate(cells)
            ).rstrip()

        lines = [self.title, "=" * len(self.title)]
        lines.append(format_row(self.headers))
        lines.append(format_row(["-" * width for width in widths]))
        lines.extend(format_row(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    if cell is None:
        return "-"
    return str(cell)


def format_number(value: Optional[float], digits: int = 1) -> str:
    """Render a float with fixed digits, or '-' for missing values."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"
