"""Static profile prediction vs finite hardware predictors, head to head.

The paper's comparison with [Smith 81]/[Lee and Smith 84] is one line of
context; this experiment makes it a full axis.  For every (workload,
dataset) it scores, against the *same* outcome stream:

* **static-self** — the run predicting itself (the static upper bound);
* **static-cross** — the paper's recommended predictor, the scaled
  leave-one-out sum of the workload's other datasets;
* the hardware zoo — bimodal, gshare, two-level local and tournament
  predictors at several table sizes, with real aliasing.

Both the traditional percent-correct and the paper's instructions-per-
mispredict measures are reported, so the headline question — *where does
cross-run profile prediction hold up against hardware, and where does it
lose?* — is answerable per program and per hardware budget.

The plain (monitor-free) runs every static predictor needs are prewarmed
through ``run_many``, so ``--jobs N`` fans the simulations across
processes; the monitored scoring passes are deterministic re-executions
and happen in-process, which keeps serial and parallel output
byte-identical.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.dynamic.score import DynamicScoreMonitor
from repro.dynamic.static_adapter import StaticAsDynamic
from repro.dynamic.zoo import DEFAULT_TABLE_SIZES, default_zoo
from repro.experiments.charts import ascii_bars
from repro.experiments.report import TextTable
from repro.prediction.base import ProfilePredictor
from repro.prediction.combine import combine_profiles
from repro.profiling.branch_profile import BranchProfile

#: Default program set: FORTRAN (doduc, fpppp) vs systems C (gcc,
#: compress), all with 2+ datasets so the cross predictor exists.  The
#: big C programs (li, espresso, eqntott) work too but triple the
#: simulation time; pass ``programs=`` to sweep them.
DEFAULT_PROGRAMS = ["doduc", "fpppp", "compress", "gcc"]

#: Static rows always present in the comparison, in report order.
STATIC_PREDICTORS = ("static-self", "static-cross")


@dataclasses.dataclass
class DynamicCompareRow:
    """One (program, dataset, predictor) cell of the sweep."""

    program: str
    dataset: str
    predictor: str
    table_size: Optional[int]
    budget_bits: Optional[int]
    branch_execs: int
    mispredicted: int
    percent_correct: float
    ipb: float


@dataclasses.dataclass
class DynamicCompareResult:
    """The full sweep, plus aggregation and rendering."""

    rows: List[DynamicCompareRow]
    programs: List[str]
    table_sizes: Tuple[int, ...]
    predictor_order: List[str]

    # -- aggregation ---------------------------------------------------------

    def rows_for(
        self, program: str, predictor: str
    ) -> List[DynamicCompareRow]:
        return [
            row
            for row in self.rows
            if row.program == program and row.predictor == predictor
        ]

    def mean_percent_correct(self, program: str, predictor: str) -> float:
        rows = self.rows_for(program, predictor)
        return sum(row.percent_correct for row in rows) / len(rows)

    def mean_ipb(self, program: str, predictor: str) -> float:
        rows = self.rows_for(program, predictor)
        return sum(row.ipb for row in rows) / len(rows)

    def overall_mean_ipb(self, predictor: str) -> float:
        values = [
            self.mean_ipb(program, predictor) for program in self.programs
        ]
        return sum(values) / len(values) if values else 0.0

    # -- rendering -----------------------------------------------------------

    def format_text(self) -> str:
        table = TextTable(
            "Dynamic vs static prediction "
            "(mean over datasets; instrs/mispredict counts unavoidable "
            "breaks)",
            ["program", "predictor", "table", "budget (bits)", "% correct",
             "instrs/mispredict", "vs static-self"],
        )
        for program in self.programs:
            for predictor in self.predictor_order:
                rows = self.rows_for(program, predictor)
                if not rows:
                    continue
                sample = rows[0]
                self_ipb = self.mean_ipb(program, "static-self")
                ipb = self.mean_ipb(program, predictor)
                table.add_row(
                    program,
                    predictor,
                    "-" if sample.table_size is None else sample.table_size,
                    "-" if sample.budget_bits is None else sample.budget_bits,
                    f"{100 * self.mean_percent_correct(program, predictor):.1f}%",
                    f"{ipb:.1f}",
                    f"{100 * ipb / self_ipb:.0f}%" if self_ipb else "-",
                )
        table.add_note(
            "static-self = run predicts itself (static bound); static-cross "
            "= scaled leave-one-out profile, the paper's predictor"
        )
        table.add_note(
            "hardware rows simulate finite tables with aliasing; budgets "
            "count counter, history and chooser bits"
        )
        return table.format_text()

    def format_chart(self) -> str:
        bars = [
            (predictor, self.overall_mean_ipb(predictor), None)
            for predictor in self.predictor_order
        ]
        return ascii_bars(
            "Mean instrs/mispredict by predictor "
            f"(over {', '.join(self.programs)})",
            bars,
            black_legend="instrs per mispredict or unavoidable break",
        )


def _cross_predictor(
    profiles: Dict[str, BranchProfile], exclude: str, program: str
) -> ProfilePredictor:
    """The scaled leave-one-out summary predictor (Figure 2's white bar)."""
    rest = [
        profile for name, profile in profiles.items() if name != exclude
    ]
    combined = combine_profiles(rest, mode="scaled", program=program)
    return ProfilePredictor(combined, name="static-cross")


def run(
    runner: Optional[WorkloadRunner] = None,
    programs: Optional[Sequence[str]] = None,
    table_sizes: Sequence[int] = DEFAULT_TABLE_SIZES,
) -> DynamicCompareResult:
    """Sweep programs x datasets x predictors x table sizes."""
    if runner is None:
        runner = WorkloadRunner()
    program_names = list(DEFAULT_PROGRAMS if programs is None else programs)
    sizes = tuple(sorted(table_sizes))

    workloads = [runner.workload(name) for name in program_names]
    for workload in workloads:
        if len(workload.dataset_names()) < 2:
            raise ValueError(
                f"workload {workload.name!r} has a single dataset; the "
                "cross predictor needs 2+ (pick another or drop it)"
            )
    # Prewarm the profile runs (the parallel fan-out path); the monitored
    # scoring re-executions below are deterministic and in-process.
    runner.run_many(dataset_requests(workloads))

    rows: List[DynamicCompareRow] = []
    predictor_order: List[str] = []
    for workload in workloads:
        profiles = {
            dataset: BranchProfile.from_run(run_result)
            for dataset, run_result in runner.run_all(workload.name).items()
        }
        branch_table = runner.compiled(workload.name).lowered.branch_table
        for dataset in workload.dataset_names():
            models = [
                StaticAsDynamic(
                    ProfilePredictor(profiles[dataset], name="self"),
                    name="static-self",
                ),
                StaticAsDynamic(
                    _cross_predictor(profiles, dataset, workload.name),
                    name="static-cross",
                ),
            ]
            models.extend(default_zoo(sizes))
            if not predictor_order:
                predictor_order = [model.name for model in models]
            monitor = DynamicScoreMonitor(models, branch_table)
            run_result = runner.run(
                workload.name, dataset, monitors=[monitor]
            )
            for score in monitor.scores(run_result):
                rows.append(
                    DynamicCompareRow(
                        program=workload.name,
                        dataset=dataset,
                        predictor=score.predictor,
                        table_size=score.table_size,
                        budget_bits=score.budget_bits,
                        branch_execs=score.branch_execs,
                        mispredicted=score.mispredicted,
                        percent_correct=score.percent_correct,
                        ipb=score.instructions_per_break,
                    )
                )
    return DynamicCompareResult(
        rows=rows,
        programs=program_names,
        table_sizes=sizes,
        predictor_order=predictor_order,
    )
