"""Figures 3a & 3b: best and worst single-dataset cross prediction.

"Considering the best possible prediction (using a dataset to predict
itself) to be 100%, we show how close to that we come with the best other
dataset, and how close we come with the worst."
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.experiment import BestWorstPrediction, CrossDatasetExperiment
from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.experiments.figure2 import SPICE, _studied_workloads
from repro.experiments.report import TextTable
from repro.workloads.base import C
from repro.workloads.registry import all_workloads


@dataclasses.dataclass
class Figure3Result:
    spice_bars: List[BestWorstPrediction]   # Figure 3a
    c_bars: List[BestWorstPrediction]       # Figure 3b

    def all_bars(self) -> List[BestWorstPrediction]:
        return self.spice_bars + self.c_bars

    def format_chart(self) -> str:
        """Paired-bar ASCII rendering of both panels (linear percent)."""
        from repro.experiments.charts import ascii_bars

        panels = []
        for title, bars in (
            ("Figure 3a (chart): spice2g6 best/worst, % of self",
             self.spice_bars),
            ("Figure 3b (chart): C/integer best/worst, % of self",
             self.c_bars),
        ):
            panels.append(
                ascii_bars(
                    title,
                    [
                        (f"{bar.workload}/{bar.dataset}", bar.best_percent,
                         bar.worst_percent)
                        for bar in bars
                    ],
                    black_legend="best other dataset",
                    white_legend="worst other dataset",
                    log=False,
                )
            )
        return "\n\n".join(panels)

    def format_text(self) -> str:
        sections = []
        for title, bars in (
            ("Figure 3a: spice2g6, best/worst single-dataset predictors",
             self.spice_bars),
            ("Figure 3b: C/integer, best/worst single-dataset predictors",
             self.c_bars),
        ):
            table = TextTable(
                title,
                ["program", "dataset", "best %", "(which)", "worst %", "(which)"],
            )
            for bar in bars:
                table.add_row(
                    bar.workload,
                    bar.dataset,
                    f"{bar.best_percent:.0f}%",
                    bar.best_other,
                    f"{bar.worst_percent:.0f}%",
                    bar.worst_other,
                )
            sections.append(table.format_text())
        return "\n\n".join(sections)


def run(runner: Optional[WorkloadRunner] = None) -> Figure3Result:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(dataset_requests(_studied_workloads()))
    spice_bars: List[BestWorstPrediction] = []
    c_bars: List[BestWorstPrediction] = []
    for workload in all_workloads():
        if len(workload.datasets) < 2:
            continue
        if workload.name == SPICE:
            bucket = spice_bars
        elif workload.category == C:
            bucket = c_bars
        else:
            continue
        experiment = CrossDatasetExperiment(runner, workload.name)
        for dataset in experiment.dataset_names():
            bucket.append(experiment.best_worst(dataset))
    return Figure3Result(spice_bars=spice_bars, c_bars=c_bars)
