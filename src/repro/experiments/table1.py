"""Table 1: dynamic dead code that dead code elimination would remove.

"We approximated that effect by measuring the amount of dead code that the
compiler would have eliminated for each of the SPEC benchmarks."

We compile each SPEC-analog program twice — the paper configuration (DCE
off) and the DCE configuration — run both on every dataset, and report
``1 - ops(with DCE) / ops(without)``, exactly the paper's dynamic measure.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.parallel import dataset_requests
from repro.core.runner import RunConfig, WorkloadRunner
from repro.experiments.report import TextTable

#: The paper's Table 1 values (percent dynamic dead code).
PAPER_DEAD_CODE = {
    "li": 0.00,
    "fpppp": 0.01,
    "spice2g6": 0.01,
    "gcc": 0.02,
    "doduc": 0.02,
    "eqntott": 0.04,
    "tomcatv": 0.14,
    "espresso": 0.18,
    "nasa7": 0.20,
    "matrix300": 0.29,
}


@dataclasses.dataclass
class Table1Row:
    program: str
    instructions_default: int
    instructions_dce: int
    dead_fraction: float
    paper_dead_fraction: Optional[float]


@dataclasses.dataclass
class Table1Result:
    rows: List[Table1Row]

    def by_program(self) -> Dict[str, Table1Row]:
        return {row.program: row for row in self.rows}

    def format_text(self) -> str:
        table = TextTable(
            "Table 1: dynamic dead code removable by DCE",
            ["program", "ops (DCE off)", "ops (DCE on)", "dead %", "paper %"],
        )
        for row in self.rows:
            paper = (
                f"{100 * row.paper_dead_fraction:.0f}%"
                if row.paper_dead_fraction is not None
                else "-"
            )
            table.add_row(
                row.program,
                row.instructions_default,
                row.instructions_dce,
                f"{100 * row.dead_fraction:.1f}%",
                paper,
            )
        table.add_note(
            "dead % = 1 - ops(DCE on)/ops(DCE off), summed over all datasets"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> Table1Result:
    """Measure Table 1 over every SPEC-analog program."""
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(
        dataset_requests(
            [runner.workload(program) for program in PAPER_DEAD_CODE],
            configs=(RunConfig(), RunConfig(dce=True)),
        )
    )
    rows: List[Table1Row] = []
    for program in PAPER_DEAD_CODE:
        default_total = sum(
            result.instructions for result in runner.run_all(program).values()
        )
        dce_total = sum(
            result.instructions
            for result in runner.run_all(program, dce=True).values()
        )
        rows.append(
            Table1Row(
                program=program,
                instructions_default=default_total,
                instructions_dce=dce_total,
                dead_fraction=1.0 - dce_total / default_total,
                paper_dead_fraction=PAPER_DEAD_CODE.get(program),
            )
        )
    rows.sort(key=lambda row: row.dead_fraction)
    return Table1Result(rows=rows)
