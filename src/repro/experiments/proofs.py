"""Static proofs experiment: the zero-profile point on the paper's axis.

The paper measures how far profile-based static prediction closes the gap
between no prediction and perfect (self-profile) prediction.  The prover
adds the missing third point: branches a compiler can *prove*
unidirectional with no profile at all.  This experiment reports, per
workload, the proven-branch coverage (static sites and dynamic executions)
and where proofs land on the instructions-per-mispredict axis relative to
the heuristics, cross-profile (leave-one-out combined), and self-profile
predictors.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.analysis.prover import ProofVerdict
from repro.core.experiment import CrossDatasetExperiment
from repro.core.parallel import RunRequest
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.ipb import ipb_no_prediction, ipb_with_predictor
from repro.prediction.heuristics import LoopHeuristicPredictor
from repro.prediction.proofs import StaticProofPredictor
from repro.workloads.registry import all_workloads


@dataclasses.dataclass
class ProofRow:
    """Per-workload proven-branch coverage and prediction quality."""

    program: str
    branch_sites: int
    proven_sites: int
    #: Fraction of dynamic branch executions at proven sites (all datasets).
    dynamic_coverage: float
    #: Instructions-per-mispredict means across the workload's datasets.
    ipb_none: float
    ipb_proofs: float
    ipb_heuristic: float
    #: None for single-dataset workloads (no other run to predict from).
    ipb_cross: Optional[float]
    ipb_self: float

    @property
    def static_coverage(self) -> float:
        if not self.branch_sites:
            return 0.0
        return self.proven_sites / self.branch_sites

    @property
    def gap_recovered(self) -> float:
        """Fraction of the none -> self-profile IPB gap proofs recover."""
        gap = self.ipb_self - self.ipb_none
        if gap <= 0:
            return 0.0
        return (self.ipb_proofs - self.ipb_none) / gap


@dataclasses.dataclass
class ProofsResult:
    rows: List[ProofRow]

    def format_text(self) -> str:
        table = TextTable(
            "Static branch-direction proofs: coverage and the zero-profile "
            "point on the IPB axis",
            [
                "program",
                "sites",
                "proven",
                "%sites",
                "%execs",
                "ipb none",
                "proofs",
                "heuristic",
                "cross",
                "self",
                "%gap",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.branch_sites,
                row.proven_sites,
                f"{100.0 * row.static_coverage:.1f}",
                f"{100.0 * row.dynamic_coverage:.1f}",
                row.ipb_none,
                row.ipb_proofs,
                row.ipb_heuristic,
                row.ipb_cross,
                row.ipb_self,
                f"{100.0 * row.gap_recovered:.1f}",
            )
        total_sites = sum(row.branch_sites for row in self.rows)
        total_proven = sum(row.proven_sites for row in self.rows)
        table.add_note(
            f"{total_proven}/{total_sites} static branch sites proven; "
            "IPB columns are arithmetic means over each workload's datasets"
        )
        table.add_note(
            "proofs = proven directions + not-taken fallback (zero profile "
            "data); cross = leave-one-out combined profile (scaled); a "
            "proven branch never mispredicts by construction"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> ProofsResult:
    if runner is None:
        runner = WorkloadRunner()
    workloads = all_workloads()
    runner.run_many(
        [
            RunRequest(workload.name, dataset)
            for workload in workloads
            for dataset in workload.dataset_names()
        ]
    )

    rows: List[ProofRow] = []
    for workload in workloads:
        compiled = runner.compiled(workload.name)
        proof_predictor = StaticProofPredictor(compiled.module)
        heuristic = LoopHeuristicPredictor(compiled.module)
        proofs = proof_predictor.proofs
        proven_ids = {
            proof.branch_id
            for proof in proofs
            if proof.verdict is not ProofVerdict.UNKNOWN
        }

        experiment = CrossDatasetExperiment(runner, workload.name)
        proven_execs = 0
        total_execs = 0
        none_values: List[float] = []
        proof_values: List[float] = []
        heuristic_values: List[float] = []
        cross_values: List[float] = []
        self_values: List[float] = []
        datasets = workload.dataset_names()
        for dataset in datasets:
            result = runner.run(workload.name, dataset)
            for branch_id, (executed, _) in result.branch_counts().items():
                total_execs += executed
                if branch_id in proven_ids:
                    proven_execs += executed
            none_values.append(ipb_no_prediction(result))
            proof_values.append(ipb_with_predictor(result, proof_predictor))
            heuristic_values.append(ipb_with_predictor(result, heuristic))
            if len(datasets) > 1:
                cross_values.append(
                    experiment.ipb(
                        dataset, experiment.combined_predictor(dataset)
                    )
                )
            self_values.append(
                experiment.ipb(dataset, experiment.self_predictor(dataset))
            )

        def mean(values: List[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        rows.append(
            ProofRow(
                program=workload.name,
                branch_sites=len(proofs),
                proven_sites=len(proven_ids),
                dynamic_coverage=(
                    proven_execs / total_execs if total_execs else 0.0
                ),
                ipb_none=mean(none_values),
                ipb_proofs=mean(proof_values),
                ipb_heuristic=mean(heuristic_values),
                ipb_cross=mean(cross_values) if cross_values else None,
                ipb_self=mean(self_values),
            )
        )
    return ProofsResult(rows=rows)
