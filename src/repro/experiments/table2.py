"""Table 2: the program and dataset sample base (inventory)."""
from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.experiments.report import TextTable
from repro.workloads.base import FORTRAN
from repro.workloads.registry import all_workloads


@dataclasses.dataclass
class Table2Row:
    program: str
    category: str
    description: str
    datasets: List[str]


@dataclasses.dataclass
class Table2Result:
    rows: List[Table2Row]

    def format_text(self) -> str:
        table = TextTable(
            "Table 2: programs tested and their datasets",
            ["program", "category", "datasets"],
        )
        for row in self.rows:
            table.add_row(row.program, row.category, ", ".join(row.datasets))
        return table.format_text()


def run(runner: Optional[object] = None) -> Table2Result:
    """Produce the inventory (runner accepted for interface uniformity)."""
    rows = [
        Table2Row(
            program=workload.name,
            category="FORTRAN/FP" if workload.category == FORTRAN else "C/integer",
            description=workload.description,
            datasets=workload.dataset_names(),
        )
        for workload in all_workloads()
    ]
    return Table2Result(rows=rows)
