"""Reproductions of every table and figure in the paper's evaluation,
plus the informal observations and the extension experiments."""
from repro.experiments import (  # noqa: F401
    ablations,
    coverage,
    dynamic_compare,
    figure1,
    figure2,
    figure3,
    informal,
    overview,
    runlengths,
    scaling,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablations",
    "coverage",
    "dynamic_compare",
    "figure1",
    "figure2",
    "figure3",
    "informal",
    "overview",
    "runlengths",
    "scaling",
    "table1",
    "table2",
    "table3",
]
