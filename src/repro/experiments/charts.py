"""ASCII bar charts for the figure experiments.

The paper's figures are paired-bar charts (black/white bars per dataset);
these render the same shape in monospace text, with a log-ish scale option
because instructions-per-break spans two orders of magnitude.
"""
from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: (label, black value, white value)
BarPair = Tuple[str, float, Optional[float]]


def _scale(value: float, best: float, width: int, log: bool) -> int:
    if value <= 0:
        return 0
    if log:
        top = math.log10(best + 1.0)
        return max(1, round(width * math.log10(value + 1.0) / top))
    return max(1, round(width * value / best))


def ascii_bars(
    title: str,
    bars: Sequence[BarPair],
    black_legend: str = "black",
    white_legend: str = "white",
    width: int = 46,
    log: bool = True,
) -> str:
    """Render paired horizontal bars.

    ``#`` is the black bar, ``-`` the white bar (when present).  A ``log``
    scale keeps fpppp-sized outliers from flattening everything else,
    mirroring how the paper's figures read.
    """
    if not bars:
        return title
    label_width = max(len(label) for label, _, _ in bars)
    best = max(
        max(black, white if white is not None else 0.0)
        for _, black, white in bars
    )
    lines: List[str] = [title, "=" * len(title)]
    lines.append(
        f"{'':{label_width}}  # = {black_legend}"
        + (f", - = {white_legend}" if any(w is not None for _, _, w in bars)
           else "")
        + (" (log scale)" if log else "")
    )
    for label, black, white in bars:
        black_bar = "#" * _scale(black, best, width, log)
        lines.append(f"{label:>{label_width}}  {black_bar} {black:.1f}")
        if white is not None:
            white_bar = "-" * _scale(white, best, width, log)
            lines.append(f"{'':{label_width}}  {white_bar} {white:.1f}")
    return "\n".join(lines)
