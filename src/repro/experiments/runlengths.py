"""Run-length distributions between mispredicted branches (§3).

"The distribution of runs of instructions between mispredicted branches
will not be constant ... far more ILP will be available if one has 80
instructions followed by two mispredicted branches than if one has 40
instructions, a mispredicted branch.  Branches in real programs are not
evenly spaced."

For each program we attach a :class:`RunLengthMonitor` carrying the
self-prediction directions and record the actual gaps between mispredicted
branches.  A coefficient of variation well above 0 (an evenly-spaced
process would sit near 0; a memoryless one near 1) quantifies the claim.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.vm.monitors import RunLengthMonitor

DEFAULT_PROGRAMS: List[Tuple[str, str]] = [
    ("li", "6queens"),
    ("gcc", "module1"),
    ("compress", "long"),
    ("espresso", "bca"),
    ("doduc", "small"),
    ("tomcatv", "default"),
]


@dataclasses.dataclass
class RunLengthRow:
    program: str
    dataset: str
    stats: Dict[str, float]


@dataclasses.dataclass
class RunLengthResult:
    rows: List[RunLengthRow]

    def find(self, program: str) -> RunLengthRow:
        for row in self.rows:
            if row.program == program:
                return row
        raise KeyError(program)

    def format_text(self) -> str:
        table = TextTable(
            "Instruction run lengths between mispredicted branches "
            "(self-prediction)",
            ["program", "dataset", "breaks", "mean", "median", "p10", "p90",
             "cv"],
        )
        for row in self.rows:
            stats = row.stats
            table.add_row(
                row.program, row.dataset,
                int(stats["count"]), stats["mean"], stats["median"],
                stats["p10"], stats["p90"], f"{stats['cv']:.2f}",
            )
        table.add_note(
            "cv = stddev/mean; evenly-spaced breaks would give cv near 0 — "
            "the paper's point is that real programs are far from that"
        )
        return table.format_text()


def _self_directions(run) -> List[bool]:
    """Per-static-branch majority direction for the run (True = taken)."""
    directions = []
    for executed, taken in zip(run.branch_exec, run.branch_taken):
        directions.append(taken > executed - taken)
    return directions


def run(
    runner: Optional[WorkloadRunner] = None,
    programs=DEFAULT_PROGRAMS,
) -> RunLengthResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[RunLengthRow] = []
    for program, dataset in programs:
        baseline = runner.run(program, dataset)
        monitor = RunLengthMonitor(_self_directions(baseline))
        runner.run(program, dataset, monitors=[monitor])
        rows.append(
            RunLengthRow(program=program, dataset=dataset, stats=monitor.stats())
        )
    return RunLengthResult(rows=rows)
