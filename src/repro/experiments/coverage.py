"""The paper's "coverage" investigation, §3 informal observations.

"We felt that when a dataset predictor did poorly, it was usually because
it emphasized a different part of the program than the target dataset ...
We tried many schemes to capture this concept in some measurable quantity
... Nothing we tried seemed to correlate well with the results."

We implement the same family of measures over every (predictor, target)
pair of every multi-dataset workload:

* **weighted coverage** — fraction of the target's dynamic branch
  executions whose static branch the predictor saw at all;
* **thresholded coverage** — the same, counting only predictor branches
  above a relative execution threshold;
* **emphasis overlap** — cosine similarity between the two runs'
  normalized per-branch execution distributions (where did each run spend
  its branches?).

Each measure is correlated (Pearson) against prediction quality — the
pair's instructions-per-break as a fraction of the target's self bound.
The result reports the correlations; whether they rescue the paper's
intuition or reproduce its null result is recorded in EXPERIMENTS.md.
"""
from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.core.experiment import CrossDatasetExperiment
from repro.core.parallel import dataset_requests
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.profiling.branch_profile import BranchProfile
from repro.workloads.registry import multi_dataset_workloads

MEASURES = ("weighted_coverage", "threshold_coverage", "emphasis_overlap")


def weighted_coverage(
    predictor: BranchProfile, target: BranchProfile
) -> float:
    """Fraction of target branch executions covered by the predictor."""
    total = target.total_executed
    if not total:
        return 1.0
    covered = sum(
        executed
        for branch_id, (executed, _) in target.counts.items()
        if branch_id in predictor
    )
    return covered / total


def threshold_coverage(
    predictor: BranchProfile,
    target: BranchProfile,
    relative_threshold: float = 1e-4,
) -> float:
    """Like weighted coverage, but the predictor must have executed the
    branch more than ``relative_threshold`` of its own total."""
    total = target.total_executed
    if not total:
        return 1.0
    floor = predictor.total_executed * relative_threshold
    covered = sum(
        executed
        for branch_id, (executed, _) in target.counts.items()
        if predictor.counts.get(branch_id, (0.0, 0.0))[0] > floor
    )
    return covered / total


def emphasis_overlap(predictor: BranchProfile, target: BranchProfile) -> float:
    """Cosine similarity of the two execution-frequency distributions."""
    dot = 0.0
    for branch_id, (executed, _) in target.counts.items():
        other = predictor.counts.get(branch_id)
        if other is not None:
            dot += executed * other[0]
    norm_target = math.sqrt(
        sum(executed ** 2 for executed, _ in target.counts.values())
    )
    norm_predictor = math.sqrt(
        sum(executed ** 2 for executed, _ in predictor.counts.values())
    )
    if norm_target == 0 or norm_predictor == 0:
        return 0.0
    return dot / (norm_target * norm_predictor)


def pearson(xs: List[float], ys: List[float]) -> float:
    """Pearson correlation (0.0 when degenerate)."""
    count = len(xs)
    if count < 2:
        return 0.0
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


@dataclasses.dataclass
class CoveragePair:
    workload: str
    predictor: str
    target: str
    quality: float  # pairwise IPB / self IPB
    measures: Dict[str, float]


@dataclasses.dataclass
class CoverageResult:
    pairs: List[CoveragePair]
    correlations: Dict[str, float]

    def format_text(self) -> str:
        table = TextTable(
            "Coverage measures vs cross-prediction quality "
            "(Pearson r over all predictor/target pairs)",
            ["measure", "correlation", "pairs"],
        )
        for measure in MEASURES:
            table.add_row(
                measure, f"{self.correlations[measure]:+.2f}", len(self.pairs)
            )
        table.add_note(
            "the paper tried the same family of measures and could not make "
            "them correlate; in our smaller, cleaner setting weighted "
            "coverage does — supporting the intuition the paper could not "
            "quantify (see EXPERIMENTS.md)"
        )
        return table.format_text()


def run(runner: Optional[WorkloadRunner] = None) -> CoverageResult:
    if runner is None:
        runner = WorkloadRunner()
    runner.run_many(dataset_requests(multi_dataset_workloads()))
    pairs: List[CoveragePair] = []
    for workload in multi_dataset_workloads():
        experiment = CrossDatasetExperiment(runner, workload.name)
        names = experiment.dataset_names()
        profiles = experiment.profiles
        for target in names:
            self_ipb = experiment.ipb(target, experiment.self_predictor(target))
            for predictor_name in names:
                if predictor_name == target:
                    continue
                quality = (
                    experiment.ipb(
                        target, experiment.single_predictor(predictor_name)
                    )
                    / self_ipb
                    if self_ipb
                    else 0.0
                )
                predictor_profile = profiles[predictor_name]
                target_profile = profiles[target]
                pairs.append(
                    CoveragePair(
                        workload=workload.name,
                        predictor=predictor_name,
                        target=target,
                        quality=quality,
                        measures={
                            "weighted_coverage": weighted_coverage(
                                predictor_profile, target_profile
                            ),
                            "threshold_coverage": threshold_coverage(
                                predictor_profile, target_profile
                            ),
                            "emphasis_overlap": emphasis_overlap(
                                predictor_profile, target_profile
                            ),
                        },
                    )
                )
    correlations = {
        measure: pearson(
            [pair.measures[measure] for pair in pairs],
            [pair.quality for pair in pairs],
        )
        for measure in MEASURES
    }
    return CoverageResult(pairs=pairs, correlations=correlations)
