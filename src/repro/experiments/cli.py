"""Command-line entry point: regenerate every table and figure.

Usage::

    repro-experiments [table1|...|figure3|runlengths|coverage|dynamic|proofs|all]
    repro-experiments figure2 --chart      # ASCII bar charts
    repro-experiments dynamic --jobs 2     # static vs hardware predictors
    repro-experiments export --out results.json
"""
from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.core.runner import WorkloadRunner
from repro.experiments import (
    ablations,
    coverage,
    dynamic_compare,
    figure1,
    figure2,
    figure3,
    informal,
    overview,
    proofs,
    runlengths,
    scaling,
    table1,
    table2,
    table3,
)

_SIMPLE = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "runlengths": runlengths.run,
    "coverage": coverage.run,
    "scaling": scaling.run,
    "dynamic": dynamic_compare.run,
    "overview": overview.run,
    "proofs": proofs.run,
}


def _run_informal(runner: WorkloadRunner) -> List[str]:
    sections = [
        informal.combine_modes(runner).format_text(),
        informal.heuristics(runner).format_text(),
        informal.percent_taken(runner).format_text(),
        informal.compress_cross(runner).format_text(),
        informal.wrong_measure(runner).format_text(),
        informal.dynamic_comparison(
            runner, programs=["li", "gcc", "compress", "tomcatv", "lfk", "doduc"]
        ).format_text(),
    ]
    return sections


def _run_ablations(runner: WorkloadRunner) -> List[str]:
    return [
        ablations.inlining(runner).format_text(),
        ablations.if_conversion(runner).format_text(),
    ]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=sorted(_SIMPLE) + ["informal", "ablations", "export", "all"],
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk run cache",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan independent runs across N worker processes "
        "(0 = all cores; default: the REPRO_JOBS env var, else 1; "
        "parallel fan-out needs the on-disk cache, so it is "
        "disabled by --no-cache)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII bar charts instead of tables",
    )
    parser.add_argument(
        "--out",
        default="results.json",
        help="output path for the export subcommand",
    )
    args = parser.parse_args(argv)

    try:
        runner = WorkloadRunner(
            cache_dir=None if args.no_cache else "auto", jobs=args.jobs
        )
    except ValueError as exc:
        parser.error(str(exc))
    names = (
        sorted(_SIMPLE) + ["informal", "ablations"] if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        started = time.time()
        if name == "informal":
            sections = _run_informal(runner)
        elif name == "ablations":
            sections = _run_ablations(runner)
        elif name == "export":
            from repro.experiments.export import export_json

            export_json(args.out, runner)
            sections = [f"wrote {args.out}"]
        else:
            result = _SIMPLE[name](runner)
            if args.chart and hasattr(result, "format_chart"):
                sections = [result.format_chart()]
            else:
                sections = [result.format_text()]
        for section in sections:
            print(section)
            print()
        print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
