"""The paper's §3 "Informal Observations", made formal and repeatable.

* scaled vs. unscaled vs. polling summary predictors;
* simple loop/non-loop heuristics "gave up about a factor of two";
* branch percent-taken as a "program constant" (spread ≤ 9% except spice2g6);
* compress and uncompress do not predict each other;
* dynamic 1-bit / 2-bit hardware schemes for context (the 80–90% systems /
  95–100% FORTRAN numbers the paper cites from prior work).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.experiment import CrossDatasetExperiment
from repro.core.runner import WorkloadRunner
from repro.experiments.report import TextTable
from repro.metrics.ipb import ipb_self_prediction, ipb_with_predictor
from repro.prediction.base import ProfilePredictor
from repro.prediction.combine import COMBINE_MODES, combine_profiles
from repro.prediction.evaluate import self_prediction
from repro.prediction.heuristics import (
    LoopHeuristicPredictor,
    OpcodeHeuristicPredictor,
)
from repro.dynamic.bimodal import BimodalPredictor
from repro.dynamic.score import DynamicScoreMonitor
from repro.workloads.registry import all_workloads, multi_dataset_workloads


# --- scaled vs unscaled vs polling ------------------------------------------


@dataclasses.dataclass
class CombineModeRow:
    program: str
    #: mode -> mean leave-one-out IPB as a fraction of self IPB.
    fraction_of_self: Dict[str, float]


@dataclasses.dataclass
class CombineModeResult:
    rows: List[CombineModeRow]

    def mean_fraction(self, mode: str) -> float:
        values = [row.fraction_of_self[mode] for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def format_text(self) -> str:
        table = TextTable(
            "Summary predictors: scaled vs unscaled vs polling "
            "(mean leave-one-out IPB / self IPB)",
            ["program"] + list(COMBINE_MODES),
        )
        for row in self.rows:
            table.add_row(
                row.program,
                *(f"{100 * row.fraction_of_self[m]:.0f}%" for m in COMBINE_MODES),
            )
        table.add_row(
            "MEAN",
            *(f"{100 * self.mean_fraction(m):.0f}%" for m in COMBINE_MODES),
        )
        table.add_note(
            "paper: scaled and unscaled indistinguishable on average; "
            "polling poor"
        )
        return table.format_text()


def combine_modes(runner: Optional[WorkloadRunner] = None) -> CombineModeResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[CombineModeRow] = []
    for workload in multi_dataset_workloads():
        experiment = CrossDatasetExperiment(runner, workload.name)
        fractions = {mode: [] for mode in COMBINE_MODES}
        for target in experiment.dataset_names():
            self_ipb = experiment.ipb(target, experiment.self_predictor(target))
            for mode in COMBINE_MODES:
                predictor = experiment.combined_predictor(target, mode=mode)
                value = experiment.ipb(target, predictor)
                fractions[mode].append(value / self_ipb if self_ipb else 0.0)
        rows.append(
            CombineModeRow(
                program=workload.name,
                fraction_of_self={
                    mode: sum(vals) / len(vals) for mode, vals in fractions.items()
                },
            )
        )
    return CombineModeResult(rows=rows)


# --- simple heuristics --------------------------------------------------------


@dataclasses.dataclass
class HeuristicRow:
    program: str
    dataset: str
    ipb_self: float
    ipb_loop_heuristic: float
    ipb_opcode_heuristic: float

    @property
    def loop_factor(self) -> float:
        """How many times worse the loop heuristic is than profile feedback."""
        if self.ipb_loop_heuristic == 0:
            return float("inf")
        return self.ipb_self / self.ipb_loop_heuristic


@dataclasses.dataclass
class HeuristicResult:
    rows: List[HeuristicRow]

    def mean_loop_factor(self) -> float:
        factors = [row.loop_factor for row in self.rows]
        return sum(factors) / len(factors) if factors else 0.0

    def format_text(self) -> str:
        table = TextTable(
            "Simple opcode/loop heuristics vs profile feedback (instrs/break)",
            ["program", "dataset", "profile(self)", "loop-heur", "opcode-heur",
             "self/loop factor"],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.dataset,
                row.ipb_self,
                row.ipb_loop_heuristic,
                row.ipb_opcode_heuristic,
                f"{row.loop_factor:.1f}x",
            )
        table.add_note(
            f"mean factor {self.mean_loop_factor():.1f}x — the paper reports "
            "heuristics 'usually gave up about a factor of two'"
        )
        return table.format_text()


def heuristics(runner: Optional[WorkloadRunner] = None) -> HeuristicResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[HeuristicRow] = []
    for workload in all_workloads():
        compiled = runner.compiled(workload.name)
        loop_predictor = LoopHeuristicPredictor(compiled.module)
        opcode_predictor = OpcodeHeuristicPredictor(compiled.module)
        for dataset in workload.dataset_names():
            result = runner.run(workload.name, dataset)
            rows.append(
                HeuristicRow(
                    program=workload.name,
                    dataset=dataset,
                    ipb_self=ipb_self_prediction(result),
                    ipb_loop_heuristic=ipb_with_predictor(result, loop_predictor),
                    ipb_opcode_heuristic=ipb_with_predictor(
                        result, opcode_predictor
                    ),
                )
            )
    return HeuristicResult(rows=rows)


# --- percent taken as a program constant ------------------------------------------


@dataclasses.dataclass
class PercentTakenRow:
    program: str
    per_dataset: Dict[str, float]

    @property
    def spread(self) -> float:
        values = list(self.per_dataset.values())
        return max(values) - min(values)


@dataclasses.dataclass
class PercentTakenResult:
    rows: List[PercentTakenRow]

    def max_spread_program(self) -> str:
        return max(self.rows, key=lambda row: row.spread).program

    def format_text(self) -> str:
        table = TextTable(
            "Branch percent-taken per dataset (a 'program constant')",
            ["program", "min", "max", "spread"],
        )
        for row in sorted(self.rows, key=lambda r: r.spread):
            values = list(row.per_dataset.values())
            table.add_row(
                row.program,
                f"{100 * min(values):.0f}%",
                f"{100 * max(values):.0f}%",
                f"{100 * row.spread:.0f}%",
            )
        table.add_note(
            "paper: spice2g6 spread 21%..76%; all other programs within 9%"
        )
        return table.format_text()


def percent_taken(runner: Optional[WorkloadRunner] = None) -> PercentTakenResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[PercentTakenRow] = []
    for workload in multi_dataset_workloads():
        per_dataset = {
            dataset: runner.run(workload.name, dataset).percent_taken()
            for dataset in workload.dataset_names()
        }
        rows.append(PercentTakenRow(program=workload.name, per_dataset=per_dataset))
    return PercentTakenResult(rows=rows)


# --- compress vs uncompress ----------------------------------------------------------


@dataclasses.dataclass
class CompressCrossResult:
    #: (target mode) -> mean IPB fraction of self when predicted by the
    #: other mode's combined profile.
    fraction_by_target: Dict[str, float]
    #: same-mode leave-one-out fraction for comparison.
    same_mode_fraction: Dict[str, float]

    def format_text(self) -> str:
        table = TextTable(
            "compress vs uncompress: one mode predicting the other",
            ["target mode", "same-mode predictor", "other-mode predictor"],
        )
        for mode in ("compress", "uncompress"):
            table.add_row(
                mode,
                f"{100 * self.same_mode_fraction[mode]:.0f}% of self",
                f"{100 * self.fraction_by_target[mode]:.0f}% of self",
            )
        table.add_note(
            "paper: 'there seemed to be no correlation between them. Using "
            "the data from one to predict the other is a very bad idea.'"
        )
        return table.format_text()


def compress_cross(
    runner: Optional[WorkloadRunner] = None,
) -> CompressCrossResult:
    if runner is None:
        runner = WorkloadRunner()
    profiles = {
        mode: combine_profiles(
            list(runner.profiles(mode).values()), mode="scaled", program=mode
        )
        for mode in ("compress", "uncompress")
    }
    fraction_by_target: Dict[str, float] = {}
    same_mode_fraction: Dict[str, float] = {}
    for target_mode, other_mode in (
        ("compress", "uncompress"),
        ("uncompress", "compress"),
    ):
        experiment = CrossDatasetExperiment(runner, target_mode)
        cross_fractions = []
        same_fractions = []
        for dataset in experiment.dataset_names():
            self_ipb = experiment.ipb(dataset, experiment.self_predictor(dataset))
            other_predictor = ProfilePredictor(
                profiles[other_mode], name=other_mode
            )
            cross_fractions.append(
                experiment.ipb(dataset, other_predictor) / self_ipb
            )
            same_fractions.append(
                experiment.ipb(dataset, experiment.combined_predictor(dataset))
                / self_ipb
            )
        fraction_by_target[target_mode] = sum(cross_fractions) / len(cross_fractions)
        same_mode_fraction[target_mode] = sum(same_fractions) / len(same_fractions)
    return CompressCrossResult(
        fraction_by_target=fraction_by_target,
        same_mode_fraction=same_mode_fraction,
    )


# --- dynamic predictors (context) -------------------------------------------------


@dataclasses.dataclass
class DynamicRow:
    program: str
    dataset: str
    category: str
    static_self_accuracy: float
    one_bit_accuracy: float
    two_bit_accuracy: float


@dataclasses.dataclass
class DynamicResult:
    rows: List[DynamicRow]

    def mean_accuracy(self, category: str, field: str) -> float:
        values = [
            getattr(row, field) for row in self.rows if row.category == category
        ]
        return sum(values) / len(values) if values else 0.0

    def format_text(self) -> str:
        table = TextTable(
            "Dynamic (1-bit / 2-bit) vs static self prediction, % branches "
            "correct",
            ["program", "dataset", "static self", "1-bit", "2-bit"],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.dataset,
                f"{100 * row.static_self_accuracy:.1f}%",
                f"{100 * row.one_bit_accuracy:.1f}%",
                f"{100 * row.two_bit_accuracy:.1f}%",
            )
        table.add_note(
            "context for the paper's citation of [Smith 81]/[Lee and Smith "
            "84]: simple dynamic schemes get 80-90% on systems code, "
            "95-100% on scientific FORTRAN"
        )
        return table.format_text()


def dynamic_comparison(
    runner: Optional[WorkloadRunner] = None,
    programs: Optional[List[str]] = None,
) -> DynamicResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[DynamicRow] = []
    for workload in all_workloads():
        if programs is not None and workload.name not in programs:
            continue
        # The paper's cited schemes: infinite-table (unaliased) 1-bit and
        # 2-bit counters, one per static branch.  The monitor resets its
        # models at every run start, so one monitor serves all datasets.
        monitor = DynamicScoreMonitor(
            [
                BimodalPredictor(table_size=None, num_bits=1),
                BimodalPredictor(table_size=None, num_bits=2),
            ],
            runner.compiled(workload.name).lowered.branch_table,
        )
        for dataset in workload.dataset_names():
            result = runner.run(workload.name, dataset, monitors=[monitor])
            one_bit, two_bit = monitor.scores(result)
            rows.append(
                DynamicRow(
                    program=workload.name,
                    dataset=dataset,
                    category=workload.category,
                    static_self_accuracy=self_prediction(result).percent_correct,
                    one_bit_accuracy=one_bit.percent_correct,
                    two_bit_accuracy=two_bit.percent_correct,
                )
            )
    return DynamicResult(rows=rows)


# --- cross-dataset static accuracy (percent correct, the 'wrong' measure) ---------


@dataclasses.dataclass
class WrongMeasureRow:
    """The fpppp-vs-li observation: percent-correct ranks programs wrongly."""

    program: str
    dataset: str
    percent_correct_self: float
    branch_density: float
    ipb_self: float


@dataclasses.dataclass
class WrongMeasureResult:
    rows: List[WrongMeasureRow]

    def find(self, program: str, dataset: str) -> WrongMeasureRow:
        for row in self.rows:
            if row.program == program and row.dataset == dataset:
                return row
        raise KeyError((program, dataset))

    def format_text(self) -> str:
        table = TextTable(
            "Why percent-correct is the wrong measure (fpppp vs li)",
            ["program", "dataset", "% correct (self)", "instrs/branch",
             "instrs/break"],
        )
        for row in self.rows:
            table.add_row(
                row.program,
                row.dataset,
                f"{100 * row.percent_correct_self:.1f}%",
                row.branch_density,
                row.ipb_self,
            )
        table.add_note(
            "paper: fpppp 83% vs li 85% correct — nearly equal — yet fpppp "
            "branches every ~170 instructions and li every ~10"
        )
        return table.format_text()


def wrong_measure(
    runner: Optional[WorkloadRunner] = None,
) -> WrongMeasureResult:
    if runner is None:
        runner = WorkloadRunner()
    rows: List[WrongMeasureRow] = []
    for program, dataset in (
        ("fpppp", "4atoms"),
        ("fpppp", "8atoms"),
        ("li", "5queens"),
        ("li", "6queens"),
        ("li", "kittyv"),
        ("li", "sieve1"),
    ):
        result = runner.run(program, dataset)
        report = self_prediction(result)
        rows.append(
            WrongMeasureRow(
                program=program,
                dataset=dataset,
                percent_correct_self=report.percent_correct,
                branch_density=result.instructions / result.total_branch_execs,
                ipb_self=ipb_self_prediction(result),
            )
        )
    return WrongMeasureResult(rows=rows)
