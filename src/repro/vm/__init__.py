"""The counting virtual machine (MFPixie analog) and its run results."""
from repro.vm.counters import ControlEvents, RunResult
from repro.vm.errors import InstructionLimitExceeded, VMError
from repro.vm.machine import (
    DEFAULT_MAX_CALL_DEPTH,
    DEFAULT_MAX_INSTRUCTIONS,
    ENGINES,
    Machine,
    run_program,
)
from repro.vm.monitors import (
    BranchMonitor,
    OnlinePredictorMonitor,
    OutcomeRecorder,
    RunLengthMonitor,
)

__all__ = [
    "BranchMonitor",
    "ControlEvents",
    "DEFAULT_MAX_CALL_DEPTH",
    "DEFAULT_MAX_INSTRUCTIONS",
    "ENGINES",
    "InstructionLimitExceeded",
    "Machine",
    "OnlinePredictorMonitor",
    "OutcomeRecorder",
    "RunLengthMonitor",
    "RunResult",
    "VMError",
    "run_program",
]
