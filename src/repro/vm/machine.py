"""The counting virtual machine (the reproduction's MFPixie).

Executes a :class:`~repro.ir.lower.LoweredProgram`, counting every executed
RISC-level operation, every conditional-branch outcome (per static branch),
and every other control-transfer event.  Execution starts at ``main`` (which
takes no arguments); the program ends when ``main`` returns or a ``halt``
executes, and ``main``'s return value is the exit code.

Two execution engines share this entry point:

* ``engine="fast"`` (the default) predecodes the program once — operand
  pre-binding plus basic-block superinstruction fusion, see
  :mod:`repro.vm.engine` — and runs one of two loop variants selected at
  ``run()`` time: a monitor-free fast loop, or the monitored loop when
  branch observers are attached.
* ``engine="legacy"`` is the original single dispatch loop over the flat
  instruction tuples, kept as the differential-testing and benchmarking
  baseline.

Both engines produce bit-identical :class:`RunResult`\\ s (instructions,
per-branch exec/taken counts, control events, output, exit code); the
differential harness in ``tests/test_vm_engine.py`` enforces that.
"""
from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.lower import LoweredProgram
from repro.ir.opcodes import BINOP_FUNCS, UNOP_FUNCS, Opcode
from repro.vm.counters import ControlEvents, RunResult
from repro.vm.errors import InstructionLimitExceeded, VMError
from repro.vm.monitors import BranchMonitor

_OP_CONST = int(Opcode.CONST)
_OP_MOV = int(Opcode.MOV)
_OP_BIN = int(Opcode.BIN)
_OP_UN = int(Opcode.UN)
_OP_SELECT = int(Opcode.SELECT)
_OP_LOAD = int(Opcode.LOAD)
_OP_STORE = int(Opcode.STORE)
_OP_GETC = int(Opcode.GETC)
_OP_PUTC = int(Opcode.PUTC)
_OP_CALL = int(Opcode.CALL)
_OP_ICALL = int(Opcode.ICALL)
_OP_BR = int(Opcode.BR)
_OP_JMP = int(Opcode.JMP)
_OP_RET = int(Opcode.RET)
_OP_HALT = int(Opcode.HALT)

#: Default per-run instruction budget: large enough for every workload,
#: small enough to catch runaway programs in seconds.
DEFAULT_MAX_INSTRUCTIONS = 200_000_000

#: Default call-depth limit (catches unbounded recursion).
DEFAULT_MAX_CALL_DEPTH = 10_000

#: Valid values for the ``engine`` selector.
ENGINES = ("fast", "legacy")


class Machine:
    """Executes lowered programs and collects :class:`RunResult` counts."""

    def __init__(
        self,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        max_call_depth: int = DEFAULT_MAX_CALL_DEPTH,
        engine: str = "fast",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.max_instructions = max_instructions
        self.max_call_depth = max_call_depth
        self.engine = engine

    def run(
        self,
        program: LoweredProgram,
        input_data: bytes = b"",
        monitors: Sequence[BranchMonitor] = (),
    ) -> RunResult:
        """Run ``program`` over ``input_data`` and return the measured counts."""
        main = program.functions[program.main_index]
        if main.num_params != 0:
            raise VMError("main must take no parameters")
        for monitor in monitors:
            monitor.on_run_start(len(program.branch_table))

        if self.engine == "fast":
            from repro.vm.engine import predecode, run_fast, run_monitored

            decoded = predecode(program)
            if monitors:
                return run_monitored(
                    decoded, input_data, monitors,
                    self.max_instructions, self.max_call_depth,
                )
            return run_fast(
                decoded, input_data, self.max_instructions, self.max_call_depth
            )
        return self._run_legacy(program, input_data, monitors)

    def _run_legacy(
        self,
        program: LoweredProgram,
        input_data: bytes,
        monitors: Sequence[BranchMonitor],
    ) -> RunResult:
        """The original tuple-dispatch interpreter (the baseline engine)."""
        functions = program.functions
        main = functions[program.main_index]

        memory = list(program.memory_init)
        mem_size = len(memory)
        num_branches = len(program.branch_table)
        branch_exec = [0] * num_branches
        branch_taken = [0] * num_branches
        output = bytearray()
        in_pos = 0
        in_len = len(input_data)

        direct_calls = direct_returns = 0
        indirect_calls = indirect_returns = 0
        jumps = selects = 0
        icount = 0
        limit = self.max_instructions
        depth_limit = self.max_call_depth

        have_monitors = bool(monitors)
        in_monitor = False

        binop_funcs = BINOP_FUNCS
        unop_funcs = UNOP_FUNCS

        regs = [0] * main.num_regs
        code = main.code
        pc = 0
        # Call stack entries: (code, regs, return_pc, dst_reg, via_indirect).
        stack = []
        exit_code: Optional[int] = None

        try:
            while True:
                ins = code[pc]
                pc += 1
                icount += 1
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                op = ins[0]
                if op == _OP_BIN:
                    regs[ins[2]] = binop_funcs[ins[1]](regs[ins[3]], regs[ins[4]])
                elif op == _OP_LOAD:
                    addr = regs[ins[2]]
                    if addr < 0 or addr >= mem_size:
                        raise VMError(
                            f"{program.name}: load from bad address {addr}"
                        )
                    regs[ins[1]] = memory[addr]
                elif op == _OP_CONST:
                    regs[ins[1]] = ins[2]
                elif op == _OP_BR:
                    bidx = ins[4]
                    branch_exec[bidx] += 1
                    if regs[ins[1]] != 0:
                        branch_taken[bidx] += 1
                        pc = ins[2]
                        if have_monitors:
                            in_monitor = True
                            for monitor in monitors:
                                monitor.on_branch(bidx, True, icount)
                            in_monitor = False
                    else:
                        pc = ins[3]
                        if have_monitors:
                            in_monitor = True
                            for monitor in monitors:
                                monitor.on_branch(bidx, False, icount)
                            in_monitor = False
                elif op == _OP_STORE:
                    addr = regs[ins[1]]
                    if addr < 0 or addr >= mem_size:
                        raise VMError(
                            f"{program.name}: store to bad address {addr}"
                        )
                    memory[addr] = regs[ins[2]]
                elif op == _OP_MOV:
                    regs[ins[1]] = regs[ins[2]]
                elif op == _OP_JMP:
                    pc = ins[1]
                    jumps += 1
                elif op == _OP_CALL:
                    callee = functions[ins[1]]
                    new_regs = [0] * callee.num_regs
                    for i, src in enumerate(ins[3]):
                        new_regs[i] = regs[src]
                    if len(stack) >= depth_limit:
                        raise VMError(f"{program.name}: call depth limit exceeded")
                    stack.append((code, regs, pc, ins[2], False))
                    code = callee.code
                    regs = new_regs
                    pc = 0
                    direct_calls += 1
                elif op == _OP_RET:
                    value = 0 if ins[1] == -1 else regs[ins[1]]
                    if not stack:
                        exit_code = value
                        break
                    code, regs, pc, dst, via_indirect = stack.pop()
                    if via_indirect:
                        indirect_returns += 1
                    else:
                        direct_returns += 1
                    if dst != -1:
                        regs[dst] = value
                elif op == _OP_SELECT:
                    regs[ins[1]] = regs[ins[3]] if regs[ins[2]] != 0 else regs[ins[4]]
                    selects += 1
                elif op == _OP_UN:
                    regs[ins[2]] = unop_funcs[ins[1]](regs[ins[3]])
                elif op == _OP_GETC:
                    if in_pos < in_len:
                        regs[ins[1]] = input_data[in_pos]
                        in_pos += 1
                    else:
                        regs[ins[1]] = -1
                elif op == _OP_PUTC:
                    output.append(regs[ins[1]] & 0xFF)
                elif op == _OP_ICALL:
                    target = regs[ins[1]]
                    if target < 0 or target >= len(functions):
                        raise VMError(
                            f"{program.name}: indirect call to bad target {target}"
                        )
                    callee = functions[target]
                    if len(ins[3]) != callee.num_params:
                        raise VMError(
                            f"{program.name}: indirect call to {callee.name} with "
                            f"{len(ins[3])} args, expects {callee.num_params}"
                        )
                    new_regs = [0] * callee.num_regs
                    for i, src in enumerate(ins[3]):
                        new_regs[i] = regs[src]
                    if len(stack) >= depth_limit:
                        raise VMError(f"{program.name}: call depth limit exceeded")
                    stack.append((code, regs, pc, ins[2], True))
                    code = callee.code
                    regs = new_regs
                    pc = 0
                    indirect_calls += 1
                elif op == _OP_HALT:
                    exit_code = 0
                    break
                else:  # pragma: no cover - lowering emits only known opcodes
                    raise VMError(f"{program.name}: unknown opcode {op}")
        except ZeroDivisionError:
            if in_monitor:
                raise  # a monitor's own bug, not a guest division fault
            raise VMError(f"{program.name}: division by zero") from None
        except IndexError:
            if in_monitor:
                raise  # a monitor's own bug, not a guest memory fault
            raise VMError(
                f"{program.name}: bad register or code reference at pc {pc - 1}"
            ) from None

        for monitor in monitors:
            monitor.on_run_end(icount)

        events = ControlEvents(
            direct_calls=direct_calls,
            direct_returns=direct_returns,
            indirect_calls=indirect_calls,
            indirect_returns=indirect_returns,
            jumps=jumps,
            selects=selects,
        )
        return RunResult(
            program=program.name,
            instructions=icount,
            branch_table=list(program.branch_table),
            branch_exec=branch_exec,
            branch_taken=branch_taken,
            events=events,
            output=bytes(output),
            exit_code=exit_code,
        )


def run_program(
    program: LoweredProgram,
    input_data: bytes = b"",
    monitors: Sequence[BranchMonitor] = (),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    engine: str = "fast",
) -> RunResult:
    """Convenience wrapper: run a program on a fresh :class:`Machine`."""
    machine = Machine(max_instructions=max_instructions, engine=engine)
    return machine.run(program, input_data=input_data, monitors=monitors)
