"""Branch monitors: online observers of the dynamic branch-outcome stream.

Static prediction can be evaluated after the fact from aggregate counts, but
some measurements depend on outcome *order* or *position*: dynamic
predictors (the 1-bit and 2-bit hardware schemes the paper compares against)
and the distribution of instruction run lengths between breaks (§3: "The
distribution of runs of instructions between mispredicted branches will not
be constant").  A monitor is attached to a VM run and receives every
conditional branch outcome along with the current executed-instruction
count.
"""
from __future__ import annotations

from typing import Dict, List, Sequence


class BranchMonitor:
    """Interface: receives each (branch_index, taken, instruction_count)."""

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        raise NotImplementedError

    def on_run_start(self, num_branches: int) -> None:
        """Called once before execution with the static branch count."""


class OutcomeRecorder(BranchMonitor):
    """Records the full outcome sequence (for tests and small programs only)."""

    def __init__(self) -> None:
        self.outcomes: List[tuple] = []

    def on_run_start(self, num_branches: int) -> None:
        self.outcomes = []

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        self.outcomes.append((branch_index, taken))


class OnlinePredictorMonitor(BranchMonitor):
    """Scores a dynamic predictor online, branch by branch.

    The predictor state lives here (one small state per static branch); hits
    and misses are tallied as the run progresses.  This mirrors how the
    hardware schemes in [Smith 81] / [Lee and Smith 84] behave, with an
    infinite (untagged, unaliased) branch history table.
    """

    def __init__(self, num_bits: int = 2, initial_state: int = 0) -> None:
        if num_bits not in (1, 2):
            raise ValueError("num_bits must be 1 or 2")
        self.num_bits = num_bits
        self.initial_state = initial_state
        self.max_state = (1 << num_bits) - 1
        self.threshold = 1 << (num_bits - 1)
        self.states: List[int] = []
        self.hits = 0
        self.misses = 0

    def on_run_start(self, num_branches: int) -> None:
        self.states = [self.initial_state] * num_branches
        self.hits = 0
        self.misses = 0

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        state = self.states[branch_index]
        predicted_taken = state >= self.threshold
        if predicted_taken == taken:
            self.hits += 1
        else:
            self.misses += 1
        if taken:
            if state < self.max_state:
                self.states[branch_index] = state + 1
        else:
            if state > 0:
                self.states[branch_index] = state - 1

    @property
    def accuracy(self) -> float:
        """Fraction of branch executions predicted correctly."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RunLengthMonitor(BranchMonitor):
    """Records instruction run lengths between mispredicted branches.

    Takes the per-branch static directions (index -> predicted taken) of
    some static predictor; each time a branch goes against its prediction,
    the number of instructions executed since the previous misprediction is
    recorded.  The paper's §3 point is that these runs are *not* evenly
    spaced — "far more ILP will be available if one has 80 instructions
    followed by two mispredicted branches than if one has 40 instructions,
    a mispredicted branch".
    """

    def __init__(self, directions: Sequence[bool]):
        self.directions = list(directions)
        self.run_lengths: List[int] = []
        self._last_break_icount = 0

    def on_run_start(self, num_branches: int) -> None:
        if len(self.directions) < num_branches:
            self.directions = self.directions + [False] * (
                num_branches - len(self.directions)
            )
        self.run_lengths = []
        self._last_break_icount = 0

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        if taken != self.directions[branch_index]:
            self.run_lengths.append(icount - self._last_break_icount)
            self._last_break_icount = icount

    # -- statistics ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the run-length distribution."""
        lengths = sorted(self.run_lengths)
        if not lengths:
            return {
                "count": 0, "mean": 0.0, "median": 0.0,
                "p10": 0.0, "p90": 0.0, "cv": 0.0,
            }
        count = len(lengths)
        mean = sum(lengths) / count
        variance = sum((value - mean) ** 2 for value in lengths) / count
        return {
            "count": count,
            "mean": mean,
            "median": float(lengths[count // 2]),
            "p10": float(lengths[int(count * 0.10)]),
            "p90": float(lengths[min(int(count * 0.90), count - 1)]),
            "cv": (variance ** 0.5) / mean if mean else 0.0,
        }
