"""Branch monitors: online observers of the dynamic branch-outcome stream.

Static prediction can be evaluated after the fact from aggregate counts, but
some measurements depend on outcome *order* or *position*: dynamic
predictors (the 1-bit and 2-bit hardware schemes the paper compares against)
and the distribution of instruction run lengths between breaks (§3: "The
distribution of runs of instructions between mispredicted branches will not
be constant").  A monitor is attached to a VM run and receives every
conditional branch outcome along with the current executed-instruction
count.
"""
from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


class BranchMonitor:
    """Interface: receives each (branch_index, taken, instruction_count)."""

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        raise NotImplementedError

    def on_run_start(self, num_branches: int) -> None:
        """Called once before execution with the static branch count."""

    def on_run_end(self, icount: int) -> None:
        """Called once after a normally-terminating run with the final
        executed-instruction count (both engines, both loop variants).
        Not called when the run aborts with a VM error or limit."""


class OutcomeRecorder(BranchMonitor):
    """Records the full outcome sequence (for tests and small programs only)."""

    def __init__(self) -> None:
        self.outcomes: List[tuple] = []

    def on_run_start(self, num_branches: int) -> None:
        self.outcomes = []

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        self.outcomes.append((branch_index, taken))


class OnlinePredictorMonitor(BranchMonitor):
    """Deprecated shim: an infinite-table bimodal counter scheme.

    The real implementation now lives in :mod:`repro.dynamic` — this
    wraps ``BimodalPredictor(table_size=None)`` (one untagged, unaliased
    counter per static branch) and keeps the original hits/misses/states
    surface for existing callers.  New code should build a
    :class:`repro.dynamic.DynamicScoreMonitor` over zoo models instead,
    which scores many predictors in one pass and reports the paper's
    instructions-per-break measure, not just accuracy.
    """

    def __init__(self, num_bits: int = 2, initial_state: int = 0) -> None:
        from repro.dynamic.bimodal import BimodalPredictor

        if num_bits not in (1, 2):
            raise ValueError("num_bits must be 1 or 2")
        self.num_bits = num_bits
        self.initial_state = initial_state
        self.max_state = (1 << num_bits) - 1
        self.threshold = 1 << (num_bits - 1)
        self._model = BimodalPredictor(
            table_size=None, num_bits=num_bits, initial_state=initial_state
        )
        self.hits = 0
        self.misses = 0

    def on_run_start(self, num_branches: int) -> None:
        from repro.ir.instructions import BranchId

        # Identities are irrelevant for an infinite (direct-indexed)
        # table; synthesize placeholders to satisfy the reset interface.
        self._model.reset([BranchId("", i) for i in range(num_branches)])
        self.hits = 0
        self.misses = 0

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        if self._model.observe(branch_index, taken) == taken:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def states(self) -> List[int]:
        """The per-branch counter states (the pre-shim attribute)."""
        return list(self._model.snapshot()[0])

    @property
    def accuracy(self) -> float:
        """Fraction of branch executions predicted correctly; vacuously
        1.0 for a run with no branch executions, matching
        ``PredictionReport.percent_correct``."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0


class ProofViolationError(AssertionError):
    """A branch the static prover marked PROVEN went the other way.

    Proofs are guarantees, not predictions — one counterexample means the
    prover (or an analysis under it) is unsound, so this is an assertion
    failure, not a measurement.
    """


class ProofCheckMonitor(BranchMonitor):
    """Cross-checks static branch-direction proofs against reality.

    Takes the proven directions keyed by branch *index* (see
    :attr:`LoweredProgram.branch_table` for the index -> identity mapping);
    unproven branches are simply not checked.  Violations are recorded as
    ``(branch_index, expected, icount)``; with ``fail_fast`` the first one
    raises :class:`ProofViolationError` mid-run.
    """

    def __init__(
        self, directions: Mapping[int, bool], fail_fast: bool = False
    ) -> None:
        self.directions = dict(directions)
        self.fail_fast = fail_fast
        self.violations: List[Tuple[int, bool, int]] = []
        self.checked = 0

    def on_run_start(self, num_branches: int) -> None:
        self.violations = []
        self.checked = 0

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        expected = self.directions.get(branch_index)
        if expected is None:
            return
        self.checked += 1
        if taken != expected:
            self.violations.append((branch_index, expected, icount))
            if self.fail_fast:
                raise ProofViolationError(
                    f"branch {branch_index} proven "
                    f"{'taken' if expected else 'fall-through'} but went "
                    f"{'taken' if taken else 'fall-through'} at icount={icount}"
                )

    @property
    def ok(self) -> bool:
        return not self.violations


class RunLengthMonitor(BranchMonitor):
    """Records instruction run lengths between mispredicted branches.

    Takes the per-branch static directions (index -> predicted taken) of
    some static predictor; each time a branch goes against its prediction,
    the number of instructions executed since the previous misprediction is
    recorded.  The paper's §3 point is that these runs are *not* evenly
    spaced — "far more ILP will be available if one has 80 instructions
    followed by two mispredicted branches than if one has 40 instructions,
    a mispredicted branch".
    """

    def __init__(self, directions: Sequence[bool]):
        self.directions = list(directions)
        self.run_lengths: List[int] = []
        self._last_break_icount = 0

    def on_run_start(self, num_branches: int) -> None:
        if len(self.directions) < num_branches:
            self.directions = self.directions + [False] * (
                num_branches - len(self.directions)
            )
        self.run_lengths = []
        self._last_break_icount = 0

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        if taken != self.directions[branch_index]:
            self.run_lengths.append(icount - self._last_break_icount)
            self._last_break_icount = icount

    def on_run_end(self, icount: int) -> None:
        # Flush the tail run: instructions executed after the last
        # misprediction still form a (final, break-terminated-by-exit) run;
        # dropping them biases the mean/p90 low on workloads that end with
        # a long correctly-predicted stretch.
        if icount > self._last_break_icount:
            self.run_lengths.append(icount - self._last_break_icount)
            self._last_break_icount = icount

    # -- statistics ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the run-length distribution."""
        lengths = sorted(self.run_lengths)
        if not lengths:
            return {
                "count": 0, "mean": 0.0, "median": 0.0,
                "p10": 0.0, "p90": 0.0, "cv": 0.0,
            }
        count = len(lengths)
        mean = sum(lengths) / count
        variance = sum((value - mean) ** 2 for value in lengths) / count
        return {
            "count": count,
            "mean": mean,
            "median": float(lengths[count // 2]),
            "p10": float(lengths[int(count * 0.10)]),
            "p90": float(lengths[min(int(count * 0.90), count - 1)]),
            "cv": (variance ** 0.5) / mean if mean else 0.0,
        }
