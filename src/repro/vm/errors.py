"""Virtual machine error types."""
from __future__ import annotations


class VMError(Exception):
    """Raised for run-time faults (bad memory access, division by zero, ...)."""


class InstructionLimitExceeded(VMError):
    """Raised when a run exceeds its instruction budget (runaway program)."""
