"""Run results: the dynamic counts a single execution produces.

This is the union of what the paper's two tools collected:

* MFPixie-style data — the exact number of RISC-level operations executed,
  and counts of each kind of control-transfer event;
* IFPROBBER-style data — per static conditional branch, how many times it
  executed and how many times it was taken (condition true).

Everything downstream (profiles, predictors, the instructions-per-break
metrics) is arithmetic over one :class:`RunResult` per (program, dataset).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.ir.instructions import BranchId


@dataclasses.dataclass
class ControlEvents:
    """Counts of executed control-transfer events, by kind.

    Conditional branches are counted separately (per branch) in
    :attr:`RunResult.branch_exec`; this records everything else.
    """

    direct_calls: int = 0
    direct_returns: int = 0
    indirect_calls: int = 0
    indirect_returns: int = 0
    jumps: int = 0
    selects: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RunResult:
    """Everything measured during one run of one program on one dataset."""

    program: str
    instructions: int
    branch_table: List[BranchId]
    branch_exec: List[int]
    branch_taken: List[int]
    events: ControlEvents
    output: bytes
    exit_code: int

    @property
    def total_branch_execs(self) -> int:
        """Total dynamic conditional-branch executions."""
        return sum(self.branch_exec)

    @property
    def total_branch_taken(self) -> int:
        """Total dynamic taken (condition-true) branch executions."""
        return sum(self.branch_taken)

    def percent_taken(self) -> float:
        """Fraction of executed conditional branches that were taken.

        The paper's informal "branch percent taken as a program constant"
        measure.  Returns 0.0 for a run with no branch executions.
        """
        total = self.total_branch_execs
        return self.total_branch_taken / total if total else 0.0

    def branch_counts(self) -> Dict[BranchId, Tuple[int, int]]:
        """Per-branch ``(executed, taken)``, restricted to executed branches."""
        counts: Dict[BranchId, Tuple[int, int]] = {}
        for branch_id, executed, taken in zip(
            self.branch_table, self.branch_exec, self.branch_taken
        ):
            if executed:
                counts[branch_id] = (executed, taken)
        return counts
