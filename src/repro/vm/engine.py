"""Predecoded fast-path execution engine for the counting VM.

The legacy interpreter in :mod:`repro.vm.machine` re-derives everything per
dispatch: it fetches a flat tuple, compares its opcode down an ``elif``
chain, and indexes operand registers and the BIN/UN function tables on
every executed operation.  For a simulator whose entire job is executing
hundreds of millions of RISC-ops, that per-op bookkeeping dominates.

This module *predecodes* a :class:`~repro.ir.lower.LoweredProgram` once
into a form the dispatch loops can execute with far less per-op work:

* **Operand pre-binding.**  Unfused ``BIN``/``UN`` tuples carry the bound
  Python function (``BINOP_FUNCS[subop]``) instead of the subop index,
  and ``CALL``/``ICALL`` tuples carry a precomputed zero-padding tuple so
  callee frames are built with a list comprehension instead of an
  index-assign loop.
* **Superinstruction fusion.**  Maximal straight-line runs of
  ``CONST``/``MOV``/``BIN``/``UN``/``LOAD``/``STORE`` that no branch can
  jump into are compiled (via ``exec``) into one specialized Python
  function executing the whole run — one dispatch, one instruction-limit
  check, and zero opcode comparisons for the entire run.  Comparisons,
  bit-ops, and wrapping arithmetic become native Python expressions
  (``regs[5] = regs[3] + regs[4]``) rather than calls.
* **Terminator merging.**  A run followed by its block's ``BR``, ``JMP``,
  ``RET``, or ``CALL`` absorbs the terminator into the same
  superinstruction: the generated function updates the branch counters
  with constant indices and returns the (decoded) successor pc directly,
  so a typical loop body costs one dispatch per iteration instead of one
  per instruction.
* **Branch-target remapping.**  Fusion collapses pcs, so ``BR``/``JMP``
  targets are remapped to the decoded index space at decode time.  Runs
  are broken at every jump target, so a target pc always starts a decoded
  element (call-return sites always follow a ``CALL``/``ICALL`` element,
  so they also stay addressable).

The decoded form is cached on :attr:`LoweredProgram.predecoded`, so
repeated runs of one compiled program (across datasets, within a worker
process) pay the decode exactly once.

Two loop variants execute the decoded form — :func:`run_fast` (no
monitors: no callback plumbing at all) and :func:`run_monitored` (the
branch-observer path; monitor callbacks are dispatched with the
``in_monitor`` flag raised so a buggy monitor's ``IndexError``/
``ZeroDivisionError`` propagates as-is instead of being mis-attributed to
the guest program).  Both produce bit-identical :class:`RunResult`\\ s to
the legacy interpreter; the differential harness in
``tests/test_vm_engine.py`` holds them to that.
"""
from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.ir.lower import LoweredFunction, LoweredProgram
from repro.ir.opcodes import (
    BINOP_FUNCS,
    UNOP_FUNCS,
    BinOp,
    Opcode,
    UnOp,
    _c_div,
    _c_mod,
)
from repro.vm.counters import ControlEvents, RunResult
from repro.vm.errors import InstructionLimitExceeded, VMError
from repro.vm.monitors import BranchMonitor

_OP_CONST = int(Opcode.CONST)
_OP_MOV = int(Opcode.MOV)
_OP_BIN = int(Opcode.BIN)
_OP_UN = int(Opcode.UN)
_OP_SELECT = int(Opcode.SELECT)
_OP_LOAD = int(Opcode.LOAD)
_OP_STORE = int(Opcode.STORE)
_OP_GETC = int(Opcode.GETC)
_OP_PUTC = int(Opcode.PUTC)
_OP_CALL = int(Opcode.CALL)
_OP_ICALL = int(Opcode.ICALL)
_OP_BR = int(Opcode.BR)
_OP_JMP = int(Opcode.JMP)
_OP_RET = int(Opcode.RET)
_OP_HALT = int(Opcode.HALT)

#: Decoded-only opcodes (continue past Opcode.HALT).
OP_FUSED = _OP_HALT + 1        #: plain fused run: fn(...)
OP_FUSED_BR = _OP_HALT + 2     #: run + BR: pc = fn(...) (counters inside)
OP_FUSED_JMP = _OP_HALT + 3    #: run + JMP: pc = fn(...)
OP_FUSED_RET = _OP_HALT + 4    #: run + RET: value = fn(...)
OP_FUSED_CALL = _OP_HALT + 5   #: run + CALL: fn(...) then the call transfer

#: Opcodes eligible for superinstruction fusion: straight-line register and
#: memory traffic with no control flow, no I/O, and no event counters.
FUSIBLE_OPS = frozenset(
    {_OP_CONST, _OP_MOV, _OP_BIN, _OP_UN, _OP_LOAD, _OP_STORE}
)

#: Block terminators a run can absorb into its superinstruction.
_MERGEABLE_TERMINATORS = frozenset({_OP_BR, _OP_JMP, _OP_RET, _OP_CALL})

#: Minimum run length worth fusing *without* a merged terminator; a 1-op
#: "run" would just trade an inline dispatch arm for a Python call.  With a
#: terminator merged, even a 1-op run halves its dispatch count.
MIN_FUSE_RUN = 2

# -- fused-run code generation -------------------------------------------------

#: Statement templates per BinOp: inline native expressions where Python
#: semantics match the IR (everything except C-style DIV/MOD).
_BIN_STMTS = {
    int(BinOp.ADD): "regs[{d}] = regs[{a}] + regs[{b}]",
    int(BinOp.SUB): "regs[{d}] = regs[{a}] - regs[{b}]",
    int(BinOp.MUL): "regs[{d}] = regs[{a}] * regs[{b}]",
    int(BinOp.DIV): "regs[{d}] = _div(regs[{a}], regs[{b}])",
    int(BinOp.MOD): "regs[{d}] = _mod(regs[{a}], regs[{b}])",
    int(BinOp.AND): "regs[{d}] = regs[{a}] & regs[{b}]",
    int(BinOp.OR): "regs[{d}] = regs[{a}] | regs[{b}]",
    int(BinOp.XOR): "regs[{d}] = regs[{a}] ^ regs[{b}]",
    int(BinOp.SHL): "regs[{d}] = regs[{a}] << regs[{b}]",
    int(BinOp.SHR): "regs[{d}] = regs[{a}] >> regs[{b}]",
    int(BinOp.EQ): "regs[{d}] = 1 if regs[{a}] == regs[{b}] else 0",
    int(BinOp.NE): "regs[{d}] = 1 if regs[{a}] != regs[{b}] else 0",
    int(BinOp.LT): "regs[{d}] = 1 if regs[{a}] < regs[{b}] else 0",
    int(BinOp.LE): "regs[{d}] = 1 if regs[{a}] <= regs[{b}] else 0",
    int(BinOp.GT): "regs[{d}] = 1 if regs[{a}] > regs[{b}] else 0",
    int(BinOp.GE): "regs[{d}] = 1 if regs[{a}] >= regs[{b}] else 0",
}

_UN_STMTS = {
    int(UnOp.NEG): "regs[{d}] = -regs[{a}]",
    int(UnOp.NOT): "regs[{d}] = 1 if regs[{a}] == 0 else 0",
    int(UnOp.BNOT): "regs[{d}] = ~regs[{a}]",
}


def _fused_statements(ins: Tuple[Any, ...], mem_size: int) -> List[str]:
    """The Python statement(s) implementing one fusible instruction."""
    op = ins[0]
    if op == _OP_CONST:
        return [f"regs[{ins[1]}] = {ins[2]}"]
    if op == _OP_MOV:
        return [f"regs[{ins[1]}] = regs[{ins[2]}]"]
    if op == _OP_BIN:
        return [_BIN_STMTS[ins[1]].format(d=ins[2], a=ins[3], b=ins[4])]
    if op == _OP_UN:
        return [_UN_STMTS[ins[1]].format(d=ins[2], a=ins[3])]
    if op == _OP_LOAD:
        return [
            f"_t = regs[{ins[2]}]",
            f"if _t < 0 or _t >= {mem_size}:",
            "    raise VMError(_name + ': load from bad address %d' % _t)",
            f"regs[{ins[1]}] = memory[_t]",
        ]
    if op == _OP_STORE:
        return [
            f"_t = regs[{ins[1]}]",
            f"if _t < 0 or _t >= {mem_size}:",
            "    raise VMError(_name + ': store to bad address %d' % _t)",
            f"memory[_t] = regs[{ins[2]}]",
        ]
    raise AssertionError(f"unfusible opcode {op}")  # pragma: no cover


def _terminator_statements(
    term: Tuple[Any, ...], new_pc: Dict[int, int]
) -> List[str]:
    """The trailing statements for a terminator merged into a run."""
    op = term[0]
    if op == _OP_BR:
        return [
            f"bexec[{term[4]}] += 1",
            f"if regs[{term[1]}] != 0:",
            f"    btaken[{term[4]}] += 1",
            f"    return {new_pc[term[2]]}",
            f"return {new_pc[term[3]]}",
        ]
    if op == _OP_JMP:
        return [f"return {new_pc[term[1]]}"]
    if op == _OP_RET:
        return ["return 0" if term[1] == -1 else f"return regs[{term[1]}]"]
    if op == _OP_CALL:
        return []  # the call transfer itself stays in the dispatch arm
    raise AssertionError(f"unmergeable terminator {op}")  # pragma: no cover


# -- predecoding ---------------------------------------------------------------


class PredecodedFunction:
    """One function in decoded, fusion-collapsed form."""

    __slots__ = ("name", "num_params", "num_regs", "code", "fused_ops")

    def __init__(
        self,
        name: str,
        num_params: int,
        num_regs: int,
        code: List[Tuple[Any, ...]],
        fused_ops: int,
    ) -> None:
        self.name = name
        self.num_params = num_params
        self.num_regs = num_regs
        self.code = code
        #: How many original instructions live inside fused superinstructions
        #: (decode statistics; used by tests and the benchmark report).
        self.fused_ops = fused_ops


class PredecodedProgram:
    """A whole program in decoded form, sharing the source program's
    memory image, branch table, and function indexing."""

    __slots__ = ("program", "functions", "main_index")

    def __init__(
        self,
        program: LoweredProgram,
        functions: List[PredecodedFunction],
        main_index: int,
    ) -> None:
        self.program = program
        self.functions = functions
        self.main_index = main_index


def _scan_jump_targets(code: Sequence[Tuple[Any, ...]]) -> FrozenSet[int]:
    """Every pc a BR/JMP can transfer to (the fusion break points)."""
    targets = set()
    for ins in code:
        op = ins[0]
        if op == _OP_BR:
            targets.add(ins[2])
            targets.add(ins[3])
        elif op == _OP_JMP:
            targets.add(ins[1])
    return frozenset(targets)


def _decode_call(
    ins: Tuple[Any, ...], program: LoweredProgram
) -> Tuple[Any, ...]:
    """Pre-bind a CALL's callee frame shape: (op, func_index, dst, args,
    zeros) where ``zeros`` pads the arg registers up to num_regs."""
    callee = program.functions[ins[1]]
    args = tuple(ins[3])
    return (_OP_CALL, ins[1], ins[2], args, (0,) * (callee.num_regs - len(args)))


def _predecode_function(
    func: LoweredFunction, program: LoweredProgram
) -> PredecodedFunction:
    code = func.code
    length = len(code)
    targets = func.jump_targets
    if targets is None:  # hand-built LoweredFunction: derive the metadata
        targets = _scan_jump_targets(code)

    # Segment the code.  Each segment becomes exactly one decoded element:
    # either a fused run (ops, optionally an absorbed terminator) or a
    # single plain instruction (ops None).  Jump targets always start a
    # segment, so every reachable target stays addressable after decoding.
    segments: List[
        Tuple[int, Optional[List[Tuple[Any, ...]]], Optional[Tuple[Any, ...]]]
    ] = []
    pc = 0
    while pc < length:
        if code[pc][0] in FUSIBLE_OPS:
            end = pc + 1
            while (
                end < length
                and code[end][0] in FUSIBLE_OPS
                and end not in targets
            ):
                end += 1
            ops = list(code[pc:end])
            term: Optional[Tuple[Any, ...]] = None
            if (
                end < length
                and end not in targets
                and code[end][0] in _MERGEABLE_TERMINATORS
            ):
                term = code[end]
                end += 1
            if term is not None or len(ops) >= MIN_FUSE_RUN:
                segments.append((pc, ops, term))
                pc = end
                continue
        segments.append((pc, None, None))
        pc += 1

    new_pc = {old: index for index, (old, _, _) in enumerate(segments)}

    # Compile every fused segment of the function in a single exec.
    lines: List[str] = []
    fused_count = 0
    for old, ops, term in segments:
        if ops is None:
            continue
        lines.append(f"def _f{fused_count}(regs, memory, bexec, btaken):")
        for ins in ops:
            for stmt in _fused_statements(ins, program.memory_size):
                lines.append("    " + stmt)
        if term is not None:
            for stmt in _terminator_statements(term, new_pc):
                lines.append("    " + stmt)
        fused_count += 1
    fns: List[Any] = []
    if fused_count:
        namespace: Dict[str, Any] = {
            "VMError": VMError,
            "_div": _c_div,
            "_mod": _c_mod,
            "_name": program.name,
        }
        exec(  # noqa: S102 - generated from the validated lowered form only
            compile(
                "\n".join(lines),
                f"<fused:{program.name}:{func.name}>",
                "exec",
            ),
            namespace,
        )
        fns = [namespace[f"_f{index}"] for index in range(fused_count)]

    decoded: List[Tuple[Any, ...]] = []
    run_index = 0
    fused_ops = 0
    for old, ops, term in segments:
        if ops is not None:
            fn = fns[run_index]
            run_index += 1
            count = len(ops) + (1 if term is not None else 0)
            fused_ops += count
            if term is None:
                decoded.append((OP_FUSED, fn, count))
            elif term[0] == _OP_BR:
                decoded.append((OP_FUSED_BR, fn, count, term[1], term[4]))
            elif term[0] == _OP_JMP:
                decoded.append((OP_FUSED_JMP, fn, count))
            elif term[0] == _OP_RET:
                decoded.append((OP_FUSED_RET, fn, count))
            else:  # CALL
                call = _decode_call(term, program)
                decoded.append(
                    (OP_FUSED_CALL, fn, count) + call[1:]
                )
            continue
        ins = code[old]
        op = ins[0]
        if op == _OP_BIN:
            decoded.append((_OP_BIN, BINOP_FUNCS[ins[1]], ins[2], ins[3], ins[4]))
        elif op == _OP_UN:
            decoded.append((_OP_UN, UNOP_FUNCS[ins[1]], ins[2], ins[3]))
        elif op == _OP_BR:
            decoded.append(
                (_OP_BR, ins[1], new_pc[ins[2]], new_pc[ins[3]], ins[4])
            )
        elif op == _OP_JMP:
            decoded.append((_OP_JMP, new_pc[ins[1]]))
        elif op == _OP_CALL:
            decoded.append(_decode_call(ins, program))
        elif op == _OP_ICALL:
            decoded.append((_OP_ICALL, ins[1], ins[2], tuple(ins[3])))
        else:
            decoded.append(ins)
    return PredecodedFunction(
        name=func.name,
        num_params=func.num_params,
        num_regs=func.num_regs,
        code=decoded,
        fused_ops=fused_ops,
    )


def predecode(program: LoweredProgram) -> PredecodedProgram:
    """The decoded form of ``program``, built once and cached on it."""
    cached = program.predecoded
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    decoded = PredecodedProgram(
        program=program,
        functions=[
            _predecode_function(func, program) for func in program.functions
        ],
        main_index=program.main_index,
    )
    program.predecoded = decoded
    return decoded


# -- execution loops -----------------------------------------------------------


def run_fast(
    predecoded: PredecodedProgram,
    input_data: bytes,
    max_instructions: int,
    max_call_depth: int,
) -> RunResult:
    """The monitor-free fast loop over the decoded form."""
    program = predecoded.program
    functions = predecoded.functions
    main = functions[predecoded.main_index]

    memory = list(program.memory_init)
    mem_size = len(memory)
    num_branches = len(program.branch_table)
    branch_exec = [0] * num_branches
    branch_taken = [0] * num_branches
    output = bytearray()
    in_pos = 0
    in_len = len(input_data)

    direct_calls = direct_returns = 0
    indirect_calls = indirect_returns = 0
    jumps = selects = 0
    icount = 0
    limit = max_instructions
    depth_limit = max_call_depth

    regs = [0] * main.num_regs
    code = main.code
    pc = 0
    stack: List[Tuple[Any, ...]] = []
    exit_code: Optional[int] = None

    try:
        while True:
            ins = code[pc]
            pc += 1
            op = ins[0]
            if op == OP_FUSED_BR:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                pc = ins[1](regs, memory, branch_exec, branch_taken)
                continue
            if op == OP_FUSED:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                ins[1](regs, memory, branch_exec, branch_taken)
                continue
            if op == OP_FUSED_CALL:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                ins[1](regs, memory, branch_exec, branch_taken)
                callee = functions[ins[3]]
                new_regs = [regs[src] for src in ins[5]]
                new_regs += ins[6]
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[4], False))
                code = callee.code
                regs = new_regs
                pc = 0
                direct_calls += 1
                continue
            if op == OP_FUSED_RET:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                value = ins[1](regs, memory, branch_exec, branch_taken)
                if not stack:
                    exit_code = value
                    break
                code, regs, pc, dst, via_indirect = stack.pop()
                if via_indirect:
                    indirect_returns += 1
                else:
                    direct_returns += 1
                if dst != -1:
                    regs[dst] = value
                continue
            if op == OP_FUSED_JMP:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                pc = ins[1](regs, memory, branch_exec, branch_taken)
                jumps += 1
                continue
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(
                    f"{program.name}: exceeded {limit} instructions"
                )
            if op == _OP_BR:
                bidx = ins[4]
                branch_exec[bidx] += 1
                if regs[ins[1]] != 0:
                    branch_taken[bidx] += 1
                    pc = ins[2]
                else:
                    pc = ins[3]
            elif op == _OP_BIN:
                regs[ins[2]] = ins[1](regs[ins[3]], regs[ins[4]])
            elif op == _OP_LOAD:
                addr = regs[ins[2]]
                if addr < 0 or addr >= mem_size:
                    raise VMError(
                        f"{program.name}: load from bad address {addr}"
                    )
                regs[ins[1]] = memory[addr]
            elif op == _OP_CONST:
                regs[ins[1]] = ins[2]
            elif op == _OP_STORE:
                addr = regs[ins[1]]
                if addr < 0 or addr >= mem_size:
                    raise VMError(
                        f"{program.name}: store to bad address {addr}"
                    )
                memory[addr] = regs[ins[2]]
            elif op == _OP_MOV:
                regs[ins[1]] = regs[ins[2]]
            elif op == _OP_JMP:
                pc = ins[1]
                jumps += 1
            elif op == _OP_CALL:
                callee = functions[ins[1]]
                new_regs = [regs[src] for src in ins[3]]
                new_regs += ins[4]
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[2], False))
                code = callee.code
                regs = new_regs
                pc = 0
                direct_calls += 1
            elif op == _OP_RET:
                value = 0 if ins[1] == -1 else regs[ins[1]]
                if not stack:
                    exit_code = value
                    break
                code, regs, pc, dst, via_indirect = stack.pop()
                if via_indirect:
                    indirect_returns += 1
                else:
                    direct_returns += 1
                if dst != -1:
                    regs[dst] = value
            elif op == _OP_SELECT:
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] != 0 else regs[ins[4]]
                selects += 1
            elif op == _OP_UN:
                regs[ins[2]] = ins[1](regs[ins[3]])
            elif op == _OP_GETC:
                if in_pos < in_len:
                    regs[ins[1]] = input_data[in_pos]
                    in_pos += 1
                else:
                    regs[ins[1]] = -1
            elif op == _OP_PUTC:
                output.append(regs[ins[1]] & 0xFF)
            elif op == _OP_ICALL:
                target = regs[ins[1]]
                if target < 0 or target >= len(functions):
                    raise VMError(
                        f"{program.name}: indirect call to bad target {target}"
                    )
                callee = functions[target]
                if len(ins[3]) != callee.num_params:
                    raise VMError(
                        f"{program.name}: indirect call to {callee.name} with "
                        f"{len(ins[3])} args, expects {callee.num_params}"
                    )
                new_regs = [regs[src] for src in ins[3]]
                new_regs += [0] * (callee.num_regs - len(new_regs))
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[2], True))
                code = callee.code
                regs = new_regs
                pc = 0
                indirect_calls += 1
            elif op == _OP_HALT:
                exit_code = 0
                break
            else:  # pragma: no cover - predecode emits only known opcodes
                raise VMError(f"{program.name}: unknown opcode {op}")
    except ZeroDivisionError:
        raise VMError(f"{program.name}: division by zero") from None
    except IndexError:
        raise VMError(
            f"{program.name}: bad register or code reference at pc {pc - 1}"
        ) from None

    events = ControlEvents(
        direct_calls=direct_calls,
        direct_returns=direct_returns,
        indirect_calls=indirect_calls,
        indirect_returns=indirect_returns,
        jumps=jumps,
        selects=selects,
    )
    return RunResult(
        program=program.name,
        instructions=icount,
        branch_table=list(program.branch_table),
        branch_exec=branch_exec,
        branch_taken=branch_taken,
        events=events,
        output=bytes(output),
        exit_code=exit_code,
    )


def run_monitored(
    predecoded: PredecodedProgram,
    input_data: bytes,
    monitors: Sequence[BranchMonitor],
    max_instructions: int,
    max_call_depth: int,
) -> RunResult:
    """The monitored loop over the decoded form.

    Identical observable behaviour to the fast loop plus the monitor
    callbacks: every conditional-branch outcome is reported with the exact
    executed-instruction count the legacy interpreter would report.
    Callbacks run with ``in_monitor`` set so an observer's own
    ``IndexError``/``ZeroDivisionError`` is re-raised unchanged instead of
    being blamed on the guest program, and ``on_run_end`` fires once after
    a normally-terminating run (outside the guarded region).
    """
    program = predecoded.program
    functions = predecoded.functions
    main = functions[predecoded.main_index]

    memory = list(program.memory_init)
    mem_size = len(memory)
    num_branches = len(program.branch_table)
    branch_exec = [0] * num_branches
    branch_taken = [0] * num_branches
    output = bytearray()
    in_pos = 0
    in_len = len(input_data)

    direct_calls = direct_returns = 0
    indirect_calls = indirect_returns = 0
    jumps = selects = 0
    icount = 0
    limit = max_instructions
    depth_limit = max_call_depth

    regs = [0] * main.num_regs
    code = main.code
    pc = 0
    stack: List[Tuple[Any, ...]] = []
    exit_code: Optional[int] = None
    in_monitor = False

    try:
        while True:
            ins = code[pc]
            pc += 1
            op = ins[0]
            if op == OP_FUSED_BR:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                pc = ins[1](regs, memory, branch_exec, branch_taken)
                # The run never writes past the branch read, so the
                # condition register still holds the branched-on value.
                taken = regs[ins[3]] != 0
                bidx = ins[4]
                in_monitor = True
                for monitor in monitors:
                    monitor.on_branch(bidx, taken, icount)
                in_monitor = False
                continue
            if op == OP_FUSED:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                ins[1](regs, memory, branch_exec, branch_taken)
                continue
            if op == OP_FUSED_CALL:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                ins[1](regs, memory, branch_exec, branch_taken)
                callee = functions[ins[3]]
                new_regs = [regs[src] for src in ins[5]]
                new_regs += ins[6]
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[4], False))
                code = callee.code
                regs = new_regs
                pc = 0
                direct_calls += 1
                continue
            if op == OP_FUSED_RET:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                value = ins[1](regs, memory, branch_exec, branch_taken)
                if not stack:
                    exit_code = value
                    break
                code, regs, pc, dst, via_indirect = stack.pop()
                if via_indirect:
                    indirect_returns += 1
                else:
                    direct_returns += 1
                if dst != -1:
                    regs[dst] = value
                continue
            if op == OP_FUSED_JMP:
                icount += ins[2]
                if icount > limit:
                    raise InstructionLimitExceeded(
                        f"{program.name}: exceeded {limit} instructions"
                    )
                pc = ins[1](regs, memory, branch_exec, branch_taken)
                jumps += 1
                continue
            icount += 1
            if icount > limit:
                raise InstructionLimitExceeded(
                    f"{program.name}: exceeded {limit} instructions"
                )
            if op == _OP_BR:
                bidx = ins[4]
                branch_exec[bidx] += 1
                if regs[ins[1]] != 0:
                    branch_taken[bidx] += 1
                    pc = ins[2]
                    taken = True
                else:
                    pc = ins[3]
                    taken = False
                in_monitor = True
                for monitor in monitors:
                    monitor.on_branch(bidx, taken, icount)
                in_monitor = False
            elif op == _OP_BIN:
                regs[ins[2]] = ins[1](regs[ins[3]], regs[ins[4]])
            elif op == _OP_LOAD:
                addr = regs[ins[2]]
                if addr < 0 or addr >= mem_size:
                    raise VMError(
                        f"{program.name}: load from bad address {addr}"
                    )
                regs[ins[1]] = memory[addr]
            elif op == _OP_CONST:
                regs[ins[1]] = ins[2]
            elif op == _OP_STORE:
                addr = regs[ins[1]]
                if addr < 0 or addr >= mem_size:
                    raise VMError(
                        f"{program.name}: store to bad address {addr}"
                    )
                memory[addr] = regs[ins[2]]
            elif op == _OP_MOV:
                regs[ins[1]] = regs[ins[2]]
            elif op == _OP_JMP:
                pc = ins[1]
                jumps += 1
            elif op == _OP_CALL:
                callee = functions[ins[1]]
                new_regs = [regs[src] for src in ins[3]]
                new_regs += ins[4]
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[2], False))
                code = callee.code
                regs = new_regs
                pc = 0
                direct_calls += 1
            elif op == _OP_RET:
                value = 0 if ins[1] == -1 else regs[ins[1]]
                if not stack:
                    exit_code = value
                    break
                code, regs, pc, dst, via_indirect = stack.pop()
                if via_indirect:
                    indirect_returns += 1
                else:
                    direct_returns += 1
                if dst != -1:
                    regs[dst] = value
            elif op == _OP_SELECT:
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] != 0 else regs[ins[4]]
                selects += 1
            elif op == _OP_UN:
                regs[ins[2]] = ins[1](regs[ins[3]])
            elif op == _OP_GETC:
                if in_pos < in_len:
                    regs[ins[1]] = input_data[in_pos]
                    in_pos += 1
                else:
                    regs[ins[1]] = -1
            elif op == _OP_PUTC:
                output.append(regs[ins[1]] & 0xFF)
            elif op == _OP_ICALL:
                target = regs[ins[1]]
                if target < 0 or target >= len(functions):
                    raise VMError(
                        f"{program.name}: indirect call to bad target {target}"
                    )
                callee = functions[target]
                if len(ins[3]) != callee.num_params:
                    raise VMError(
                        f"{program.name}: indirect call to {callee.name} with "
                        f"{len(ins[3])} args, expects {callee.num_params}"
                    )
                new_regs = [regs[src] for src in ins[3]]
                new_regs += [0] * (callee.num_regs - len(new_regs))
                if len(stack) >= depth_limit:
                    raise VMError(f"{program.name}: call depth limit exceeded")
                stack.append((code, regs, pc, ins[2], True))
                code = callee.code
                regs = new_regs
                pc = 0
                indirect_calls += 1
            elif op == _OP_HALT:
                exit_code = 0
                break
            else:  # pragma: no cover - predecode emits only known opcodes
                raise VMError(f"{program.name}: unknown opcode {op}")
    except ZeroDivisionError:
        if in_monitor:
            raise
        raise VMError(f"{program.name}: division by zero") from None
    except IndexError:
        if in_monitor:
            raise
        raise VMError(
            f"{program.name}: bad register or code reference at pc {pc - 1}"
        ) from None

    for monitor in monitors:
        monitor.on_run_end(icount)

    events = ControlEvents(
        direct_calls=direct_calls,
        direct_returns=direct_returns,
        indirect_calls=indirect_calls,
        indirect_returns=indirect_returns,
        jumps=jumps,
        selects=selects,
    )
    return RunResult(
        program=program.name,
        instructions=icount,
        branch_table=list(program.branch_table),
        branch_exec=branch_exec,
        branch_taken=branch_taken,
        events=events,
        output=bytes(output),
        exit_code=exit_code,
    )
