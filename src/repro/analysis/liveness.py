"""Register liveness, as a backward may-analysis on the framework.

This is the analysis the dead-instruction pass has always needed; it now
lives here so the optimizer, the lint rules (dead stores) and any future
register allocator share one implementation.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.dataflow import BACKWARD, DataflowAnalysis, solve
from repro.ir.cfg import BasicBlock, Function


def block_use_def(block: BasicBlock) -> Tuple[Set[int], Set[int]]:
    """(use, def): registers read before any in-block write / registers
    written anywhere in the block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        if instr.dst is not None:
            defs.add(instr.dst)
    return uses, defs


class LivenessAnalysis(DataflowAnalysis[FrozenSet[int]]):
    """Backward union analysis; state = frozenset of live register numbers."""

    direction = BACKWARD
    bottom_is_boundary = True

    def boundary(self, func: Function) -> FrozenSet[int]:
        return frozenset()

    def meet(
        self, left: FrozenSet[int], right: FrozenSet[int]
    ) -> FrozenSet[int]:
        return left | right

    def transfer(
        self, block: BasicBlock, state: FrozenSet[int]
    ) -> FrozenSet[int]:
        uses, defs = block_use_def(block)
        return frozenset(uses | (set(state) - defs))


def live_sets(func: Function) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """(live_in, live_out) register sets per block label.

    Blocks the analysis never reaches (no path to an exit, or unreachable
    layout leftovers) get empty sets — nothing observable is live there.
    """
    result = solve(func, LivenessAnalysis())
    live_in: Dict[str, Set[int]] = {}
    live_out: Dict[str, Set[int]] = {}
    for block in func.blocks:
        before = result.before.get(block.label)
        after = result.after.get(block.label)
        live_in[block.label] = set(before) if before is not None else set()
        live_out[block.label] = set(after) if after is not None else set()
    return live_in, live_out


def live_out(func: Function) -> Dict[str, Set[int]]:
    """Live-out register sets per block label."""
    return live_sets(func)[1]
