"""The generic worklist dataflow solver.

Every analysis in :mod:`repro.analysis` is an instance of one scheme: a
lattice of abstract states, a per-block transfer function, a meet operator,
and a direction.  The solver computes the maximal-fixpoint (MFP) solution
with a worklist seeded in quasi-topological order.

Conventions
-----------

States are named by *program position*, not by dataflow direction:
``before[label]`` is the state at the block's entry in program order and
``after[label]`` the state at its exit.  A forward analysis computes
``after = transfer(block, before)``; a backward analysis computes
``before = transfer(block, after)``.

The bottom element is ``None`` and means "no execution reaches this
position".  ``meet(None, x) == x`` is enforced by the solver, so analyses
only ever see two non-``None`` states.  Edge-level precision (branch
feasibility, comparison-driven range refinement) is expressed through
:meth:`DataflowAnalysis.edge_transfer`, which may return ``None`` to mark
an edge infeasible — this is how conditional constant propagation prunes
never-taken branches.

Termination over infinite-height lattices (the interval lattice) is
guaranteed two ways: analyses declare widening points (natural-loop
headers), and the solver force-widens any block whose entry state keeps
changing past a visit budget — a safety net for irreducible flow graphs
the header detection would miss.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, Generic, List, Optional, Set, TypeVar

from repro.ir.analysis import (
    exit_labels,
    loop_headers,
    predecessor_map,
    reachable_labels,
    successor_map,
)
from repro.ir.cfg import BasicBlock, Function

S = TypeVar("S")

FORWARD = "forward"
BACKWARD = "backward"

#: Entry-state recomputations per block before the solver force-widens.
VISIT_BUDGET = 64


class DataflowAnalysis(Generic[S]):
    """One dataflow problem: direction, lattice operations, transfer."""

    #: :data:`FORWARD` or :data:`BACKWARD`.
    direction: str = FORWARD

    #: When True, a position no execution flows into is treated as holding
    #: the boundary state rather than bottom.  Liveness wants this: a block
    #: with no path to an exit still circulates its own uses (deleting
    #: instructions inside an infinite loop would change the observable
    #: instruction counts this whole repository exists to measure).
    bottom_is_boundary: bool = False

    def boundary(self, func: Function) -> S:
        """The state at the CFG boundary: function entry for a forward
        analysis, every exit block for a backward one."""
        raise NotImplementedError

    def meet(self, left: S, right: S) -> S:
        """Combine two states flowing into the same position.  Never called
        with ``None``; the solver short-circuits the bottom element."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state: S) -> S:
        """The state after executing ``block`` (forward: given its entry
        state; backward: given its exit state, returning its entry state)."""
        raise NotImplementedError

    def edge_transfer(
        self, block: BasicBlock, target: str, state: S
    ) -> Optional[S]:
        """Refine the state flowing along one out-edge of ``block``
        (forward analyses only).  Returning ``None`` marks the edge
        infeasible.  The default is the identity."""
        return state

    def widen(self, old: S, new: S) -> S:
        """Accelerate convergence at widening points.  Must over-approximate
        ``new``; the default (return ``new``) is correct for finite-height
        lattices."""
        return new

    def widening_points(self, func: Function) -> Set[str]:
        """Labels where :meth:`widen` applies (default: natural-loop
        headers, the classic choice for interval analysis)."""
        return loop_headers(func)


@dataclasses.dataclass
class DataflowResult(Generic[S]):
    """The MFP solution: program-order entry/exit state per block label.

    ``None`` means the position is unreachable according to the analysis
    (only forward analyses with edge pruning produce it for reachable
    code positions; layout-unreachable blocks get it in every analysis).
    """

    before: Dict[str, Optional[S]]
    after: Dict[str, Optional[S]]

    def reachable(self, label: str) -> bool:
        """Whether the analysis found any execution reaching the block."""
        return self.before.get(label) is not None


def solve(func: Function, analysis: DataflowAnalysis[S]) -> DataflowResult[S]:
    """Run the worklist algorithm to the maximal fixpoint."""
    if not func.blocks:
        return DataflowResult(before={}, after={})
    if analysis.direction == FORWARD:
        return _solve_forward(func, analysis)
    if analysis.direction == BACKWARD:
        return _solve_backward(func, analysis)
    raise ValueError(f"bad dataflow direction {analysis.direction!r}")


def _solve_forward(
    func: Function, analysis: DataflowAnalysis[S]
) -> DataflowResult[S]:
    block_map = func.block_map()
    succs = successor_map(func)
    preds = predecessor_map(func)
    order = reachable_labels(func)
    position = {label: index for index, label in enumerate(order)}
    entry = order[0]
    widen_at = analysis.widening_points(func)

    before: Dict[str, Optional[S]] = {b.label: None for b in func.blocks}
    after: Dict[str, Optional[S]] = {b.label: None for b in func.blocks}
    visits: Dict[str, int] = {b.label: 0 for b in func.blocks}

    pending: Set[str] = set(order)
    worklist: List[str] = list(reversed(order))  # pop() yields RPO
    while worklist:
        label = worklist.pop()
        pending.discard(label)
        block = block_map[label]
        visits[label] += 1
        first = visits[label] == 1

        incoming: Optional[S] = analysis.boundary(func) if label == entry else None
        for pred in preds[label]:
            pred_after = after[pred]
            if pred_after is None:
                continue
            flowed = analysis.edge_transfer(block_map[pred], label, pred_after)
            if flowed is None:
                continue
            incoming = (
                flowed if incoming is None else analysis.meet(incoming, flowed)
            )
        if incoming is None and analysis.bottom_is_boundary:
            incoming = analysis.boundary(func)

        old = before[label]
        if (
            incoming is not None
            and old is not None
            and (label in widen_at or visits[label] > VISIT_BUDGET)
        ):
            incoming = analysis.widen(old, incoming)
        if incoming == old and not first:
            continue
        before[label] = incoming
        new_after = (
            None if incoming is None else analysis.transfer(block, incoming)
        )
        if new_after != after[label] or first:
            after[label] = new_after
            for succ in succs[label]:
                if succ in position and succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return DataflowResult(before=before, after=after)


def _solve_backward(
    func: Function, analysis: DataflowAnalysis[S]
) -> DataflowResult[S]:
    block_map = func.block_map()
    succs = successor_map(func)
    preds = predecessor_map(func)
    order = reachable_labels(func)
    exits = set(exit_labels(func))

    before: Dict[str, Optional[S]] = {b.label: None for b in func.blocks}
    after: Dict[str, Optional[S]] = {b.label: None for b in func.blocks}
    visits: Dict[str, int] = {b.label: 0 for b in func.blocks}

    # Layout-unreachable blocks are solved too (queued first, popped last):
    # under the paper's no-DCE configuration they stay in the module, and
    # consumers like dead-store detection must see their internal liveness.
    leftovers = [
        block.label for block in func.blocks if block.label not in set(order)
    ]
    pending: Set[str] = set(order) | set(leftovers)
    worklist: List[str] = leftovers + list(order)  # pop() yields postorder first
    while worklist:
        label = worklist.pop()
        pending.discard(label)
        block = block_map[label]
        visits[label] += 1
        first = visits[label] == 1

        outgoing: Optional[S] = analysis.boundary(func) if label in exits else None
        for succ in succs[label]:
            succ_before = before.get(succ)
            if succ_before is None:
                continue
            outgoing = (
                succ_before
                if outgoing is None
                else analysis.meet(outgoing, succ_before)
            )
        if outgoing is None and analysis.bottom_is_boundary:
            outgoing = analysis.boundary(func)

        if outgoing == after[label] and not first:
            continue
        after[label] = outgoing
        new_before = (
            None if outgoing is None else analysis.transfer(block, outgoing)
        )
        if new_before != before[label] or first:
            before[label] = new_before
            for pred in preds[label]:
                if pred not in pending:
                    pending.add(pred)
                    worklist.append(pred)
    return DataflowResult(before=before, after=after)
