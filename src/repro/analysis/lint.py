"""IR sanitizer: lint rules over the dataflow analyses.

Three severities:

* **error** — an invariant no correct code generator or optimizer output
  may violate; the pipeline sanitizer (``optimize_module(...,
  sanitize=True)``) fails on these and names the offending pass.
* **warning** — legal but wasteful or suspicious shapes an optimizer is
  expected to clean up (or, in the paper configuration, deliberately
  leaves in place).
* **info** — structural observations useful when reading dumps.

Rule catalog (``docs/ANALYSIS.md`` has the prose version):

=====================  ========  =================================================
rule                   severity  meaning
=====================  ========  =================================================
``use-before-def``     error     a reachable read not definitely assigned on
                                 every path from entry (VM zero-fill makes this
                                 a silent wrong value, not a crash)
``register-width``     error     an instruction references a register outside
                                 ``0 .. num_regs - 1``
``dead-store``         warning   a side-effect-free instruction whose result is
                                 never live afterwards
``degenerate-branch``  warning   a two-way branch with identical targets
``unreachable-block``  info      a block no CFG path from entry reaches
``critical-edge``      info      an edge from a multi-successor block into a
                                 multi-predecessor block
=====================  ========  =================================================
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.analysis.liveness import live_sets
from repro.analysis.reachdefs import maybe_uninitialized_uses
from repro.ir.analysis import cfg_edges, predecessor_map, reachable_from_entry
from repro.ir.cfg import Function, Module
from repro.ir.opcodes import Opcode

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One diagnosed location."""

    rule: str
    severity: str
    function: str
    label: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.severity}: [{self.rule}] {self.function}/{self.label}: "
            f"{self.message}"
        )


def _lint_use_before_def(func: Function) -> List[LintFinding]:
    findings = []
    for label, position, instr, reg in maybe_uninitialized_uses(func):
        findings.append(
            LintFinding(
                rule="use-before-def",
                severity=ERROR,
                function=func.name,
                label=label,
                message=(
                    f"instruction {position} ({instr.op.name.lower()}) reads "
                    f"r{reg}, which is not assigned on every path from entry"
                ),
            )
        )
    return findings


def _lint_register_width(func: Function) -> List[LintFinding]:
    findings = []
    for block in func.blocks:
        for position, instr in enumerate(block.instrs):
            registers = list(instr.uses())
            if instr.dst is not None:
                registers.append(instr.dst)
            for reg in registers:
                if not 0 <= reg < func.num_regs:
                    findings.append(
                        LintFinding(
                            rule="register-width",
                            severity=ERROR,
                            function=func.name,
                            label=block.label,
                            message=(
                                f"instruction {position} "
                                f"({instr.op.name.lower()}) references r{reg} "
                                f"outside 0..{func.num_regs - 1}"
                            ),
                        )
                    )
    return findings


def _lint_dead_stores(func: Function) -> List[LintFinding]:
    findings = []
    _, live_out_sets = live_sets(func)
    for block in func.blocks:
        live = set(live_out_sets[block.label])
        # Walk backwards, mirroring dead-code elimination's liveness walk.
        dead: List[int] = []
        for position in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[position]
            dst = instr.dst
            if (
                dst is not None
                and dst not in live
                and not instr.has_side_effects()
            ):
                dead.append(position)
                continue
            if dst is not None:
                live.discard(dst)
            live.update(instr.uses())
        for position in reversed(dead):
            instr = block.instrs[position]
            findings.append(
                LintFinding(
                    rule="dead-store",
                    severity=WARNING,
                    function=func.name,
                    label=block.label,
                    message=(
                        f"instruction {position} ({instr.op.name.lower()}) "
                        f"defines r{instr.dst} but the value is never used"
                    ),
                )
            )
    return findings


def _lint_degenerate_branches(func: Function) -> List[LintFinding]:
    findings = []
    for block in func.blocks:
        term = block.terminator
        if (
            term is not None
            and term.op == Opcode.BR
            and term.then_label == term.else_label
        ):
            findings.append(
                LintFinding(
                    rule="degenerate-branch",
                    severity=WARNING,
                    function=func.name,
                    label=block.label,
                    message=(
                        f"two-way branch with identical targets "
                        f"{term.then_label!r}"
                    ),
                )
            )
    return findings


def _lint_unreachable_blocks(func: Function) -> List[LintFinding]:
    findings = []
    reachable = reachable_from_entry(func)
    for block in func.blocks:
        if block.label not in reachable:
            findings.append(
                LintFinding(
                    rule="unreachable-block",
                    severity=INFO,
                    function=func.name,
                    label=block.label,
                    message="no path from entry reaches this block",
                )
            )
    return findings


def _lint_critical_edges(func: Function) -> List[LintFinding]:
    findings = []
    preds = predecessor_map(func)
    by_source: Dict[str, List[str]] = {}
    for source, target in cfg_edges(func):
        by_source.setdefault(source, []).append(target)
    for source, targets in by_source.items():
        if len(set(targets)) < 2:
            continue
        for target in sorted(set(targets)):
            if len(preds.get(target, [])) > 1:
                findings.append(
                    LintFinding(
                        rule="critical-edge",
                        severity=INFO,
                        function=func.name,
                        label=source,
                        message=(
                            f"edge to {target!r} leaves a multi-successor "
                            f"block and enters a multi-predecessor block"
                        ),
                    )
                )
    return findings


_RULES: List[Callable[[Function], List[LintFinding]]] = [
    _lint_use_before_def,
    _lint_register_width,
    _lint_dead_stores,
    _lint_degenerate_branches,
    _lint_unreachable_blocks,
    _lint_critical_edges,
]


def lint_function(
    func: Function, min_severity: str = INFO
) -> List[LintFinding]:
    """All findings for one function at or above ``min_severity``."""
    threshold = _SEVERITY_ORDER[min_severity]
    findings: List[LintFinding] = []
    for rule in _RULES:
        findings.extend(
            finding
            for finding in rule(func)
            if _SEVERITY_ORDER[finding.severity] <= threshold
        )
    return findings


def lint_module(
    module: Module, min_severity: str = INFO
) -> List[LintFinding]:
    """All findings for a module, in function order."""
    findings: List[LintFinding] = []
    for func in module.functions:
        findings.extend(lint_function(func, min_severity))
    return findings


def lint_errors(module: Module) -> List[LintFinding]:
    """Only the invariant violations (error severity)."""
    return lint_module(module, min_severity=ERROR)


def format_findings(findings: List[LintFinding]) -> str:
    return "\n".join(str(finding) for finding in findings)


def severity_counts(findings: List[LintFinding]) -> "dict[str, int]":
    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for finding in findings:
        counts[finding.severity] += 1
    return counts
