"""Integer value-range propagation (interval analysis).

Forward analysis over register -> interval maps.  Intervals are closed,
possibly unbounded on either side (``None`` = infinite); the VM's integers
are Python integers, so there is no wraparound to model and interval
arithmetic is exact.  ``getc`` is the one input channel and yields
``[-1, 255]`` — which is what lets the prover discharge the bounds checks
real programs wrap around their input loops.

Branch conditions refine ranges along the out-edges: when the condition
register is produced by a comparison in the same block (and neither operand
is redefined before the terminator), the comparison's truth on each edge
narrows both operands.  An edge whose refinement produces an empty interval
is infeasible.

Termination over this infinite-height lattice comes from widening at
natural-loop headers (plus the solver's visit-budget safety net).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from repro.analysis.dataflow import DataflowAnalysis, DataflowResult, solve
from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import BinOp, Opcode, UnOp


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds are infinite."""

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- queries -----------------------------------------------------------

    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def excludes_zero(self) -> bool:
        return (self.lo is not None and self.lo > 0) or (
            self.hi is not None and self.hi < 0
        )

    def is_nonnegative(self) -> bool:
        return self.lo is not None and self.lo >= 0

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)
BOOL = Interval(0, 1)
GETC_RANGE = Interval(-1, 255)


def const(value: int) -> Interval:
    return Interval(value, value)


def hull(left: Interval, right: Interval) -> Interval:
    lo = None if left.lo is None or right.lo is None else min(left.lo, right.lo)
    hi = None if left.hi is None or right.hi is None else max(left.hi, right.hi)
    return Interval(lo, hi)


def intersect(left: Interval, right: Interval) -> Optional[Interval]:
    """The intersection, or ``None`` when empty."""
    if left.lo is None:
        lo = right.lo
    elif right.lo is None:
        lo = left.lo
    else:
        lo = max(left.lo, right.lo)
    if left.hi is None:
        hi = right.hi
    elif right.hi is None:
        hi = left.hi
    else:
        hi = min(left.hi, right.hi)
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


def _add_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(_add_bound(a.lo, b.lo), _add_bound(a.hi, b.hi))


def _interval_sub(a: Interval, b: Interval) -> Interval:
    negated = Interval(
        None if b.hi is None else -b.hi, None if b.lo is None else -b.lo
    )
    return _interval_add(a, negated)


def _interval_mul(a: Interval, b: Interval) -> Interval:
    bounds = (a.lo, a.hi, b.lo, b.hi)
    if all(bound is not None for bound in bounds):
        assert a.lo is not None and a.hi is not None
        assert b.lo is not None and b.hi is not None
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return Interval(min(products), max(products))
    if a.is_nonnegative() and b.is_nonnegative():
        assert a.lo is not None and b.lo is not None
        return Interval(a.lo * b.lo, _mul_bound(a.hi, b.hi))
    return TOP


def _mul_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a * b


#: Largest shift amount the analysis will evaluate exactly.
_MAX_SHIFT = 128


def _interval_binop(subop: int, a: Interval, b: Interval) -> Interval:
    op = BinOp(subop)
    if op == BinOp.ADD:
        return _interval_add(a, b)
    if op == BinOp.SUB:
        return _interval_sub(a, b)
    if op == BinOp.MUL:
        return _interval_mul(a, b)
    if op == BinOp.DIV:
        # C-style truncation: for a positive divisor the magnitude shrinks
        # toward zero, so the hull of the dividend's bounds and zero covers
        # every quotient.
        if b.lo is not None and b.lo >= 1:
            lo = None if a.lo is None else min(a.lo, 0)
            hi = None if a.hi is None else max(a.hi, 0)
            return Interval(lo, hi)
        return TOP
    if op == BinOp.MOD:
        # C-style remainder: sign follows the dividend, |r| < |b|.
        if b.lo is not None and b.lo >= 1:
            bound = None if b.hi is None else b.hi - 1
            if a.is_nonnegative():
                hi = bound if a.hi is None else (
                    a.hi if bound is None else min(a.hi, bound)
                )
                return Interval(0, hi)
            if bound is not None:
                return Interval(-bound, bound)
        return TOP
    if op == BinOp.AND:
        if a.is_nonnegative() and b.is_nonnegative():
            if a.hi is None:
                hi = b.hi
            elif b.hi is None:
                hi = a.hi
            else:
                hi = min(a.hi, b.hi)
            return Interval(0, hi)
        return TOP
    if op in (BinOp.OR, BinOp.XOR):
        if a.is_nonnegative() and b.is_nonnegative():
            if a.hi is None or b.hi is None:
                return Interval(0, None)
            bits = max(a.hi.bit_length(), b.hi.bit_length())
            return Interval(0, (1 << bits) - 1)
        return TOP
    if op == BinOp.SHL:
        if (
            a.is_nonnegative()
            and b.lo is not None
            and b.lo >= 0
            and b.hi is not None
            and b.hi <= _MAX_SHIFT
        ):
            assert a.lo is not None
            hi = None if a.hi is None else a.hi << b.hi
            return Interval(a.lo << b.lo, hi)
        return TOP
    if op == BinOp.SHR:
        if a.is_nonnegative() and b.lo is not None and b.lo >= 0:
            hi = None if a.hi is None else a.hi >> min(b.lo, _MAX_SHIFT)
            return Interval(0, hi)
        return TOP
    # Comparisons: 0/1, sharpened when the intervals decide the outcome.
    verdict = compare_intervals(op, a, b)
    if verdict is None:
        return BOOL
    return const(1 if verdict else 0)


def compare_intervals(op: BinOp, a: Interval, b: Interval) -> Optional[bool]:
    """Whether ``a OP b`` is decided by the intervals (None = undecided)."""

    def lt(x: Interval, y: Interval) -> Optional[bool]:
        if x.hi is not None and y.lo is not None and x.hi < y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo >= y.hi:
            return False
        return None

    def le(x: Interval, y: Interval) -> Optional[bool]:
        if x.hi is not None and y.lo is not None and x.hi <= y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo > y.hi:
            return False
        return None

    if op == BinOp.LT:
        return lt(a, b)
    if op == BinOp.LE:
        return le(a, b)
    if op == BinOp.GT:
        return lt(b, a)
    if op == BinOp.GE:
        return le(b, a)
    if op == BinOp.EQ:
        if a.is_constant() and b.is_constant() and a.lo == b.lo:
            return True
        if intersect(a, b) is None:
            return False
        return None
    if op == BinOp.NE:
        equal = compare_intervals(BinOp.EQ, a, b)
        return None if equal is None else not equal
    return None


def _interval_unop(subop: int, a: Interval) -> Interval:
    op = UnOp(subop)
    if op == UnOp.NEG:
        return Interval(
            None if a.hi is None else -a.hi, None if a.lo is None else -a.lo
        )
    if op == UnOp.NOT:
        if a.excludes_zero():
            return const(0)
        if a.is_constant() and a.lo == 0:
            return const(1)
        return BOOL
    if op == UnOp.BNOT:
        return Interval(
            None if a.hi is None else ~a.hi, None if a.lo is None else ~a.lo
        )
    return TOP


#: Abstract state: register -> interval.  Absent registers are unbounded.
RangeState = Dict[int, Interval]


def eval_ranges(instr: Instr, state: Mapping[int, Interval]) -> Interval:
    """The interval of ``instr``'s result under ``state``."""
    op = instr.op
    if op == Opcode.CONST:
        return const(instr.imm if instr.imm is not None else 0)
    if op == Opcode.MOV:
        return state.get(instr.a, TOP) if instr.a is not None else TOP
    if op == Opcode.GETC:
        return GETC_RANGE
    if op == Opcode.BIN:
        if instr.a is None or instr.b is None or instr.subop is None:
            return TOP
        return _interval_binop(
            instr.subop, state.get(instr.a, TOP), state.get(instr.b, TOP)
        )
    if op == Opcode.UN:
        if instr.a is None or instr.subop is None:
            return TOP
        return _interval_unop(instr.subop, state.get(instr.a, TOP))
    if op == Opcode.SELECT:
        if instr.a is None or instr.b is None or instr.c is None:
            return TOP
        cond = state.get(instr.a, TOP)
        if cond.excludes_zero():
            return state.get(instr.b, TOP)
        if cond.is_constant() and cond.lo == 0:
            return state.get(instr.c, TOP)
        return hull(state.get(instr.b, TOP), state.get(instr.c, TOP))
    return TOP


def _branch_comparison(block: BasicBlock) -> Optional[Instr]:
    """The comparison producing the block's branch condition, if it is in
    this block and its operands survive to the terminator unchanged."""
    term = block.terminator
    if term is None or term.op != Opcode.BR or term.a is None:
        return None
    body = block.body()
    for index in range(len(body) - 1, -1, -1):
        instr = body[index]
        if instr.dst == term.a:
            if instr.op != Opcode.BIN or instr.subop is None:
                return None
            if BinOp(instr.subop) not in _COMPARISONS:
                return None
            # Operands (and the condition itself) must not be redefined
            # between the comparison and the branch.
            clobbered = {
                later.dst
                for later in body[index + 1:]
                if later.dst is not None
            }
            if clobbered & {instr.a, instr.b, instr.dst}:
                return None
            return instr
    return None


_COMPARISONS = {BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE}

#: Each comparison's refinement when it holds: (shift applied to the
#: left operand's hi from right's hi, ...) — expressed procedurally below.


def _refine_by_comparison(
    state: RangeState, instr: Instr, outcome: bool
) -> Optional[RangeState]:
    """Narrow the comparison's operands given its outcome; ``None`` when
    the outcome is impossible under ``state``."""
    assert instr.a is not None and instr.b is not None
    assert instr.subop is not None
    op = BinOp(instr.subop)
    if not outcome:
        negations = {
            BinOp.EQ: BinOp.NE,
            BinOp.NE: BinOp.EQ,
            BinOp.LT: BinOp.GE,
            BinOp.LE: BinOp.GT,
            BinOp.GT: BinOp.LE,
            BinOp.GE: BinOp.LT,
        }
        op = negations[op]
    a = state.get(instr.a, TOP)
    b = state.get(instr.b, TOP)

    def bound_hi(x: Interval, limit: Optional[int]) -> Optional[Interval]:
        return intersect(x, Interval(None, limit))

    def bound_lo(x: Interval, limit: Optional[int]) -> Optional[Interval]:
        return intersect(x, Interval(limit, None))

    new_a: Optional[Interval]
    new_b: Optional[Interval]
    if op == BinOp.LT:
        new_a = bound_hi(a, None if b.hi is None else b.hi - 1)
        new_b = bound_lo(b, None if a.lo is None else a.lo + 1)
    elif op == BinOp.LE:
        new_a = bound_hi(a, b.hi)
        new_b = bound_lo(b, a.lo)
    elif op == BinOp.GT:
        new_a = bound_lo(a, None if b.lo is None else b.lo + 1)
        new_b = bound_hi(b, None if a.hi is None else a.hi - 1)
    elif op == BinOp.GE:
        new_a = bound_lo(a, b.lo)
        new_b = bound_hi(b, a.hi)
    elif op == BinOp.EQ:
        new_a = intersect(a, b)
        new_b = new_a
    else:  # NE: only singleton exclusions are representable.
        new_a, new_b = a, b
        if b.is_constant():
            new_a = _exclude_point(a, b.lo)
        if a.is_constant():
            new_b = _exclude_point(b, a.lo)
    if new_a is None or new_b is None:
        return None
    refined = dict(state)
    refined[instr.a] = new_a
    refined[instr.b] = new_b
    return refined


def _copy_representatives(block: BasicBlock) -> Dict[int, int]:
    """Register -> representative of its copy class at the block's end.

    Built from ``mov`` chains with redefinitions killing membership; two
    registers with the same representative provably hold the same value at
    the terminator, so an edge refinement of one applies to the other
    (codegen's variable copies otherwise hide refinements: the guard tests
    the temporary while later code reads the variable).
    """
    rep: Dict[int, int] = {}
    for instr in block.instrs:
        dst = instr.dst
        if dst is None:
            continue
        # A def of dst invalidates dst's membership and any link through it.
        stale = [reg for reg, root in rep.items() if reg == dst or root == dst]
        for reg in stale:
            rep.pop(reg, None)
        if instr.op == Opcode.MOV and instr.a is not None and instr.a != dst:
            rep[dst] = rep.get(instr.a, instr.a)
    return rep


def _spread_to_copies(
    state: RangeState, before: RangeState, block: BasicBlock
) -> Optional[RangeState]:
    """Intersect each narrowed register's interval into its copy class."""
    narrowed = {
        reg: interval
        for reg, interval in state.items()
        if before.get(reg, TOP) != interval
    }
    if not narrowed:
        return state
    rep = _copy_representatives(block)
    if not rep:
        return state
    spread = dict(state)
    for reg, interval in narrowed.items():
        root = rep.get(reg, reg)
        for other in set(rep) | set(rep.values()):
            if other == reg or rep.get(other, other) != root:
                continue
            merged = intersect(spread.get(other, TOP), interval)
            if merged is None:
                return None  # equal registers with disjoint ranges: infeasible
            spread[other] = merged
    return spread


def _exclude_point(x: Interval, point: Optional[int]) -> Optional[Interval]:
    """Remove a single value from an interval (only effective at an edge)."""
    if point is None:
        return x
    if x.lo is not None and x.hi is not None and x.lo == x.hi == point:
        return None
    if x.lo is not None and x.lo == point:
        return Interval(x.lo + 1, x.hi)
    if x.hi is not None and x.hi == point:
        return Interval(x.lo, x.hi - 1)
    return x


class RangeAnalysis(DataflowAnalysis[RangeState]):
    """Forward interval analysis with comparison-driven edge refinement."""

    def boundary(self, func: Function) -> RangeState:
        return {}

    def meet(self, left: RangeState, right: RangeState) -> RangeState:
        if left == right:
            return dict(left)
        joined: RangeState = {}
        for reg, interval in left.items():
            other = right.get(reg)
            if other is None:
                continue
            merged = hull(interval, other)
            if merged != TOP:
                joined[reg] = merged
        return joined

    def widen(self, old: RangeState, new: RangeState) -> RangeState:
        widened: RangeState = {}
        for reg, interval in new.items():
            previous = old.get(reg)
            if previous is None:
                continue  # appeared late: drop to unbounded
            lo = previous.lo
            if lo is not None and (interval.lo is None or interval.lo < lo):
                lo = None
            hi = previous.hi
            if hi is not None and (interval.hi is None or interval.hi > hi):
                hi = None
            if lo is not None or hi is not None:
                widened[reg] = Interval(lo, hi)
        return widened

    def transfer(self, block: BasicBlock, state: RangeState) -> RangeState:
        values = dict(state)
        for instr in block.instrs:
            dst = instr.dst
            if dst is None:
                continue
            interval = eval_ranges(instr, values)
            if interval == TOP:
                values.pop(dst, None)
            else:
                values[dst] = interval
        return values

    def edge_transfer(
        self, block: BasicBlock, target: str, state: RangeState
    ) -> Optional[RangeState]:
        term = block.terminator
        if term is None or term.op != Opcode.BR or term.a is None:
            return state
        if term.then_label == term.else_label:
            return state
        taken = target == term.then_label
        cond = state.get(term.a, TOP)

        refined = dict(state)
        if taken:
            excluded = _exclude_point(cond, 0) if cond.contains(0) else cond
            if cond.is_constant() and cond.lo == 0:
                return None  # constant-false condition: edge infeasible
            if excluded is None:
                return None
            refined[term.a] = excluded
        else:
            if not cond.contains(0):
                return None  # condition can never be zero
            refined[term.a] = const(0)

        comparison = _branch_comparison(block)
        if comparison is not None:
            narrowed = _refine_by_comparison(refined, comparison, taken)
            if narrowed is None:
                return None
            refined = narrowed
        spread = _spread_to_copies(refined, state, block)
        if spread is None:
            return None
        refined = spread
        return {
            reg: interval
            for reg, interval in refined.items()
            if interval != TOP
        }


def ranges(func: Function) -> DataflowResult[RangeState]:
    """Solve range analysis for one function."""
    return solve(func, RangeAnalysis())
