"""Conditional constant propagation over the CFG-form IR.

The dense (per-block-state) variant of Wegman–Zadeck sparse conditional
constant propagation: register -> constant maps flow forward, and branch
edges whose condition is a known constant are marked infeasible, so code
behind a constant-false guard is analyzed as unreachable.  This matters
here more than in most compilers: the paper's configuration deliberately
keeps constant-outcome branches in the program (global dead code
elimination off), which makes them exactly the branches a prover can
classify without any profile.

Constant-global loads are folded through :func:`repro.opt.globalconst
.constant_globals` *facts supplied by the caller* — this module depends
only on :mod:`repro.ir`.
"""
from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.analysis.dataflow import DataflowAnalysis, DataflowResult, solve
from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import BINOP_FUNCS, UNOP_FUNCS, Opcode

#: Abstract state: register -> known constant.  A register absent from the
#: map is not known to be constant.  (``None`` at the framework level means
#: the whole position is unreachable.)
ConstState = Dict[int, int]


def eval_instr(instr: Instr, state: Mapping[int, int]) -> Optional[int]:
    """The constant value ``instr`` computes under ``state``, if any.

    Faulting computations (division by zero, negative shifts) return
    ``None`` — the fault must stay a run-time event.
    """
    op = instr.op
    if op == Opcode.CONST:
        return instr.imm
    if op == Opcode.MOV:
        return state.get(instr.a) if instr.a is not None else None
    if op == Opcode.BIN:
        if instr.a is None or instr.b is None or instr.subop is None:
            return None
        left = state.get(instr.a)
        right = state.get(instr.b)
        if left is None or right is None:
            return None
        try:
            return BINOP_FUNCS[instr.subop](left, right)
        except (ZeroDivisionError, ValueError, OverflowError):
            return None
    if op == Opcode.UN:
        if instr.a is None or instr.subop is None:
            return None
        operand = state.get(instr.a)
        if operand is None:
            return None
        return UNOP_FUNCS[instr.subop](operand)
    if op == Opcode.SELECT:
        if instr.a is None:
            return None
        cond = state.get(instr.a)
        if cond is None:
            # Both arms constant and equal is still a constant.
            if instr.b is None or instr.c is None:
                return None
            left = state.get(instr.b)
            right = state.get(instr.c)
            if left is not None and left == right:
                return left
            return None
        chosen = instr.b if cond != 0 else instr.c
        return state.get(chosen) if chosen is not None else None
    return None


class ConstantPropagation(DataflowAnalysis[ConstState]):
    """Forward analysis with constant-condition edge pruning."""

    def __init__(
        self, const_globals: Optional[Mapping[str, int]] = None
    ) -> None:
        #: Never-written global scalars (symbol -> value); lets cross-block
        #: ``addr``/``load`` pairs of generality knobs fold to constants.
        self.const_globals = dict(const_globals or {})

    def boundary(self, func: Function) -> ConstState:
        return {}

    def meet(self, left: ConstState, right: ConstState) -> ConstState:
        if left == right:
            return dict(left)
        return {
            reg: value
            for reg, value in left.items()
            if right.get(reg) == value
        }

    def transfer(self, block: BasicBlock, state: ConstState) -> ConstState:
        values = dict(state)
        # Addresses of globals are tracked block-locally so that a
        # ``load`` through a constant-global ``addr`` folds.
        addresses: Dict[int, str] = {}
        for instr in block.instrs:
            dst = instr.dst
            if instr.op == Opcode.ADDR and dst is not None:
                addresses[dst] = instr.symbol or ""
                values.pop(dst, None)
                continue
            if (
                instr.op == Opcode.LOAD
                and dst is not None
                and instr.a in addresses
                and addresses[instr.a] in self.const_globals
            ):
                values[dst] = self.const_globals[addresses[instr.a]]
                continue
            if dst is not None:
                addresses.pop(dst, None)
                constant = eval_instr(instr, values)
                if constant is None:
                    values.pop(dst, None)
                else:
                    values[dst] = constant
        return values

    def edge_transfer(
        self, block: BasicBlock, target: str, state: ConstState
    ) -> Optional[ConstState]:
        term = block.terminator
        if term is None or term.op != Opcode.BR or term.a is None:
            return state
        cond = state.get(term.a)
        if cond is None:
            return state
        feasible = term.then_label if cond != 0 else term.else_label
        if target != feasible:
            return None
        # A branch with identical targets keeps the edge feasible for both
        # "directions" (there is only one edge).
        return state


def constants(
    func: Function, const_globals: Optional[Mapping[str, int]] = None
) -> DataflowResult[ConstState]:
    """Solve constant propagation for one function."""
    return solve(func, ConstantPropagation(const_globals))
