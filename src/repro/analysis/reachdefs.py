"""Reaching definitions and definite assignment.

Two classic forward analyses over the same def sites:

* **Reaching definitions** (may, union): which ``(label, position)`` def
  sites can reach each block boundary.  Used by tests and future consumers
  that need def-use chains.
* **Definite assignment** (must, intersection): which registers are written
  on *every* path from entry.  The use-before-def lint is its consumer:
  the VM zero-fills registers, so a maybe-uninitialized read is not a crash
  — it is a code-generator or optimizer bug worth failing loudly on.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import Instr

#: A definition site: (block label, instruction position within the block).
DefSite = Tuple[str, int]


def def_sites(func: Function) -> Dict[int, Set[DefSite]]:
    """Register -> all (label, position) sites that define it."""
    sites: Dict[int, Set[DefSite]] = {}
    for block in func.blocks:
        for position, instr in enumerate(block.instrs):
            if instr.dst is not None:
                sites.setdefault(instr.dst, set()).add((block.label, position))
    return sites


class ReachingDefinitions(
    DataflowAnalysis[FrozenSet[Tuple[int, str, int]]]
):
    """Forward union analysis; state = frozenset of (reg, label, position)."""

    def boundary(
        self, func: Function
    ) -> FrozenSet[Tuple[int, str, int]]:
        # Parameters are defined at entry (position -1 of a pseudo block).
        return frozenset(
            (reg, "<entry>", -1) for reg in range(func.num_params)
        )

    def meet(
        self,
        left: FrozenSet[Tuple[int, str, int]],
        right: FrozenSet[Tuple[int, str, int]],
    ) -> FrozenSet[Tuple[int, str, int]]:
        return left | right

    def transfer(
        self, block: BasicBlock, state: FrozenSet[Tuple[int, str, int]]
    ) -> FrozenSet[Tuple[int, str, int]]:
        killed: Set[int] = set()
        generated: List[Tuple[int, str, int]] = []
        for position, instr in enumerate(block.instrs):
            if instr.dst is not None:
                killed.add(instr.dst)
                generated.append((instr.dst, block.label, position))
        survivors = {fact for fact in state if fact[0] not in killed}
        # Only the *last* def of each register survives to the block exit.
        last: Dict[int, Tuple[int, str, int]] = {}
        for fact in generated:
            last[fact[0]] = fact
        return frozenset(survivors | set(last.values()))


def reaching_definitions(
    func: Function,
) -> Dict[str, Set[Tuple[int, str, int]]]:
    """(reg, def-label, def-position) facts reaching each block's entry."""
    result = solve(func, ReachingDefinitions())
    return {
        block.label: set(result.before[block.label] or frozenset())
        for block in func.blocks
    }


class DefiniteAssignment(DataflowAnalysis[FrozenSet[int]]):
    """Forward intersection analysis; state = registers assigned on every
    path.  Bottom (``None``) positions are unreachable, so they do not
    weaken the intersection."""

    def boundary(self, func: Function) -> FrozenSet[int]:
        return frozenset(range(func.num_params))

    def meet(self, left: FrozenSet[int], right: FrozenSet[int]) -> FrozenSet[int]:
        return left & right

    def transfer(
        self, block: BasicBlock, state: FrozenSet[int]
    ) -> FrozenSet[int]:
        defs = {
            instr.dst for instr in block.instrs if instr.dst is not None
        }
        return state | frozenset(defs)


#: A maybe-uninitialized read: (label, position, instruction, register).
UninitializedUse = Tuple[str, int, Instr, int]


def maybe_uninitialized_uses(func: Function) -> List[UninitializedUse]:
    """Reads of registers not definitely assigned at that point.

    Restricted to blocks reachable from entry: layout-unreachable leftovers
    never execute, so their reads are not diagnosable bugs.
    """
    result = solve(func, DefiniteAssignment())
    findings: List[UninitializedUse] = []
    for block in func.blocks:
        state = result.before.get(block.label)
        if state is None:
            continue  # unreachable
        assigned = set(state)
        for position, instr in enumerate(block.instrs):
            for reg in instr.uses():
                if reg not in assigned:
                    findings.append((block.label, position, instr, reg))
            if instr.dst is not None:
                assigned.add(instr.dst)
    return findings
