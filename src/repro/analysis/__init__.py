"""Dataflow analysis framework over the CFG-form IR.

A generic worklist (MFP) solver plus the classic analyses layered on it:

* :mod:`repro.analysis.dataflow` — direction-agnostic solver with edge
  transfers, widening, and unreachable (bottom) tracking.
* :mod:`repro.analysis.liveness` — backward live-register analysis.
* :mod:`repro.analysis.reachdefs` — reaching definitions and definite
  assignment (the use-before-def lint's engine).
* :mod:`repro.analysis.constprop` — conditional constant propagation with
  infeasible-edge pruning.
* :mod:`repro.analysis.ranges` — integer interval analysis with
  comparison-driven edge refinement.

Consumers: the static branch-direction prover (:mod:`repro.analysis.prover`)
and the IR lint suite (:mod:`repro.analysis.lint`).
"""
from repro.analysis.constprop import ConstantPropagation, constants, eval_instr
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowAnalysis,
    DataflowResult,
    solve,
)
from repro.analysis.lint import (
    LintFinding,
    format_findings,
    lint_errors,
    lint_function,
    lint_module,
)
from repro.analysis.liveness import LivenessAnalysis, live_out, live_sets
from repro.analysis.prover import (
    BranchProof,
    ProofVerdict,
    proof_directions,
    prove_function,
    prove_module,
)
from repro.analysis.ranges import (
    BOOL,
    GETC_RANGE,
    TOP,
    Interval,
    RangeAnalysis,
    compare_intervals,
    hull,
    intersect,
    ranges,
)
from repro.analysis.reachdefs import (
    DefiniteAssignment,
    ReachingDefinitions,
    maybe_uninitialized_uses,
    reaching_definitions,
)

__all__ = [
    "BACKWARD",
    "BOOL",
    "FORWARD",
    "GETC_RANGE",
    "TOP",
    "BranchProof",
    "ConstantPropagation",
    "DataflowAnalysis",
    "DataflowResult",
    "DefiniteAssignment",
    "Interval",
    "LintFinding",
    "LivenessAnalysis",
    "ProofVerdict",
    "RangeAnalysis",
    "ReachingDefinitions",
    "compare_intervals",
    "constants",
    "eval_instr",
    "format_findings",
    "hull",
    "intersect",
    "lint_errors",
    "lint_function",
    "lint_module",
    "live_out",
    "live_sets",
    "maybe_uninitialized_uses",
    "proof_directions",
    "prove_function",
    "prove_module",
    "ranges",
    "reaching_definitions",
    "solve",
]
