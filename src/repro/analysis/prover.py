"""Static branch-direction proofs.

Classifies every conditional branch as ``PROVEN_TAKEN``,
``PROVEN_FALLTHROUGH``, or ``UNKNOWN`` using only the program text — no
profile data.  A *proof* is a guarantee about the branch's condition value
on every execution, so a proven branch can never mispredict; the test
suite's cross-check gate enforces exactly that against monitored VM runs.

Proof layers, cheapest first:

1. **Unreachability** — conditional constant propagation marks the block
   bottom: the branch never executes, so either direction is vacuously
   sound (we report fall-through, matching the static default).
2. **Constant conditions** — the condition register folds to a constant.
3. **Value ranges** — the condition's interval excludes zero (taken) or is
   exactly ``[0, 0]`` (fall-through).  Loop-exit edges feed this layer:
   interval refinement on a loop header's exit edge (``i < n`` false means
   ``i >= n``) flows to post-loop blocks, with widening anchored at the
   ``loop_headers`` of the natural loops found through ``dominators``.
4. **Edge feasibility** — the range analysis proves one out-edge's
   refinement contradictory (empty interval), so the other must be taken.
5. **Sign facts** — a dominating test of the *same* single-definition
   register pins the condition nonzero/zero where intervals cannot
   (``if (x) { ... if (x) ... }`` with ``x`` unbounded).

Degenerate branches (identical targets) still read a condition, and
prediction is scored on the condition's truth, so layers 2/3/5 apply to
them; only edge-based reasoning (1 edge, 2 "directions") does not.
"""
from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.analysis.constprop import ConstantPropagation, ConstState
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.ranges import (
    TOP,
    RangeAnalysis,
    RangeState,
    _copy_representatives,
)
from repro.ir.analysis import natural_loop_bodies
from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.instructions import BranchId
from repro.ir.opcodes import Opcode


class ProofVerdict(enum.Enum):
    """What the prover established about a branch's direction."""

    PROVEN_TAKEN = "proven-taken"
    PROVEN_FALLTHROUGH = "proven-fallthrough"
    UNKNOWN = "unknown"

    @property
    def proven(self) -> bool:
        return self is not ProofVerdict.UNKNOWN


@dataclasses.dataclass(frozen=True)
class BranchProof:
    """One conditional branch's classification."""

    function: str
    label: str
    branch_id: BranchId
    verdict: ProofVerdict
    reason: str
    #: Number of natural loops whose body contains the branch.
    loop_depth: int
    #: Whether one target leaves the innermost containing loop.
    is_loop_exit: bool

    @property
    def direction(self) -> Optional[bool]:
        """The proven direction (True = taken), if proven."""
        if self.verdict is ProofVerdict.PROVEN_TAKEN:
            return True
        if self.verdict is ProofVerdict.PROVEN_FALLTHROUGH:
            return False
        return None


#: Sign-fact state: register -> known-nonzero (True) or known-zero (False).
SignState = Dict[int, bool]


class SignFacts(DataflowAnalysis[SignState]):
    """Tracks nonzero/zero facts pinned by dominating tests.

    Facts are created on branch out-edges (then: condition nonzero; else:
    condition zero) and killed by any redefinition, so a surviving fact at
    a later test of the same register decides it.  Intervals cannot express
    "nonzero" for an unbounded register; this two-point lattice can.
    """

    def boundary(self, func: Function) -> SignState:
        return {}

    def meet(self, left: SignState, right: SignState) -> SignState:
        if left == right:
            return dict(left)
        return {
            reg: fact for reg, fact in left.items() if right.get(reg) == fact
        }

    def transfer(self, block: BasicBlock, state: SignState) -> SignState:
        facts = dict(state)
        for instr in block.instrs:
            dst = instr.dst
            if dst is None:
                continue
            if instr.op == Opcode.CONST and instr.imm is not None:
                facts[dst] = instr.imm != 0
            elif instr.op == Opcode.MOV and instr.a in facts:
                facts[dst] = facts[instr.a]
            else:
                facts.pop(dst, None)
        return facts

    def edge_transfer(
        self, block: BasicBlock, target: str, state: SignState
    ) -> Optional[SignState]:
        term = block.terminator
        if term is None or term.op != Opcode.BR or term.a is None:
            return state
        if term.then_label == term.else_label:
            return state
        taken = target == term.then_label
        facts = dict(state)
        # The fact applies to the tested register and to every register in
        # its copy class at the terminator (codegen's variable copies: the
        # branch tests the temporary while later tests read the variable).
        rep = _copy_representatives(block)
        root = rep.get(term.a, term.a)
        pinned = {term.a} | {
            reg
            for reg in set(rep) | set(rep.values())
            if rep.get(reg, reg) == root
        }
        for reg in pinned:
            existing = state.get(reg)
            if existing is not None and existing != taken:
                return None  # the test's outcome contradicts a known fact
            facts[reg] = taken
        return facts


def _loop_membership(func: Function) -> Dict[str, List[FrozenSet[str]]]:
    """Label -> bodies of the natural loops containing it (innermost last
    by size ordering is not guaranteed; callers use ``min`` by size)."""
    membership: Dict[str, List[FrozenSet[str]]] = {}
    for body in natural_loop_bodies(func).values():
        frozen = frozenset(body)
        for label in body:
            membership.setdefault(label, []).append(frozen)
    return membership


def prove_function(
    func: Function, const_globals: Optional[Mapping[str, int]] = None
) -> List[BranchProof]:
    """Prove branch directions for one function."""
    const_result = solve(func, ConstantPropagation(const_globals))
    range_analysis = RangeAnalysis()
    range_result = solve(func, range_analysis)
    sign_result = solve(func, SignFacts())
    membership = _loop_membership(func)

    proofs: List[BranchProof] = []
    for block in func.blocks:
        term = block.terminator
        if term is None or term.op != Opcode.BR or term.a is None:
            continue
        if term.branch_id is None:
            continue
        bodies = membership.get(block.label, [])
        loop_depth = len(bodies)
        is_loop_exit = False
        if bodies:
            innermost = min(bodies, key=len)
            is_loop_exit = (
                term.then_label not in innermost
                or term.else_label not in innermost
            )

        verdict, reason = _classify(
            block,
            term.a,
            const_result.after.get(block.label),
            range_result.after.get(block.label),
            sign_result.after.get(block.label),
            range_analysis,
            degenerate=term.then_label == term.else_label,
        )
        proofs.append(
            BranchProof(
                function=func.name,
                label=block.label,
                branch_id=term.branch_id,
                verdict=verdict,
                reason=reason,
                loop_depth=loop_depth,
                is_loop_exit=is_loop_exit,
            )
        )
    return proofs


def _classify(
    block: BasicBlock,
    cond: int,
    const_state: Optional[ConstState],
    range_state: Optional[RangeState],
    sign_state: Optional[SignState],
    range_analysis: RangeAnalysis,
    degenerate: bool,
) -> "tuple[ProofVerdict, str]":
    # Layer 1: the block never executes.
    if const_state is None:
        return ProofVerdict.PROVEN_FALLTHROUGH, "unreachable"

    # Layer 2: constant condition.
    constant = const_state.get(cond)
    if constant is not None:
        verdict = (
            ProofVerdict.PROVEN_TAKEN
            if constant != 0
            else ProofVerdict.PROVEN_FALLTHROUGH
        )
        return verdict, f"condition is constant {constant}"

    # Layer 3: the condition's interval decides it.
    interval = (range_state or {}).get(cond, TOP)
    if interval.excludes_zero():
        return ProofVerdict.PROVEN_TAKEN, f"condition range {interval}"
    if interval.is_constant() and interval.lo == 0:
        return ProofVerdict.PROVEN_FALLTHROUGH, f"condition range {interval}"

    # Layer 4: one out-edge's refinement is contradictory.
    if not degenerate and range_state is not None:
        term = block.terminator
        assert term is not None
        then_state = range_analysis.edge_transfer(
            block, term.then_label or "", range_state
        )
        else_state = range_analysis.edge_transfer(
            block, term.else_label or "", range_state
        )
        if then_state is None and else_state is not None:
            return ProofVerdict.PROVEN_FALLTHROUGH, "taken edge infeasible"
        if else_state is None and then_state is not None:
            return ProofVerdict.PROVEN_TAKEN, "fall-through edge infeasible"

    # Layer 5: a dominating test already pinned the condition's sign.
    fact = (sign_state or {}).get(cond)
    if fact is not None:
        verdict = (
            ProofVerdict.PROVEN_TAKEN
            if fact
            else ProofVerdict.PROVEN_FALLTHROUGH
        )
        return verdict, "dominating test pins condition " + (
            "nonzero" if fact else "zero"
        )

    return ProofVerdict.UNKNOWN, "data-dependent"


def prove_module(
    module: Module, const_globals: Optional[Mapping[str, int]] = None
) -> List[BranchProof]:
    """Prove branch directions for every function in a module."""
    proofs: List[BranchProof] = []
    for func in module.functions:
        proofs.extend(prove_function(func, const_globals))
    return proofs


def proof_directions(proofs: List[BranchProof]) -> Dict[BranchId, bool]:
    """Proven branches only: branch id -> direction (True = taken)."""
    return {
        proof.branch_id: proof.direction
        for proof in proofs
        if proof.direction is not None
    }
