"""The model zoo: named predictor families at configurable table sizes."""
from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dynamic.base import DynamicPredictor
from repro.dynamic.bimodal import BimodalPredictor
from repro.dynamic.gshare import GSharePredictor
from repro.dynamic.local import TwoLevelLocalPredictor
from repro.dynamic.tournament import TournamentPredictor

#: Family-major zoo order: each family at every size, smallest first.
MODEL_FAMILIES = ("bimodal", "gshare", "local", "tournament")

#: The default sweep sizes (entries; budgets differ per family).
DEFAULT_TABLE_SIZES = (64, 256, 1024)


def build_model(
    family: str,
    table_size: Optional[int],
    num_bits: int = 2,
    name: Optional[str] = None,
) -> DynamicPredictor:
    """Construct one zoo model by family name."""
    if family == "bimodal":
        return BimodalPredictor(
            table_size=table_size, num_bits=num_bits, name=name
        )
    if table_size is None:
        raise ValueError(f"family {family!r} requires a finite table_size")
    if family == "gshare":
        return GSharePredictor(
            table_size=table_size, num_bits=num_bits, name=name
        )
    if family == "local":
        return TwoLevelLocalPredictor(
            table_size=table_size, num_bits=num_bits, name=name
        )
    if family == "tournament":
        return TournamentPredictor(
            table_size=table_size, num_bits=num_bits, name=name
        )
    raise ValueError(
        f"unknown predictor family {family!r}; known: "
        f"{', '.join(MODEL_FAMILIES)}"
    )


def default_zoo(
    table_sizes: Sequence[int] = DEFAULT_TABLE_SIZES,
    families: Sequence[str] = MODEL_FAMILIES,
    num_bits: int = 2,
) -> List[DynamicPredictor]:
    """Every family at every table size, family-major."""
    return [
        build_model(family, size, num_bits=num_bits)
        for family in families
        for size in sorted(table_sizes)
    ]
