"""The dynamic-predictor interface and its shared machinery.

A *dynamic* predictor is hardware: it observes the branch-outcome stream
of one run and predicts each branch execution from state it updates as it
goes — the [Smith 81] / [Lee and Smith 84] schemes the paper compares its
static profile prediction against.  Unlike the static predictors in
``repro.prediction``, a dynamic predictor cannot be scored from aggregate
(executed, taken) counters: its behaviour depends on outcome *order*, so
it must ride along on a live run via the ``BranchMonitor`` hook (see
``repro.dynamic.score``).  No trace is ever stored.

Realism constraints the model zoo honors:

* **Finite tables.**  Real branch-history tables have a fixed number of
  entries; two branches whose hashed addresses collide share state
  (*aliasing*).  Every model takes a ``table_size`` (a power of two) and
  reports its hardware budget in bits, so static and dynamic prediction
  can be compared at equal cost.
* **Deterministic indexing.**  Table indices derive from a stable FNV-1a
  hash of the :class:`~repro.ir.instructions.BranchId` — never from
  Python's salted ``hash()`` — so a simulation is bit-identical across
  processes and interpreter invocations (the parallel runner depends on
  this).
* **Inspectable state.**  ``snapshot()`` exposes the complete mutable
  state as plain tuples, so determinism tests can assert two simulations
  ended in exactly the same place.
"""
from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.ir.instructions import BranchId

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def branch_pc(branch_id: BranchId) -> int:
    """A stable 64-bit "address" for a static branch (FNV-1a of its id).

    This stands in for the branch's program counter when indexing
    finite tables; it is deterministic across processes (unlike
    ``hash()``, which Python salts per interpreter).
    """
    value = _FNV_OFFSET
    for byte in f"{branch_id.function}#{branch_id.index}".encode():
        value = ((value ^ byte) * _FNV_PRIME) & _FNV_MASK
    return value


def check_table_size(table_size: int) -> int:
    """Validate a table size: a positive power of two (for mask indexing)."""
    if table_size < 1 or table_size & (table_size - 1):
        raise ValueError(
            f"table_size must be a positive power of two, got {table_size}"
        )
    return table_size


class DynamicPredictor:
    """Interface: predict each branch execution from online state.

    Lifecycle: ``reset(branch_table)`` once per run, then for every
    conditional-branch execution either ``observe(index, taken)`` (the
    fused fast path the scoring monitor uses) or ``predict``/``update``.
    ``index`` is the position in the run's static branch table, exactly
    what the VM hands to :meth:`BranchMonitor.on_branch`.
    """

    #: Human-readable name for reports (e.g. ``bimodal@1024``).
    name = "dynamic"

    #: Table entries, or ``None`` for an idealized infinite table.
    table_size: Optional[int] = None

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        """Clear all state and bind the run's static branch table."""
        raise NotImplementedError

    def predict(self, index: int) -> bool:
        """The predicted direction for the next execution of a branch."""
        raise NotImplementedError

    def update(self, index: int, taken: bool) -> None:
        """Feed the actual outcome back into the predictor state."""
        raise NotImplementedError

    def observe(self, index: int, taken: bool) -> bool:
        """Predict, then update: returns the direction that was predicted.

        Models override this with a fused implementation — it runs once
        per dynamic branch, the hottest path in a simulation.
        """
        predicted = self.predict(index)
        self.update(index, taken)
        return predicted

    def budget_bits(self) -> Optional[int]:
        """Hardware state in bits, or ``None`` when not meaningfully
        finite (infinite tables, software predictors)."""
        return None

    def snapshot(self) -> Tuple:
        """The complete mutable state, as nested plain tuples."""
        raise NotImplementedError
