"""gshare: global history XOR branch address into a shared counter table.

McFarling's scheme: a single global shift register of recent outcomes is
XORed with the branch address to index the counter table, so the same
branch can use different counters in different history contexts — and
different branches can constructively or destructively alias.
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dynamic.base import DynamicPredictor, branch_pc, check_table_size
from repro.ir.instructions import BranchId


class GSharePredictor(DynamicPredictor):
    """Global-history-XOR-address indexed saturating-counter table."""

    def __init__(
        self,
        table_size: int = 1024,
        history_bits: Optional[int] = None,
        num_bits: int = 2,
        initial_state: int = 0,
        name: Optional[str] = None,
    ) -> None:
        check_table_size(table_size)
        self.table_size = table_size
        if history_bits is None:
            history_bits = max(1, table_size.bit_length() - 1)
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits}")
        self.history_bits = history_bits
        self.num_bits = num_bits
        self.max_state = (1 << num_bits) - 1
        self.threshold = 1 << (num_bits - 1)
        self.initial_state = initial_state
        self.name = name if name is not None else f"gshare@{table_size}"
        self._mask = table_size - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table: List[int] = []
        self._pcs: List[int] = []

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        self._pcs = [branch_pc(bid) for bid in branch_table]
        self._table = [self.initial_state] * self.table_size
        self._history = 0

    def slot(self, index: int) -> int:
        """The table entry the next execution of a branch would use."""
        return (self._pcs[index] ^ self._history) & self._mask

    def predict(self, index: int) -> bool:
        return self._table[self.slot(index)] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        self._observe_slot(self.slot(index), taken)

    def observe(self, index: int, taken: bool) -> bool:
        slot = (self._pcs[index] ^ self._history) & self._mask
        return self._observe_slot(slot, taken) >= self.threshold

    def _observe_slot(self, slot: int, taken: bool) -> int:
        """Update counter and history; returns the pre-update counter."""
        table = self._table
        state = table[slot]
        if taken:
            if state < self.max_state:
                table[slot] = state + 1
            self._history = ((self._history << 1) | 1) & self._history_mask
        else:
            if state > 0:
                table[slot] = state - 1
            self._history = (self._history << 1) & self._history_mask
        return state

    def budget_bits(self) -> Optional[int]:
        return self.table_size * self.num_bits + self.history_bits

    def snapshot(self) -> Tuple:
        return (tuple(self._table), self._history)
