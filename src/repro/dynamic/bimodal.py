"""Bimodal branch-history table: one n-bit saturating counter per entry.

The [Smith 81] scheme: each branch indexes a table of saturating
counters; the counter's top half predicts taken.  ``table_size=None``
gives every static branch its own counter — the idealized infinite,
unaliased table the repo's original ``OnlinePredictorMonitor`` simulated
— while a finite power-of-two table indexes by hashed branch address and
exhibits real aliasing.
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dynamic.base import DynamicPredictor, branch_pc, check_table_size
from repro.ir.instructions import BranchId


class BimodalPredictor(DynamicPredictor):
    """n-bit saturating-counter BHT, optionally finite and aliased."""

    def __init__(
        self,
        table_size: Optional[int] = 1024,
        num_bits: int = 2,
        initial_state: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if num_bits < 1:
            raise ValueError(f"num_bits must be >= 1, got {num_bits}")
        if table_size is not None:
            check_table_size(table_size)
        self.table_size = table_size
        self.num_bits = num_bits
        self.max_state = (1 << num_bits) - 1
        self.threshold = 1 << (num_bits - 1)
        if not 0 <= initial_state <= self.max_state:
            raise ValueError(
                f"initial_state must be in [0, {self.max_state}], "
                f"got {initial_state}"
            )
        self.initial_state = initial_state
        if name is None:
            size = "inf" if table_size is None else str(table_size)
            name = f"bimodal@{size}"
        self.name = name
        self._table: List[int] = []
        self._slots: List[int] = []

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        if self.table_size is None:
            self._slots = list(range(len(branch_table)))
            self._table = [self.initial_state] * len(branch_table)
        else:
            mask = self.table_size - 1
            self._slots = [branch_pc(bid) & mask for bid in branch_table]
            self._table = [self.initial_state] * self.table_size

    def predict(self, index: int) -> bool:
        return self._table[self._slots[index]] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        table = self._table
        slot = self._slots[index]
        state = table[slot]
        if taken:
            if state < self.max_state:
                table[slot] = state + 1
        elif state > 0:
            table[slot] = state - 1

    def observe(self, index: int, taken: bool) -> bool:
        table = self._table
        slot = self._slots[index]
        state = table[slot]
        if taken:
            if state < self.max_state:
                table[slot] = state + 1
        elif state > 0:
            table[slot] = state - 1
        return state >= self.threshold

    def budget_bits(self) -> Optional[int]:
        if self.table_size is None:
            return None
        return self.table_size * self.num_bits

    def snapshot(self) -> Tuple:
        return (tuple(self._table),)
