"""Dynamic branch-predictor simulation.

Finite-capacity, aliasing-aware hardware predictor models ([Smith 81],
[Lee and Smith 84], McFarling) scored online against live VM runs — the
"other side" of the paper's static-vs-dynamic comparison.  See
docs/PREDICTORS.md.
"""
from repro.dynamic.base import DynamicPredictor, branch_pc, check_table_size
from repro.dynamic.bimodal import BimodalPredictor
from repro.dynamic.gshare import GSharePredictor
from repro.dynamic.local import TwoLevelLocalPredictor
from repro.dynamic.score import DynamicScore, DynamicScoreMonitor, ipb_dynamic
from repro.dynamic.static_adapter import StaticAsDynamic
from repro.dynamic.tournament import TournamentPredictor
from repro.dynamic.zoo import (
    DEFAULT_TABLE_SIZES,
    MODEL_FAMILIES,
    build_model,
    default_zoo,
)

__all__ = [
    "BimodalPredictor",
    "DEFAULT_TABLE_SIZES",
    "DynamicPredictor",
    "DynamicScore",
    "DynamicScoreMonitor",
    "GSharePredictor",
    "MODEL_FAMILIES",
    "StaticAsDynamic",
    "TournamentPredictor",
    "TwoLevelLocalPredictor",
    "branch_pc",
    "build_model",
    "check_table_size",
    "default_zoo",
    "ipb_dynamic",
]
