"""StaticAsDynamic: run a static predictor inside the dynamic harness.

The whole point of the subsystem is the paper's comparison — static
profile-driven prediction vs hardware schemes *on the same runs*.  This
adapter wraps any :class:`~repro.prediction.base.StaticPredictor` (self
profile, cross-dataset profile, heuristics, always-taken) as a
:class:`DynamicPredictor` whose state never changes, so it can be scored
by the same monitor, event for event.  Its misprediction count provably
equals what ``evaluate_static`` computes from aggregate counters (there
is a test for that).
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dynamic.base import DynamicPredictor
from repro.ir.instructions import BranchId
from repro.prediction.base import StaticPredictor


class StaticAsDynamic(DynamicPredictor):
    """A fixed per-branch direction table, resolved once at reset."""

    def __init__(
        self, predictor: StaticPredictor, name: Optional[str] = None
    ) -> None:
        self.predictor = predictor
        self.name = name if name is not None else f"static({predictor.name})"
        self._directions: List[bool] = []

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        self._directions = [
            self.predictor.predict(bid) for bid in branch_table
        ]

    def predict(self, index: int) -> bool:
        return self._directions[index]

    def update(self, index: int, taken: bool) -> None:
        pass

    def observe(self, index: int, taken: bool) -> bool:
        return self._directions[index]

    def budget_bits(self) -> Optional[int]:
        # Software prediction: the direction bit lives in the opcode, not
        # in predictor hardware.
        return None

    def snapshot(self) -> Tuple:
        return (tuple(self._directions),)
