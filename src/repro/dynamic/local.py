"""Two-level local predictor: per-branch history into a pattern table.

Yeh & Patt's local scheme: the first level records each branch's own
recent outcome pattern (a shift register per branch-history-table entry);
the pattern selects a saturating counter in the shared second-level
pattern table.  Captures periodic per-branch behaviour (e.g. a loop that
runs exactly 4 iterations) that bimodal counters cannot.
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dynamic.base import DynamicPredictor, branch_pc, check_table_size
from repro.ir.instructions import BranchId


class TwoLevelLocalPredictor(DynamicPredictor):
    """Per-branch history registers indexing a shared pattern table.

    ``table_size`` sets both levels: the number of history registers and
    the number of pattern-table counters; ``history_bits`` (default
    log2(table_size)) is each register's length.
    """

    def __init__(
        self,
        table_size: int = 1024,
        history_bits: Optional[int] = None,
        num_bits: int = 2,
        initial_state: int = 0,
        name: Optional[str] = None,
    ) -> None:
        check_table_size(table_size)
        self.table_size = table_size
        if history_bits is None:
            history_bits = max(1, table_size.bit_length() - 1)
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits}")
        self.history_bits = history_bits
        self.num_bits = num_bits
        self.max_state = (1 << num_bits) - 1
        self.threshold = 1 << (num_bits - 1)
        self.initial_state = initial_state
        self.name = name if name is not None else f"local@{table_size}"
        self._mask = table_size - 1
        self._history_mask = (1 << history_bits) - 1
        self._histories: List[int] = []
        self._patterns: List[int] = []
        self._slots: List[int] = []

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        mask = self._mask
        self._slots = [branch_pc(bid) & mask for bid in branch_table]
        self._histories = [0] * self.table_size
        self._patterns = [self.initial_state] * self.table_size

    def predict(self, index: int) -> bool:
        history = self._histories[self._slots[index]]
        return self._patterns[history & self._mask] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        self._observe(index, taken)

    def observe(self, index: int, taken: bool) -> bool:
        return self._observe(index, taken) >= self.threshold

    def _observe(self, index: int, taken: bool) -> int:
        """Advance both levels; returns the pre-update pattern counter."""
        slot = self._slots[index]
        history = self._histories[slot]
        patterns = self._patterns
        pattern_slot = history & self._mask
        state = patterns[pattern_slot]
        if taken:
            if state < self.max_state:
                patterns[pattern_slot] = state + 1
            self._histories[slot] = ((history << 1) | 1) & self._history_mask
        else:
            if state > 0:
                patterns[pattern_slot] = state - 1
            self._histories[slot] = (history << 1) & self._history_mask
        return state

    def budget_bits(self) -> Optional[int]:
        return (
            self.table_size * self.history_bits
            + self.table_size * self.num_bits
        )

    def snapshot(self) -> Tuple:
        return (tuple(self._histories), tuple(self._patterns))
