"""Online scoring of dynamic predictors, with the paper's metrics.

``DynamicScoreMonitor`` attaches to a VM run (the ``BranchMonitor``
hook) and scores any number of models against the same outcome stream in
one pass — one simulation per (workload, dataset), however many
predictors are competing.  From the tallies plus the run's counters it
emits :class:`DynamicScore` rows carrying both the traditional
percent-correct *and* the measure the paper argues actually matters:
instructions per break, where breaks are mispredicted branches plus the
run's unavoidable breaks (indirect calls and their returns), exactly as
``repro.metrics.breaks`` counts them for static predictors.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.dynamic.base import DynamicPredictor
from repro.ir.instructions import BranchId
from repro.metrics.breaks import predicted_breaks, unavoidable_breaks
from repro.vm.counters import RunResult
from repro.vm.monitors import BranchMonitor


@dataclasses.dataclass
class DynamicScore:
    """How one predictor did against one run (the dynamic analogue of
    :class:`~repro.prediction.evaluate.PredictionReport`)."""

    program: str
    predictor: str
    table_size: Optional[int]
    budget_bits: Optional[int]
    instructions: int
    branch_execs: int
    mispredicted: int
    unavoidable_breaks: int

    @property
    def correct(self) -> int:
        return self.branch_execs - self.mispredicted

    @property
    def percent_correct(self) -> float:
        """Fraction of branch executions predicted correctly; vacuously
        1.0 when no branches executed (nothing was predicted wrongly)."""
        if self.branch_execs == 0:
            return 1.0
        return self.correct / self.branch_execs

    @property
    def breaks(self) -> int:
        return self.mispredicted + self.unavoidable_breaks

    @property
    def instructions_per_break(self) -> float:
        """Instructions per mispredicted branch or unavoidable break."""
        breaks = self.breaks
        return self.instructions / breaks if breaks else float(self.instructions)


class DynamicScoreMonitor(BranchMonitor):
    """Scores a set of dynamic predictors against one live run.

    The monitor needs the program's static branch table up front (from
    ``CompiledProgram.lowered.branch_table``) because finite models hash
    :class:`BranchId` identities into their tables at reset; the VM's
    ``on_run_start`` only passes a count, which is checked against it.
    """

    def __init__(
        self,
        models: Sequence[DynamicPredictor],
        branch_table: Sequence[BranchId],
    ) -> None:
        self.models = list(models)
        self.branch_table = list(branch_table)
        self.hits = [0] * len(self.models)
        self.mispredicts = [0] * len(self.models)

    def on_run_start(self, num_branches: int) -> None:
        if num_branches != len(self.branch_table):
            raise ValueError(
                f"program has {num_branches} branches but the monitor was "
                f"built for {len(self.branch_table)}"
            )
        for model in self.models:
            model.reset(self.branch_table)
        self.hits = [0] * len(self.models)
        self.mispredicts = [0] * len(self.models)

    def on_branch(self, branch_index: int, taken: bool, icount: int) -> None:
        hits = self.hits
        mispredicts = self.mispredicts
        for slot, model in enumerate(self.models):
            if model.observe(branch_index, taken) == taken:
                hits[slot] += 1
            else:
                mispredicts[slot] += 1

    # -- results -------------------------------------------------------------

    def score(self, model_index: int, run: RunResult) -> DynamicScore:
        """The score of one model against the observed run."""
        model = self.models[model_index]
        return DynamicScore(
            program=run.program,
            predictor=model.name,
            table_size=model.table_size,
            budget_bits=model.budget_bits(),
            instructions=run.instructions,
            branch_execs=self.hits[model_index] + self.mispredicts[model_index],
            mispredicted=self.mispredicts[model_index],
            unavoidable_breaks=unavoidable_breaks(run),
        )

    def scores(self, run: RunResult) -> List[DynamicScore]:
        """One :class:`DynamicScore` per model, in model order."""
        return [self.score(index, run) for index in range(len(self.models))]


def ipb_dynamic(run: RunResult, score: DynamicScore) -> float:
    """Instructions per break for a dynamic score, through the same
    ``BreakPolicy`` arithmetic the static metrics use."""
    breaks = predicted_breaks(run, score.mispredicted)
    return run.instructions / breaks if breaks else float(run.instructions)
