"""Tournament predictor: bimodal vs gshare with a chooser table.

McFarling's combining scheme (the Alpha 21264 shape): both component
predictors run on every branch; a table of 2-bit chooser counters,
indexed by branch address, learns per-address which component to trust.
The chooser only trains when the components disagree.
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dynamic.base import DynamicPredictor, branch_pc, check_table_size
from repro.dynamic.bimodal import BimodalPredictor
from repro.dynamic.gshare import GSharePredictor
from repro.ir.instructions import BranchId


class TournamentPredictor(DynamicPredictor):
    """Chooser-selected hybrid of a bimodal and a gshare component.

    Chooser counters: >= 2 trusts the global (gshare) component, < 2 the
    bimodal one; they start at 1 (weakly bimodal) so early loop-heavy
    behaviour is served while gshare's history warms up.
    """

    def __init__(
        self,
        table_size: int = 1024,
        num_bits: int = 2,
        name: Optional[str] = None,
    ) -> None:
        check_table_size(table_size)
        self.table_size = table_size
        self.num_bits = num_bits
        self.bimodal = BimodalPredictor(table_size=table_size, num_bits=num_bits)
        self.gshare = GSharePredictor(table_size=table_size, num_bits=num_bits)
        self.name = name if name is not None else f"tournament@{table_size}"
        self._mask = table_size - 1
        self._chooser: List[int] = []
        self._slots: List[int] = []

    def reset(self, branch_table: Sequence[BranchId]) -> None:
        self.bimodal.reset(branch_table)
        self.gshare.reset(branch_table)
        mask = self._mask
        self._slots = [branch_pc(bid) & mask for bid in branch_table]
        self._chooser = [1] * self.table_size

    def predict(self, index: int) -> bool:
        if self._chooser[self._slots[index]] >= 2:
            return self.gshare.predict(index)
        return self.bimodal.predict(index)

    def update(self, index: int, taken: bool) -> None:
        self._observe(index, taken)

    def observe(self, index: int, taken: bool) -> bool:
        return self._observe(index, taken)

    def _observe(self, index: int, taken: bool) -> bool:
        from_bimodal = self.bimodal.observe(index, taken)
        from_gshare = self.gshare.observe(index, taken)
        slot = self._slots[index]
        state = self._chooser[slot]
        predicted = from_gshare if state >= 2 else from_bimodal
        if from_bimodal != from_gshare:
            if from_gshare == taken:
                if state < 3:
                    self._chooser[slot] = state + 1
            elif state > 0:
                self._chooser[slot] = state - 1
        return predicted

    def budget_bits(self) -> Optional[int]:
        return (
            self.bimodal.budget_bits()
            + self.gshare.budget_bits()
            + self.table_size * 2
        )

    def snapshot(self) -> Tuple:
        return (
            self.bimodal.snapshot(),
            self.gshare.snapshot(),
            tuple(self._chooser),
        )
