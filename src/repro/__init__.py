"""repro: a reproduction of Fisher & Freudenberger (ASPLOS 1992),
"Predicting Conditional Branch Directions From Previous Runs of a Program".

Quickstart::

    from repro import compile_source, run_program

    program = compile_source(source_text, name="demo")
    result = run_program(program.lowered, input_data=b"...")
    print(result.instructions, result.percent_taken())

See :mod:`repro.core` for the profile-feedback workflow the paper studies and
:mod:`repro.experiments` for the table/figure reproductions.
"""
from repro.compiler import CompiledProgram, CompileOptions, compile_source
from repro.vm.machine import run_program

__version__ = "1.0.0"

__all__ = [
    "CompileOptions",
    "CompiledProgram",
    "__version__",
    "compile_source",
    "run_program",
]
