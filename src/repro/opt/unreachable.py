"""Unreachable-block removal (part of the dead code elimination trio)."""
from __future__ import annotations

from typing import List, Set

from repro.ir.cfg import Function


def remove_unreachable(func: Function) -> bool:
    """Drop blocks not reachable from the entry block."""
    if not func.blocks:
        return False
    block_map = func.block_map()
    reachable: Set[str] = set()
    worklist: List[str] = [func.blocks[0].label]
    while worklist:
        label = worklist.pop()
        if label in reachable:
            continue
        reachable.add(label)
        worklist.extend(block_map[label].successors())
    if len(reachable) == len(func.blocks):
        return False
    func.blocks = [block for block in func.blocks if block.label in reachable]
    return True
