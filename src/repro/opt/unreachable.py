"""Unreachable-block removal (part of the dead code elimination trio)."""
from __future__ import annotations

from repro.ir.analysis import reachable_from_entry
from repro.ir.cfg import Function


def remove_unreachable(func: Function) -> bool:
    """Drop blocks not reachable from the entry block."""
    if not func.blocks:
        return False
    reachable = reachable_from_entry(func)
    if len(reachable) == len(func.blocks):
        return False
    func.blocks = [block for block in func.blocks if block.label in reachable]
    return True
