"""Procedure inlining.

"A compiler that is going to find large amounts of ILP must be able to
inline the most commonly called procedures.  An executed call that is not
inlined will cost two breaks in control — a deadly effect when a short
routine is called in an inner loop."  The Multiflow compiler inlined
automatically under a switch; this pass is our equivalent (off by default,
like all measurements in the paper, and enabled by the inlining ablation
experiment).

Only *leaf* callees (no calls of their own) up to a size limit are inlined,
which keeps the transformation simple and excludes recursion by
construction.  Inlined conditional branches receive fresh
:class:`BranchId`\\ s in the caller — each inlined copy is a distinct static
branch, exactly as a source-level inliner feeding IFPROBBER would produce
(the paper notes source control had to account for this).
"""
from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import BasicBlock, Function, Module
from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import Opcode

#: Default ceiling on callee size (instructions) for inlining.
DEFAULT_MAX_CALLEE_INSTRS = 24


def _is_leaf(func: Function) -> bool:
    return not any(
        instr.op in (Opcode.CALL, Opcode.ICALL) for instr in func.instructions()
    )


def _instr_count(func: Function) -> int:
    return sum(len(block.instrs) for block in func.blocks)


def _inline_candidates(
    module: Module, max_callee_instrs: int
) -> Dict[str, Function]:
    return {
        func.name: func
        for func in module.functions
        if func.name != "main"
        and _is_leaf(func)
        and _instr_count(func) <= max_callee_instrs
    }


def _next_branch_index(func: Function) -> int:
    indices = [bid.index for bid in func.branch_ids()]
    return max(indices) + 1 if indices else 0


def _clone_instr(
    instr: Instr,
    reg_offset: int,
    label_map: Dict[str, str],
) -> Instr:
    def reg(value: Optional[int]) -> Optional[int]:
        return None if value is None else value + reg_offset

    return Instr(
        op=instr.op,
        dst=reg(instr.dst),
        a=reg(instr.a),
        b=reg(instr.b),
        c=reg(instr.c),
        imm=instr.imm,
        subop=instr.subop,
        symbol=instr.symbol,
        args=tuple(value + reg_offset for value in instr.args),
        then_label=label_map.get(instr.then_label, instr.then_label),
        else_label=label_map.get(instr.else_label, instr.else_label),
        branch_id=instr.branch_id,  # re-identified by the caller below
    )


def _inline_one_call(
    caller: Function,
    block_index: int,
    instr_index: int,
    callee: Function,
    clone_serial: int,
) -> None:
    """Replace one CALL instruction with the callee's cloned body."""
    block = caller.blocks[block_index]
    call = block.instrs[instr_index]
    suffix = f"inl.{callee.name}.{clone_serial}"
    reg_offset = caller.num_regs
    caller.num_regs += callee.num_regs

    label_map = {
        src.label: f"{src.label}.{suffix}" for src in callee.blocks
    }
    cont_label = f"cont.{suffix}"
    next_branch = _next_branch_index(caller)

    cloned_blocks: List[BasicBlock] = []
    for src in callee.blocks:
        cloned = BasicBlock(label_map[src.label])
        for instr in src.instrs:
            if instr.op == Opcode.RET:
                if call.dst is not None:
                    if instr.a is not None:
                        cloned.instrs.append(
                            Instr(Opcode.MOV, dst=call.dst, a=instr.a + reg_offset)
                        )
                    else:
                        cloned.instrs.append(
                            Instr(Opcode.CONST, dst=call.dst, imm=0)
                        )
                cloned.instrs.append(Instr(Opcode.JMP, then_label=cont_label))
                continue
            copy = _clone_instr(instr, reg_offset, label_map)
            if copy.op == Opcode.BR:
                copy.branch_id = BranchId(caller.name, next_branch)
                next_branch += 1
            cloned.instrs.append(copy)
        cloned_blocks.append(cloned)

    # Split the call block: prologue (argument moves) jumps into the clone;
    # the continuation inherits the remainder.
    head = block.instrs[:instr_index]
    for param, arg in enumerate(call.args):
        head.append(Instr(Opcode.MOV, dst=reg_offset + param, a=arg))
    head.append(Instr(Opcode.JMP, then_label=label_map[callee.blocks[0].label]))
    cont = BasicBlock(cont_label, block.instrs[instr_index + 1 :])
    block.instrs = head

    insert_at = block_index + 1
    caller.blocks[insert_at:insert_at] = cloned_blocks + [cont]


def inline_function(
    caller: Function,
    candidates: Dict[str, Function],
    max_inlines: int = 200,
) -> bool:
    """Inline eligible calls in one function; returns whether any were.

    ``max_inlines`` bounds code growth per caller.
    """
    changed = False
    serial = 0
    for _ in range(max_inlines):
        did_inline = False
        for block_index, block in enumerate(caller.blocks):
            for instr_index, instr in enumerate(block.instrs):
                if instr.op != Opcode.CALL:
                    continue
                callee = candidates.get(instr.symbol)
                if callee is None or callee.name == caller.name:
                    continue
                _inline_one_call(
                    caller, block_index, instr_index, callee, serial
                )
                serial += 1
                did_inline = True
                changed = True
                break
            if did_inline:
                break
        if not did_inline:
            break
        # Candidates are leaves, so the clone introduces no further calls;
        # restart the scan to find the next call site.
    return changed


def inline_module(
    module: Module,
    max_callee_instrs: int = DEFAULT_MAX_CALLEE_INSTRS,
    max_inlines_per_caller: int = 200,
) -> bool:
    """Inline small leaf functions throughout the module, in place."""
    candidates = _inline_candidates(module, max_callee_instrs)
    if not candidates:
        return False
    changed = False
    for func in module.functions:
        changed |= inline_function(
            func, candidates, max_inlines=max_inlines_per_caller
        )
    return changed
