"""If-conversion: turn small hammocks into straight-line selects.

The paper *suppressed* this in its compiler ("suppressed some more advanced
optimizations that would have changed the flow of control, such as loop
unrolling and if-conversion") because it removes the very branches being
studied.  We implement it as an off-by-default pass so the ablation
experiment can measure exactly what it would have done: both arms execute
unconditionally into fresh registers and a ``select`` picks each result, so
the conditional branch disappears.

Only hammocks/diamonds whose arms are short, branch-free and trap-free
(no loads, stores, calls, division) are converted.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import BinOp, Opcode

#: Maximum instructions per converted arm (excluding the terminator).
DEFAULT_MAX_ARM_INSTRS = 8

_PURE_OPS = (
    Opcode.CONST,
    Opcode.MOV,
    Opcode.ADDR,
    Opcode.FUNCADDR,
    Opcode.BIN,
    Opcode.UN,
    Opcode.SELECT,
)


def _convertible_body(block: BasicBlock, max_instrs: int) -> bool:
    body = block.body()
    if len(body) > max_instrs:
        return False
    term = block.terminator
    if term is None or term.op != Opcode.JMP:
        return False
    for instr in body:
        if instr.op not in _PURE_OPS:
            return False
        if instr.op == Opcode.BIN and instr.subop in (
            int(BinOp.DIV), int(BinOp.MOD),
        ):
            return False
    return True


def _rename_body(
    body: List[Instr], func: Function
) -> Tuple[List[Instr], Dict[int, int]]:
    """Clone a body writing into fresh registers.

    Returns the cloned instructions and the final mapping from each
    originally-defined register to the fresh register holding its value at
    the end of the arm.  Uses of earlier in-arm definitions are rewritten
    through the evolving map, so reads of pre-branch values stay intact.
    """
    mapping: Dict[int, int] = {}
    cloned: List[Instr] = []
    for instr in body:
        copy = Instr(
            op=instr.op,
            dst=instr.dst,
            a=instr.a,
            b=instr.b,
            c=instr.c,
            imm=instr.imm,
            subop=instr.subop,
            symbol=instr.symbol,
            args=instr.args,
        )
        if mapping:
            copy.replace_uses(mapping)
        fresh = func.new_reg()
        mapping[copy.dst] = fresh
        copy.dst = fresh
        cloned.append(copy)
    return cloned, mapping


def if_convert_function(
    func: Function, max_arm_instrs: int = DEFAULT_MAX_ARM_INSTRS
) -> bool:
    """Convert eligible hammocks in one function; returns whether any were."""
    changed = False
    while _convert_one(func, max_arm_instrs):
        changed = True
    return changed


def _convert_one(func: Function, max_arm_instrs: int) -> bool:
    block_map = func.block_map()
    preds = func.predecessors()
    for block in func.blocks:
        term = block.terminator
        if term is None or term.op != Opcode.BR:
            continue
        then_label, else_label = term.then_label, term.else_label
        if then_label == else_label:
            continue
        then_block = block_map[then_label]
        if not _is_arm(then_block, block.label, preds, max_arm_instrs):
            continue
        join_label = then_block.terminator.then_label
        else_block: Optional[BasicBlock] = None
        if else_label == join_label:
            pass  # one-sided hammock: empty else arm
        else:
            candidate = block_map[else_label]
            if not _is_arm(candidate, block.label, preds, max_arm_instrs):
                continue
            if candidate.terminator.then_label != join_label:
                continue
            else_block = candidate
        if join_label in (then_label, else_label, block.label):
            continue

        _apply_conversion(func, block, term, then_block, else_block, join_label)
        return True
    return False


def _is_arm(
    block: BasicBlock, only_pred: str, preds: Dict[str, List[str]], limit: int
) -> bool:
    return (
        preds.get(block.label) == [only_pred]
        and _convertible_body(block, limit)
    )


def _apply_conversion(
    func: Function,
    block: BasicBlock,
    term: Instr,
    then_block: BasicBlock,
    else_block: Optional[BasicBlock],
    join_label: str,
) -> None:
    cond = term.a
    then_code, then_map = _rename_body(then_block.body(), func)
    else_code, else_map = (
        _rename_body(else_block.body(), func) if else_block else ([], {})
    )

    new_tail: List[Instr] = then_code + else_code
    for reg in sorted(set(then_map) | set(else_map)):
        new_tail.append(
            Instr(
                Opcode.SELECT,
                dst=reg,
                a=cond,
                b=then_map.get(reg, reg),
                c=else_map.get(reg, reg),
            )
        )
    new_tail.append(Instr(Opcode.JMP, then_label=join_label))

    block.instrs = block.instrs[:-1] + new_tail
    dead_labels = {then_block.label}
    if else_block is not None:
        dead_labels.add(else_block.label)
    func.blocks = [b for b in func.blocks if b.label not in dead_labels]


def if_convert_module(module, max_arm_instrs: int = DEFAULT_MAX_ARM_INSTRS) -> bool:
    """If-convert every function of a module, in place."""
    changed = False
    for func in module.functions:
        changed |= if_convert_function(func, max_arm_instrs)
    return changed
