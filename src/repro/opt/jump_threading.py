"""Jump threading: route control transfers around trivial jump-only blocks.

The paper assumes a good ILP compiler "can eliminate many of these
unconditional breaks in control by rearranging the static position of the
code"; threading plus the fall-through elision in lowering is our equivalent.
"""
from __future__ import annotations

from typing import Dict

from repro.ir.cfg import Function
from repro.ir.opcodes import Opcode


def thread_jumps(func: Function) -> bool:
    """Retarget branches that point at blocks containing only a jump."""
    trivial: Dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and block.instrs[0].op == Opcode.JMP:
            trivial[block.label] = block.instrs[0].then_label

    if not trivial:
        return False

    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for block in func.blocks:
        term = block.terminator
        if term is None:
            continue
        if term.op == Opcode.JMP:
            target = resolve(term.then_label)
            if target != term.then_label:
                term.then_label = target
                changed = True
        elif term.op == Opcode.BR:
            then_target = resolve(term.then_label)
            else_target = resolve(term.else_label)
            if then_target != term.then_label or else_target != term.else_label:
                term.then_label = then_target
                term.else_label = else_target
                changed = True
    return changed
