"""Jump threading: route control transfers around trivial jump-only blocks.

The paper assumes a good ILP compiler "can eliminate many of these
unconditional breaks in control by rearranging the static position of the
code"; threading plus the fall-through elision in lowering is our equivalent.
"""
from __future__ import annotations

from typing import Dict, Set

from repro.ir.analysis import retarget_block
from repro.ir.cfg import Function
from repro.ir.opcodes import Opcode


def thread_jumps(func: Function) -> bool:
    """Retarget branches that point at blocks containing only a jump."""
    trivial: Dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and block.instrs[0].op == Opcode.JMP:
            target = block.instrs[0].then_label
            if target is not None:
                trivial[block.label] = target

    if not trivial:
        return False

    def resolve(label: str) -> str:
        seen: Set[str] = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for block in func.blocks:
        changed |= retarget_block(block, resolve)
    return changed
