"""Classical compiler optimizations over the CFG-form IR."""
from repro.opt.branch_folding import fold_branches
from repro.opt.constant_folding import fold_function
from repro.opt.copy_propagation import propagate_function
from repro.opt.cse import cse_function
from repro.opt.deadcode import eliminate_dead_instructions
from repro.opt.globalconst import constant_globals, written_symbols
from repro.opt.ifconvert import if_convert_function, if_convert_module
from repro.opt.inline import inline_function, inline_module
from repro.opt.jump_threading import thread_jumps
from repro.opt.pipeline import OptOptions, optimize_module
from repro.opt.unreachable import remove_unreachable

__all__ = [
    "OptOptions",
    "constant_globals",
    "cse_function",
    "eliminate_dead_instructions",
    "fold_branches",
    "fold_function",
    "if_convert_function",
    "if_convert_module",
    "inline_function",
    "inline_module",
    "optimize_module",
    "propagate_function",
    "remove_unreachable",
    "thread_jumps",
    "written_symbols",
]
