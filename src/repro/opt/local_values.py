"""Per-block value tracking shared by the local optimization passes.

Tracks, for each virtual register, what is known about its value from its
most recent definition *within the current block*: a constant, the address of
a global symbol, or an address derived from a global symbol's base (array
element addresses).  This is sound regardless of cross-block liveness because
facts are only used at program points after the in-block definition.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.ir.instructions import Instr
from repro.ir.opcodes import BinOp, Opcode


@dataclasses.dataclass(frozen=True)
class Value:
    """What is known about a register: ``kind`` is one of
    ``"const"`` (``number`` holds the value), ``"addr"`` (``symbol`` is the
    global whose base address this is), or ``"elem"`` (an address somewhere
    inside global ``symbol``)."""

    kind: str
    number: int = 0
    symbol: str = ""


class BlockValues:
    """Forward value tracker for one basic block."""

    def __init__(self, const_globals: Optional[Dict[str, int]] = None):
        self.values: Dict[int, Value] = {}
        self.const_globals = const_globals or {}

    def get(self, reg: Optional[int]) -> Optional[Value]:
        if reg is None:
            return None
        return self.values.get(reg)

    def const_of(self, reg: Optional[int]) -> Optional[int]:
        value = self.get(reg)
        if value is not None and value.kind == "const":
            return value.number
        return None

    def kill(self, reg: Optional[int]) -> None:
        if reg is not None:
            self.values.pop(reg, None)

    def update(self, instr: Instr) -> None:
        """Record the effect of ``instr`` on register knowledge.

        Call this *after* inspecting the instruction's uses.
        """
        op = instr.op
        if op == Opcode.CONST:
            self.values[instr.dst] = Value("const", number=instr.imm)
        elif op == Opcode.ADDR:
            self.values[instr.dst] = Value("addr", symbol=instr.symbol)
        elif op == Opcode.MOV:
            source = self.get(instr.a)
            if source is not None:
                self.values[instr.dst] = source
            else:
                self.kill(instr.dst)
        elif op == Opcode.BIN and instr.subop == int(BinOp.ADD):
            left = self.get(instr.a)
            right = self.get(instr.b)
            symbol = None
            if left is not None and left.kind in ("addr", "elem"):
                symbol = left.symbol
            elif right is not None and right.kind in ("addr", "elem"):
                symbol = right.symbol
            if symbol is not None:
                self.values[instr.dst] = Value("elem", symbol=symbol)
            else:
                self.kill(instr.dst)
        elif op == Opcode.LOAD:
            address = self.get(instr.a)
            if (
                address is not None
                and address.kind == "addr"
                and address.symbol in self.const_globals
            ):
                self.values[instr.dst] = Value(
                    "const", number=self.const_globals[address.symbol]
                )
            else:
                self.kill(instr.dst)
        elif instr.dst is not None:
            self.kill(instr.dst)
