"""Local common-subexpression elimination over pure register computations.

Memory loads are deliberately not CSE'd (that would need alias reasoning
across stores); constants, addresses, ALU operations and selects are.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.cfg import Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import COMMUTATIVE_BINOPS, BinOp, Opcode


def _expr_key(instr: Instr) -> Optional[Tuple]:
    """A hashable value key for pure computations, or None."""
    op = instr.op
    if op == Opcode.CONST:
        return ("const", instr.imm)
    if op == Opcode.ADDR:
        return ("addr", instr.symbol)
    if op == Opcode.FUNCADDR:
        return ("funcaddr", instr.symbol)
    if op == Opcode.BIN:
        a, b = instr.a, instr.b
        if BinOp(instr.subop) in COMMUTATIVE_BINOPS and b < a:
            a, b = b, a
        return ("bin", instr.subop, a, b)
    if op == Opcode.UN:
        return ("un", instr.subop, instr.a)
    if op == Opcode.SELECT:
        return ("select", instr.a, instr.b, instr.c)
    return None


def _key_operands(key: Tuple) -> Tuple[int, ...]:
    """Registers a key depends on."""
    if key[0] in ("const", "addr", "funcaddr"):
        return ()
    if key[0] in ("bin", "un"):
        return tuple(k for k in key[2:])
    return tuple(k for k in key[1:])


def cse_function(func: Function) -> bool:
    """Eliminate duplicated pure computations within each block."""
    changed = False
    for block in func.blocks:
        available: Dict[Tuple, int] = {}
        for position, instr in enumerate(block.instrs):
            key = _expr_key(instr)
            if key is not None:
                existing = available.get(key)
                if existing is not None and existing != instr.dst:
                    replacement = Instr(Opcode.MOV, dst=instr.dst, a=existing)
                    block.instrs[position] = replacement
                    instr = replacement
                    changed = True
            dst = instr.dst
            if dst is not None:
                # Kill expressions that used dst or whose result lived in dst.
                available = {
                    k: reg
                    for k, reg in available.items()
                    if reg != dst and dst not in _key_operands(k)
                }
                if key is not None and instr.op != Opcode.MOV:
                    available[key] = dst
    return changed
