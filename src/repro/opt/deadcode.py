"""Dead-instruction elimination via global (per-function) liveness.

Pure instructions whose destination register is not live afterwards are
removed.  This, with branch folding and unreachable-block removal, makes up
the dead code elimination the paper turned off and measured in Table 1.
"""
from __future__ import annotations

from typing import Dict, Set

from repro.ir.cfg import Function


def _block_use_def(block) -> tuple:
    """(use, def): regs read before any write / regs written, per block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        if instr.dst is not None:
            defs.add(instr.dst)
    return uses, defs


def _liveness(func: Function) -> Dict[str, Set[int]]:
    """live-out register sets per block label."""
    use_def = {block.label: _block_use_def(block) for block in func.blocks}
    live_in: Dict[str, Set[int]] = {block.label: set() for block in func.blocks}
    live_out: Dict[str, Set[int]] = {block.label: set() for block in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: Set[int] = set()
            for succ in block.successors():
                out |= live_in[succ]
            uses, defs = use_def[label]
            new_in = uses | (out - defs)
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_out


def eliminate_dead_instructions(func: Function) -> bool:
    """Remove pure instructions whose results are never used."""
    live_out = _liveness(func)
    changed = False
    for block in func.blocks:
        live = set(live_out[block.label])
        kept = []
        for instr in reversed(block.instrs):
            dst = instr.dst
            if (
                dst is not None
                and dst not in live
                and not instr.has_side_effects()
            ):
                changed = True
                continue
            if dst is not None:
                live.discard(dst)
            live.update(instr.uses())
            kept.append(instr)
        kept.reverse()
        block.instrs = kept
    return changed
