"""Dead-instruction elimination via global (per-function) liveness.

Pure instructions whose destination register is not live afterwards are
removed.  This, with branch folding and unreachable-block removal, makes up
the dead code elimination the paper turned off and measured in Table 1.
The liveness itself comes from the shared dataflow framework
(:mod:`repro.analysis.liveness`).
"""
from __future__ import annotations

from repro.analysis.liveness import live_out
from repro.ir.cfg import Function


def eliminate_dead_instructions(func: Function) -> bool:
    """Remove pure instructions whose results are never used."""
    liveness = live_out(func)
    changed = False
    for block in func.blocks:
        live = set(liveness[block.label])
        kept = []
        for instr in reversed(block.instrs):
            dst = instr.dst
            if (
                dst is not None
                and dst not in live
                and not instr.has_side_effects()
            ):
                changed = True
                continue
            if dst is not None:
                live.discard(dst)
            live.update(instr.uses())
            kept.append(instr)
        kept.reverse()
        block.instrs = kept
    return changed
