"""Local copy propagation: forward ``MOV`` sources to later uses in a block."""
from __future__ import annotations

from typing import Dict

from repro.ir.cfg import Function
from repro.ir.opcodes import Opcode


def propagate_function(func: Function) -> bool:
    """Rewrite uses through in-block copies; returns whether anything changed."""
    changed = False
    for block in func.blocks:
        copies: Dict[int, int] = {}  # reg -> equivalent earlier reg
        for instr in block.instrs:
            if copies:
                applicable = {
                    reg: src for reg, src in copies.items() if reg in instr.uses()
                }
                if applicable:
                    instr.replace_uses(applicable)
                    changed = True
            dst = instr.dst
            if dst is not None:
                # A new definition invalidates copies into or out of dst.
                copies = {
                    reg: src
                    for reg, src in copies.items()
                    if reg != dst and src != dst
                }
                if instr.op == Opcode.MOV and instr.a != dst:
                    copies[dst] = copies.get(instr.a, instr.a)
    return changed
