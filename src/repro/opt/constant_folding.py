"""Local constant folding (with constant-global load folding)."""
from __future__ import annotations

from typing import Dict, Optional

from repro.ir.cfg import Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import BINOP_FUNCS, UNOP_FUNCS, Opcode
from repro.opt.local_values import BlockValues


def fold_function(func: Function, const_globals: Dict[str, int]) -> bool:
    """Fold constant computations in place; returns whether anything changed."""
    changed = False
    for block in func.blocks:
        values = BlockValues(const_globals)
        for position, instr in enumerate(block.instrs):
            folded = _try_fold(instr, values)
            if folded is not None:
                block.instrs[position] = folded
                instr = folded
                changed = True
            values.update(instr)
    return changed


def _try_fold(instr: Instr, values: BlockValues) -> Optional[Instr]:
    op = instr.op
    if op == Opcode.BIN:
        left = values.const_of(instr.a)
        right = values.const_of(instr.b)
        if left is not None and right is not None:
            try:
                result = BINOP_FUNCS[instr.subop](left, right)
            except ZeroDivisionError:
                return None  # preserve the run-time fault
            return Instr(Opcode.CONST, dst=instr.dst, imm=result)
        return None
    if op == Opcode.UN:
        operand = values.const_of(instr.a)
        if operand is not None:
            return Instr(
                Opcode.CONST, dst=instr.dst, imm=UNOP_FUNCS[instr.subop](operand)
            )
        return None
    if op == Opcode.SELECT:
        cond = values.const_of(instr.a)
        if cond is not None:
            chosen = instr.b if cond != 0 else instr.c
            return Instr(Opcode.MOV, dst=instr.dst, a=chosen)
        return None
    if op == Opcode.MOV:
        source = values.const_of(instr.a)
        if source is not None:
            return Instr(Opcode.CONST, dst=instr.dst, imm=source)
        return None
    if op == Opcode.LOAD:
        address = values.get(instr.a)
        if (
            address is not None
            and address.kind == "addr"
            and address.symbol in values.const_globals
        ):
            return Instr(
                Opcode.CONST,
                dst=instr.dst,
                imm=values.const_globals[address.symbol],
            )
        return None
    return None
