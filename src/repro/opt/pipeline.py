"""The optimization pipeline and its configuration.

The default configuration mirrors the paper's: "we allowed most of the
typical classical intraprocedural optimizations ... but suppressed some more
advanced optimizations that would have changed the flow of control", and
"we had to turn off the compiler's global dead code elimination".  So the
classical scalar passes (including plain dead-instruction cleanup) are on by
default, and *global dead code elimination* — branch folding plus
unreachable-block removal — is off; Table 1 turns it on to measure what it
would have removed.
"""
from __future__ import annotations

import dataclasses

from repro.ir.cfg import Module
from repro.opt.branch_folding import fold_branches
from repro.opt.constant_folding import fold_function
from repro.opt.copy_propagation import propagate_function
from repro.opt.cse import cse_function
from repro.opt.deadcode import eliminate_dead_instructions
from repro.opt.globalconst import constant_globals
from repro.opt.ifconvert import if_convert_function
from repro.opt.jump_threading import thread_jumps
from repro.opt.unreachable import remove_unreachable


@dataclasses.dataclass
class OptOptions:
    """Which passes run.  Defaults reproduce the paper's compiler setup.

    Dead-*instruction* elimination (removing pure computations whose results
    are never used, e.g. copy-propagation leftovers) is a classical scalar
    cleanup and is on by default.  What the paper calls "global dead code
    elimination" — folding constant-outcome branches and deleting the code
    they guard, which "removes conditional branches with constant outcome,
    hence changes the total number and order of conditional branches" — is
    the ``branch_folding`` + ``remove_unreachable`` pair, off by default and
    enabled only to measure Table 1.  (A computation whose only use sits
    behind a constant-false guard stays live until the guard is folded, so
    those two passes are also what unlocks removing it.)
    """

    constant_folding: bool = True
    copy_propagation: bool = True
    cse: bool = True
    jump_threading: bool = True
    global_constants: bool = True
    dead_instructions: bool = True
    # Global dead code elimination (paper: OFF for all measurements).
    branch_folding: bool = False
    remove_unreachable: bool = False
    # If-conversion (paper: suppressed; enabled only by the ablation).
    if_conversion: bool = False
    max_iterations: int = 10

    @classmethod
    def classical(cls) -> "OptOptions":
        """The paper's configuration: classical optimizations, no DCE."""
        return cls()

    @classmethod
    def with_dce(cls) -> "OptOptions":
        """Classical optimizations plus global dead code elimination."""
        return cls(branch_folding=True, remove_unreachable=True)

    @classmethod
    def none(cls) -> "OptOptions":
        """No optimization at all (for debugging and baselines)."""
        return cls(
            constant_folding=False,
            copy_propagation=False,
            cse=False,
            jump_threading=False,
            global_constants=False,
            dead_instructions=False,
        )


def optimize_module(module: Module, options: OptOptions = None) -> Module:
    """Run the configured passes to a fixpoint (bounded), in place."""
    if options is None:
        options = OptOptions.classical()
    for _ in range(options.max_iterations):
        changed = False
        const_globals = (
            constant_globals(module) if options.global_constants else {}
        )
        for func in module.functions:
            if options.constant_folding:
                changed |= fold_function(func, const_globals)
            if options.copy_propagation:
                changed |= propagate_function(func)
            if options.cse:
                changed |= cse_function(func)
            if options.jump_threading:
                changed |= thread_jumps(func)
            if options.if_conversion:
                changed |= if_convert_function(func)
            if options.branch_folding:
                changed |= fold_branches(func, const_globals)
            if options.remove_unreachable:
                changed |= remove_unreachable(func)
            if options.dead_instructions:
                changed |= eliminate_dead_instructions(func)
        if not changed:
            break
    return module
