"""The optimization pipeline and its configuration.

The default configuration mirrors the paper's: "we allowed most of the
typical classical intraprocedural optimizations ... but suppressed some more
advanced optimizations that would have changed the flow of control", and
"we had to turn off the compiler's global dead code elimination".  So the
classical scalar passes (including plain dead-instruction cleanup) are on by
default, and *global dead code elimination* — branch folding plus
unreachable-block removal — is off; Table 1 turns it on to measure what it
would have removed.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, List, Mapping, Optional

from repro.analysis.lint import format_findings, lint_errors
from repro.ir.cfg import Function, IRError, Module
from repro.ir.validate import validate_module
from repro.opt.branch_folding import fold_branches
from repro.opt.constant_folding import fold_function
from repro.opt.copy_propagation import propagate_function
from repro.opt.cse import cse_function
from repro.opt.deadcode import eliminate_dead_instructions
from repro.opt.globalconst import constant_globals
from repro.opt.ifconvert import if_convert_function
from repro.opt.jump_threading import thread_jumps
from repro.opt.unreachable import remove_unreachable


@dataclasses.dataclass
class OptOptions:
    """Which passes run.  Defaults reproduce the paper's compiler setup.

    Dead-*instruction* elimination (removing pure computations whose results
    are never used, e.g. copy-propagation leftovers) is a classical scalar
    cleanup and is on by default.  What the paper calls "global dead code
    elimination" — folding constant-outcome branches and deleting the code
    they guard, which "removes conditional branches with constant outcome,
    hence changes the total number and order of conditional branches" — is
    the ``branch_folding`` + ``remove_unreachable`` pair, off by default and
    enabled only to measure Table 1.  (A computation whose only use sits
    behind a constant-false guard stays live until the guard is folded, so
    those two passes are also what unlocks removing it.)
    """

    constant_folding: bool = True
    copy_propagation: bool = True
    cse: bool = True
    jump_threading: bool = True
    global_constants: bool = True
    dead_instructions: bool = True
    # Global dead code elimination (paper: OFF for all measurements).
    branch_folding: bool = False
    remove_unreachable: bool = False
    # If-conversion (paper: suppressed; enabled only by the ablation).
    if_conversion: bool = False
    max_iterations: int = 10

    @classmethod
    def classical(cls) -> "OptOptions":
        """The paper's configuration: classical optimizations, no DCE."""
        return cls()

    @classmethod
    def with_dce(cls) -> "OptOptions":
        """Classical optimizations plus global dead code elimination."""
        return cls(branch_folding=True, remove_unreachable=True)

    @classmethod
    def none(cls) -> "OptOptions":
        """No optimization at all (for debugging and baselines)."""
        return cls(
            constant_folding=False,
            copy_propagation=False,
            cse=False,
            jump_threading=False,
            global_constants=False,
            dead_instructions=False,
        )


@dataclasses.dataclass(frozen=True)
class Pass:
    """A named pipeline pass: an enable switch plus a per-function body."""

    name: str
    enabled: Callable[[OptOptions], bool]
    run: Callable[[Function, Mapping[str, int]], bool]


#: Pipeline order.  Each entry runs over every function before the next
#: starts; passes are intraprocedural, so this produces the same IR as the
#: historical function-major loop while giving the sanitizer a well-defined
#: "after pass X" point to re-check invariants at.
PASSES: List[Pass] = [
    Pass(
        "constant-folding",
        lambda options: options.constant_folding,
        fold_function,
    ),
    Pass(
        "copy-propagation",
        lambda options: options.copy_propagation,
        lambda func, const_globals: propagate_function(func),
    ),
    Pass("cse", lambda options: options.cse, lambda func, _: cse_function(func)),
    Pass(
        "jump-threading",
        lambda options: options.jump_threading,
        lambda func, _: thread_jumps(func),
    ),
    Pass(
        "if-conversion",
        lambda options: options.if_conversion,
        lambda func, _: if_convert_function(func),
    ),
    Pass(
        "branch-folding",
        lambda options: options.branch_folding,
        fold_branches,
    ),
    Pass(
        "remove-unreachable",
        lambda options: options.remove_unreachable,
        lambda func, _: remove_unreachable(func),
    ),
    Pass(
        "dead-instructions",
        lambda options: options.dead_instructions,
        lambda func, _: eliminate_dead_instructions(func),
    ),
]


class PipelineSanityError(IRError):
    """An optimization pass left the module in an invalid state.

    Carries the name of the offending pass — the whole point of the
    sanitizer is turning "some pass somewhere broke the IR" into "pass X
    broke invariant Y".
    """

    def __init__(self, pass_name: str, details: str) -> None:
        super().__init__(
            f"IR invariants violated after pass {pass_name!r}:\n{details}"
        )
        self.pass_name = pass_name
        self.details = details


def _check_invariants(module: Module, pass_name: str) -> None:
    try:
        validate_module(module)
    except IRError as exc:
        raise PipelineSanityError(pass_name, str(exc)) from exc
    errors = lint_errors(module)
    if errors:
        raise PipelineSanityError(pass_name, format_findings(errors))


def optimize_module(
    module: Module,
    options: Optional[OptOptions] = None,
    sanitize: bool = False,
) -> Module:
    """Run the configured passes to a fixpoint (bounded), in place.

    With ``sanitize``, the module is re-validated (structural checks plus
    error-severity lint rules) after every pass that changed it;
    a violation raises :class:`PipelineSanityError` naming the pass.
    """
    if options is None:
        options = OptOptions.classical()
    if sanitize:
        _check_invariants(module, "<input>")
    for _ in range(options.max_iterations):
        changed = False
        const_globals = (
            constant_globals(module) if options.global_constants else {}
        )
        for pipeline_pass in PASSES:
            if not pipeline_pass.enabled(options):
                continue
            pass_changed = False
            for func in module.functions:
                pass_changed |= pipeline_pass.run(func, const_globals)
            if sanitize and pass_changed:
                _check_invariants(module, pipeline_pass.name)
            changed |= pass_changed
        if not changed:
            break
    return module
