"""Branch folding: turn constant-outcome conditional branches into jumps.

This pass is part of the *dead code elimination* configuration, which the
paper deliberately turned off for its measurements ("dead code elimination
removes conditional branches with constant outcome").  It is enabled when
measuring Table 1's dead-code fractions.
"""
from __future__ import annotations

from typing import Dict

from repro.ir.cfg import Function
from repro.ir.instructions import Instr
from repro.ir.opcodes import Opcode
from repro.opt.local_values import BlockValues


def fold_branches(func: Function, const_globals: Dict[str, int]) -> bool:
    """Replace constant (or degenerate) conditional branches with jumps."""
    changed = False
    for block in func.blocks:
        term = block.terminator
        if term is None or term.op != Opcode.BR:
            continue
        if term.then_label == term.else_label:
            block.instrs[-1] = Instr(Opcode.JMP, then_label=term.then_label)
            changed = True
            continue
        values = BlockValues(const_globals)
        for instr in block.instrs[:-1]:
            values.update(instr)
        cond = values.const_of(term.a)
        if cond is not None:
            target = term.then_label if cond != 0 else term.else_label
            block.instrs[-1] = Instr(Opcode.JMP, then_label=target)
            changed = True
    return changed
