"""Module-level constant-global analysis.

A global *scalar* whose address never reaches a store is a constant with its
initializer value (MF has no address-of for data, so data addresses cannot
escape through calls or memory).

The analysis is a flow-insensitive, per-function fixpoint: for every virtual
register we compute the set of global symbols whose storage it may point
into; a store writes every symbol its address register may point into.  An
address of unknown provenance (a set that is empty at a store) conservatively
invalidates the whole analysis — this cannot arise from our code generator,
whose store addresses are always ``ADDR`` or ``ADDR``-plus-offset chains.

This is what lets ``if (DEBUG)`` and similar generality knobs become
constant-outcome branches — the branches the paper's Table 1 says dead code
elimination would have removed, and which it deliberately left in.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.ir.cfg import Function, Module
from repro.ir.opcodes import Opcode

_EMPTY: FrozenSet[str] = frozenset()

#: Opcodes whose destination may carry an address derived from the operands.
_PROPAGATING = (Opcode.MOV, Opcode.BIN, Opcode.UN, Opcode.SELECT)


def _points_to_sets(func: Function) -> Dict[int, FrozenSet[str]]:
    """Fixpoint of reg -> symbols-whose-storage-it-may-address."""
    points_to: Dict[int, FrozenSet[str]] = {}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for instr in block.instrs:
                if instr.dst is None:
                    continue
                if instr.op == Opcode.ADDR:
                    new = points_to.get(instr.dst, _EMPTY) | {instr.symbol}
                elif instr.op in _PROPAGATING:
                    gathered: Set[str] = set(points_to.get(instr.dst, _EMPTY))
                    for reg in instr.uses():
                        gathered |= points_to.get(reg, _EMPTY)
                    new = frozenset(gathered)
                else:
                    continue
                if new != points_to.get(instr.dst, _EMPTY):
                    points_to[instr.dst] = new
                    changed = True
    return points_to


def written_symbols(module: Module) -> Set[str]:
    """Global symbols that may be written to, or all of them when unknown."""
    written: Set[str] = set()
    for func in module.functions:
        points_to = _points_to_sets(func)
        for block in func.blocks:
            for instr in block.instrs:
                if instr.op != Opcode.STORE:
                    continue
                targets = points_to.get(instr.a, _EMPTY)
                if not targets:
                    # Address of unknown provenance: give up entirely.
                    return {var.name for var in module.globals}
                written |= targets
    return written


def constant_globals(module: Module) -> Dict[str, int]:
    """Names of never-written global scalars mapped to their constant value."""
    written = written_symbols(module)
    constants: Dict[str, int] = {}
    for var in module.globals:
        if var.size == 1 and var.name not in written:
            constants[var.name] = var.init[0] if var.init else 0
    return constants
