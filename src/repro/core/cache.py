"""Run-result serialization and the on-disk run cache.

Simulating every (program, dataset) takes seconds; every table and figure is
arithmetic over the same runs.  The cache keys on a digest of the program
source, the input bytes and the compile configuration, so it can never serve
stale results after a workload or compiler change.
"""
from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.ir.instructions import BranchId
from repro.vm.counters import ControlEvents, RunResult

#: Bump when the RunResult layout or counting semantics change.
CACHE_FORMAT_VERSION = 3


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-serializable form of a RunResult."""
    return {
        "program": result.program,
        "instructions": result.instructions,
        "branch_table": [
            [bid.function, bid.index] for bid in result.branch_table
        ],
        "branch_exec": result.branch_exec,
        "branch_taken": result.branch_taken,
        "events": result.events.as_dict(),
        "output_hex": result.output.hex(),
        "exit_code": result.exit_code,
    }


def run_result_from_dict(data: dict) -> RunResult:
    return RunResult(
        program=data["program"],
        instructions=data["instructions"],
        branch_table=[
            BranchId(function, index) for function, index in data["branch_table"]
        ],
        branch_exec=list(data["branch_exec"]),
        branch_taken=list(data["branch_taken"]),
        events=ControlEvents(**data["events"]),
        output=bytes.fromhex(data["output_hex"]),
        exit_code=data["exit_code"],
    )


def run_digest(source: str, input_data: bytes, config: str) -> str:
    """Digest identifying one run for caching purposes."""
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_FORMAT_VERSION}|{config}|".encode())
    hasher.update(source.encode())
    hasher.update(b"|")
    hasher.update(input_data)
    return hasher.hexdigest()[:32]


class DiskCache:
    """A trivial one-file-per-entry JSON cache."""

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def load(self, digest: str) -> Optional[RunResult]:
        if not self.directory:
            return None
        path = self._path(digest)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return run_result_from_dict(json.load(handle))
        except (ValueError, KeyError, TypeError):
            return None  # corrupt entry: recompute

    def store(self, digest: str, result: RunResult) -> None:
        if not self.directory:
            return
        path = self._path(digest)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(run_result_to_dict(result), handle)
        os.replace(tmp_path, path)
