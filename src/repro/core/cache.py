"""Run-result serialization and the on-disk run cache.

Simulating every (program, dataset) takes seconds; every table and figure is
arithmetic over the same runs.  The cache keys on a digest of the program
source, the input bytes and the compile configuration, so it can never serve
stale results after a workload or compiler change.
"""
from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

from repro.ir.instructions import BranchId
from repro.vm.counters import ControlEvents, RunResult

#: Bump when the RunResult layout, counting semantics, or digest scheme
#: change.  v4: length-prefixed digest fields (the v3 ``|``-joined form was
#: not injective across field boundaries).
CACHE_FORMAT_VERSION = 4


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-serializable form of a RunResult."""
    return {
        "program": result.program,
        "instructions": result.instructions,
        "branch_table": [
            [bid.function, bid.index] for bid in result.branch_table
        ],
        "branch_exec": result.branch_exec,
        "branch_taken": result.branch_taken,
        "events": result.events.as_dict(),
        "output_hex": result.output.hex(),
        "exit_code": result.exit_code,
    }


def run_result_from_dict(data: dict) -> RunResult:
    return RunResult(
        program=data["program"],
        instructions=data["instructions"],
        branch_table=[
            BranchId(function, index) for function, index in data["branch_table"]
        ],
        branch_exec=list(data["branch_exec"]),
        branch_taken=list(data["branch_taken"]),
        events=ControlEvents(**data["events"]),
        output=bytes.fromhex(data["output_hex"]),
        exit_code=data["exit_code"],
    )


def run_digest(source: str, input_data: bytes, config: str) -> str:
    """Digest identifying one run for caching purposes.

    Every field is length-prefixed before hashing so the encoding is
    injective: joining with a separator alone would let content containing
    the separator shift across field boundaries — e.g.
    ``(source="x|y", input=b"z")`` vs ``(source="x", input=b"y|z")`` —
    and serve the wrong cached run.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_FORMAT_VERSION}".encode())
    for field in (config.encode(), source.encode(), input_data):
        hasher.update(b"%d:" % len(field))
        hasher.update(field)
    return hasher.hexdigest()[:32]


class DiskCache:
    """A trivial one-file-per-entry JSON cache."""

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def load(self, digest: str) -> Optional[RunResult]:
        if not self.directory:
            return None
        path = self._path(digest)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return run_result_from_dict(json.load(handle))
        except (ValueError, KeyError, TypeError):
            return None  # corrupt entry: recompute

    def store(self, digest: str, result: RunResult) -> None:
        if not self.directory:
            return
        path = self._path(digest)
        # Unique per-writer temp file: a shared "<path>.tmp" lets two
        # parallel workers storing the same digest interleave writes (and
        # race the final rename), leaving a corrupt or vanished entry.
        # mkstemp in the cache directory keeps the os.replace atomic
        # (same filesystem) while giving each writer its own file.
        fd, tmp_path = tempfile.mkstemp(
            prefix=f"{digest}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(run_result_to_dict(result), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
