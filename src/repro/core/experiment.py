"""Cross-dataset prediction experiments — the paper's core methodology.

"We used these counts as predictors, one per dataset, and measured how well
they performed predicting the other datasets.  We then combined the results
of runs to form new predictors.  Sometimes we used the run we were trying to
predict as its own predictor" (§2, General Methodology).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.runner import WorkloadRunner
from repro.metrics.ipb import ipb_no_prediction, ipb_with_predictor
from repro.prediction.base import ProfilePredictor, StaticPredictor
from repro.prediction.combine import combine_profiles
from repro.prediction.evaluate import PredictionReport, evaluate_static
from repro.profiling.branch_profile import BranchProfile
from repro.vm.counters import RunResult


@dataclasses.dataclass
class DatasetPrediction:
    """Figure 2 numbers for one target dataset."""

    workload: str
    dataset: str
    instructions: int
    ipb_unpredicted: float
    ipb_self: float          # black bar: best possible prediction
    ipb_combined: float      # white bar: scaled sum of the other datasets

    @property
    def combined_fraction_of_self(self) -> float:
        """How much of the best-possible IPB the summary predictor achieves."""
        return self.ipb_combined / self.ipb_self if self.ipb_self else 0.0


@dataclasses.dataclass
class BestWorstPrediction:
    """Figure 3 numbers for one target dataset: single-other-dataset
    predictors as a percentage of the self-prediction bound."""

    workload: str
    dataset: str
    best_other: Optional[str]
    worst_other: Optional[str]
    best_percent: float
    worst_percent: float


class CrossDatasetExperiment:
    """All predictor/target combinations for one workload."""

    def __init__(self, runner: WorkloadRunner, workload_name: str):
        self.runner = runner
        self.workload_name = workload_name
        self._runs: Optional[Dict[str, RunResult]] = None
        self._profiles: Optional[Dict[str, BranchProfile]] = None

    @property
    def runs(self) -> Dict[str, RunResult]:
        if self._runs is None:
            self._runs = self.runner.run_all(self.workload_name)
        return self._runs

    @property
    def profiles(self) -> Dict[str, BranchProfile]:
        if self._profiles is None:
            self._profiles = {
                name: BranchProfile.from_run(run)
                for name, run in self.runs.items()
            }
        return self._profiles

    def dataset_names(self) -> List[str]:
        return list(self.runs.keys())

    # -- predictors ---------------------------------------------------------

    def self_predictor(self, dataset: str) -> StaticPredictor:
        return ProfilePredictor(self.profiles[dataset], name="self")

    def single_predictor(self, predictor_dataset: str) -> StaticPredictor:
        return ProfilePredictor(
            self.profiles[predictor_dataset], name=predictor_dataset
        )

    def combined_predictor(
        self, exclude: str, mode: str = "scaled"
    ) -> StaticPredictor:
        """The leave-one-out summary predictor (Figure 2 white bars)."""
        rest = [
            profile
            for name, profile in self.profiles.items()
            if name != exclude
        ]
        combined = combine_profiles(rest, mode=mode, program=self.workload_name)
        return ProfilePredictor(combined, name=f"sum-others({mode})")

    # -- measurements ---------------------------------------------------------

    def ipb(self, target: str, predictor: StaticPredictor) -> float:
        return ipb_with_predictor(self.runs[target], predictor)

    def report(self, target: str, predictor: StaticPredictor) -> PredictionReport:
        return evaluate_static(self.runs[target], predictor)

    def dataset_prediction(
        self, target: str, mode: str = "scaled"
    ) -> DatasetPrediction:
        """Figure 2: self vs leave-one-out combined, for one dataset."""
        run = self.runs[target]
        return DatasetPrediction(
            workload=self.workload_name,
            dataset=target,
            instructions=run.instructions,
            ipb_unpredicted=ipb_no_prediction(run),
            ipb_self=self.ipb(target, self.self_predictor(target)),
            ipb_combined=self.ipb(target, self.combined_predictor(target, mode)),
        )

    def best_worst(self, target: str) -> BestWorstPrediction:
        """Figure 3: the best and worst single other dataset, as a percent
        of the self-prediction bound."""
        self_ipb = self.ipb(target, self.self_predictor(target))
        best_name = worst_name = None
        best = -1.0
        worst = float("inf")
        for other in self.dataset_names():
            if other == target:
                continue
            value = self.ipb(target, self.single_predictor(other))
            if value > best:
                best, best_name = value, other
            if value < worst:
                worst, worst_name = value, other
        if best_name is None:
            raise ValueError(
                f"workload {self.workload_name!r} needs 2+ datasets for "
                f"best/worst analysis"
            )
        return BestWorstPrediction(
            workload=self.workload_name,
            dataset=target,
            best_other=best_name,
            worst_other=worst_name,
            best_percent=100.0 * best / self_ipb if self_ipb else 0.0,
            worst_percent=100.0 * worst / self_ipb if self_ipb else 0.0,
        )

    def pairwise_matrix(self) -> Dict[Tuple[str, str], float]:
        """(predictor, target) -> instructions per break, all pairs."""
        matrix: Dict[Tuple[str, str], float] = {}
        for target in self.dataset_names():
            for predictor_name in self.dataset_names():
                if predictor_name == target:
                    predictor = self.self_predictor(target)
                else:
                    predictor = self.single_predictor(predictor_name)
                matrix[(predictor_name, target)] = self.ipb(target, predictor)
        return matrix
