"""Process-pool fan-out for independent workload runs.

Every experiment sweep is arithmetic over many independent
(workload, dataset, RunConfig) triples, and simulating a triple takes
seconds while aggregating it takes microseconds.  ``ParallelRunner``
fans the *cache misses* of such a sweep across a
``concurrent.futures.ProcessPoolExecutor``, using the on-disk run cache
as the cross-process result substrate: workers execute misses and write
``RunResult``s through ``DiskCache``; the parent loads the digests back.
Because both paths serialize through the same cache format, serial and
parallel execution return byte-identical results.

Design points (see docs/PARALLEL.md for the long form):

* **Cache as IPC.**  Workers never ship ``RunResult``s over the pool
  pipe — they publish to the shared ``DiskCache`` and return only an
  error slot.  The parent re-loads by digest, so a result computed in a
  worker is indistinguishable from one computed locally.
* **Deterministic seeding.**  Each worker seeds the global ``random``
  module from the run's digest before executing, so any stochastic code
  path is reproducible regardless of which worker picks up which run.
* **Graceful fallback.**  ``jobs <= 1``, a single miss, a disabled disk
  cache, or a platform without fork/spawn all degrade to in-process
  execution through the exact serial path.  A broken pool (a worker
  killed by the OS) retries the misses serially rather than failing.
* **Per-run error capture.**  A failing triple is reported as a
  ``RunFailure`` naming the triple; it never poisons the rest of the
  batch, which completes and is cached normally.
"""
from __future__ import annotations

import dataclasses
import os
import random
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.cache import run_digest
from repro.core.runner import RunConfig, WorkloadRunner
from repro.vm.counters import RunResult
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: Environment variable consulted when no explicit job count is given.
ENV_JOBS = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1.

    ``0`` means "all cores" (``os.cpu_count()``); negative values and
    non-integer environment values raise ``ValueError``.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS)
        if raw is None or not raw.strip():
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_JOBS} must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """One (workload, dataset, configuration) triple of a sweep."""

    workload: str
    dataset: str
    config: RunConfig = RunConfig()

    def key(self) -> Tuple[str, str, RunConfig]:
        """The WorkloadRunner memoization key for this request."""
        return (self.workload, self.dataset, self.config)

    def describe(self) -> str:
        return f"{self.workload}/{self.dataset} [{self.config.tag()}]"


@dataclasses.dataclass
class RunFailure:
    """A captured per-run error: which triple failed, and why."""

    request: RunRequest
    error: str

    def summary(self) -> str:
        last_line = self.error.strip().splitlines()[-1] if self.error else ""
        return f"{self.request.describe()}: {last_line}"


class ParallelExecutionError(RuntimeError):
    """One or more runs of a batch failed; the rest completed normally."""

    def __init__(self, failures: Sequence[RunFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  - {failure.summary()}" for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} of the batched runs failed:\n{lines}"
        )


def dataset_requests(
    workloads: Iterable[Workload],
    configs: Sequence[RunConfig] = (RunConfig(),),
) -> List[RunRequest]:
    """Expand workloads into one request per (dataset, config) pair."""
    return [
        RunRequest(workload.name, dataset, config)
        for workload in workloads
        for config in configs
        for dataset in workload.dataset_names()
    ]


# -- worker side ---------------------------------------------------------------

_WORKER_RUNNER: Optional[WorkloadRunner] = None


def _worker_init(cache_dir: Optional[str]) -> None:
    """Build one runner per worker process so compiled programs — and the
    fast engine's predecoded form cached on them — are reused across the
    runs a worker executes."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = WorkloadRunner(cache_dir=cache_dir)


def _worker_execute(
    workload: str, dataset: str, config: RunConfig, seed: int
) -> Optional[str]:
    """Execute one cache miss; publish the result via the disk cache.

    Returns ``None`` on success or a formatted traceback on failure —
    never raises, so one bad triple cannot poison the pool.
    """
    random.seed(seed)
    try:
        _WORKER_RUNNER.run(workload, dataset, config=config)
        return None
    except Exception:
        return traceback.format_exc()


def _digest_seed(digest: str) -> int:
    """Deterministic per-run worker seed derived from the cache digest."""
    return int(digest[:16], 16)


# -- parent side ---------------------------------------------------------------


class ParallelRunner:
    """Batched execution of independent runs over a WorkloadRunner.

    The parent runner's in-memory memo and disk cache are consulted
    first; only genuine misses are executed, in a process pool when
    ``jobs > 1`` and the platform allows it, in-process otherwise.
    """

    def __init__(self, runner: WorkloadRunner, jobs: Optional[int] = None):
        self.runner = runner
        if jobs is None:
            jobs = getattr(runner, "jobs", None)
        self.jobs = resolve_jobs(jobs) if jobs is not None else 1

    # -- public API ------------------------------------------------------------

    def run_many(
        self,
        requests: Sequence[RunRequest],
        on_error: str = "raise",
    ) -> List[Union[RunResult, RunFailure]]:
        """Run a batch of triples; results come back in request order.

        ``on_error="raise"`` (the default) raises ParallelExecutionError
        after the whole batch has been attempted, so the successful runs
        are already cached; ``on_error="capture"`` instead returns
        ``RunFailure`` objects in the failed slots.
        """
        if on_error not in ("raise", "capture"):
            raise ValueError(
                f"on_error must be 'raise' or 'capture', got {on_error!r}"
            )
        unique: Dict[Tuple[str, str, RunConfig], RunRequest] = {}
        for request in requests:
            unique.setdefault(request.key(), request)

        failures: Dict[Tuple[str, str, RunConfig], RunFailure] = {}
        digests = self._prepare(unique, failures)
        misses = self._serve_disk_hits(digests)
        if misses:
            if self._pool_usable(len(misses)):
                self._run_pool(misses, unique, digests, failures)
            else:
                self._run_serial(misses, unique, failures)

        results: List[Union[RunResult, RunFailure]] = []
        for request in requests:
            key = request.key()
            if key in failures:
                results.append(failures[key])
            else:
                results.append(self.runner._runs[key])
        if failures and on_error == "raise":
            raise ParallelExecutionError(list(failures.values()))
        return results

    # -- batch preparation ----------------------------------------------------

    def _prepare(self, unique, failures) -> Dict[tuple, str]:
        """Digest every request not already memoized; capture failures
        from unknown workloads/datasets without touching the rest."""
        digests: Dict[tuple, str] = {}
        for key, request in unique.items():
            if key in self.runner._runs:
                continue
            try:
                workload = get_workload(request.workload)
                dataset = workload.dataset(request.dataset)
            except Exception:
                failures[key] = RunFailure(request, traceback.format_exc())
                continue
            digests[key] = run_digest(
                workload.source, dataset.data, request.config.tag()
            )
        return digests

    def _serve_disk_hits(self, digests: Dict[tuple, str]) -> List[tuple]:
        """Memoize disk-cached results; return the keys still missing."""
        misses = []
        for key, digest in digests.items():
            cached = self.runner._disk.load(digest)
            if cached is not None:
                self.runner._memoize(key, cached)
            else:
                misses.append(key)
        return misses

    # -- execution -------------------------------------------------------------

    def _pool_usable(self, miss_count: int) -> bool:
        if self.jobs <= 1 or miss_count <= 1:
            return False
        if not self.runner._disk.directory:
            return False  # no shared substrate to publish results through
        try:
            import multiprocessing

            return bool(multiprocessing.get_all_start_methods())
        except (ImportError, NotImplementedError):
            return False

    def _run_serial(self, misses, unique, failures) -> None:
        """The in-process fallback: the exact serial path, with the same
        per-run error capture the pool provides."""
        for key in misses:
            request = unique[key]
            try:
                self.runner.run(
                    request.workload, request.dataset, config=request.config
                )
            except Exception:
                failures[key] = RunFailure(request, traceback.format_exc())

    def _run_pool(self, misses, unique, digests, failures) -> None:
        cache_dir = self.runner._disk.directory
        workers = min(self.jobs, len(misses))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(cache_dir,),
            ) as pool:
                futures = {
                    pool.submit(
                        _worker_execute,
                        unique[key].workload,
                        unique[key].dataset,
                        unique[key].config,
                        _digest_seed(digests[key]),
                    ): key
                    for key in misses
                }
                worker_errors = {
                    futures[future]: future.result()
                    for future in as_completed(futures)
                }
        except Exception:
            # A broken pool (worker killed, spawn failure) is not a result
            # error: retry everything not yet published, in-process.
            remaining = [
                key for key in misses
                if self.runner._disk.load(digests[key]) is None
            ]
            self._run_serial(remaining, unique, failures)
            self._collect_published(
                [key for key in misses if key not in remaining], digests
            )
            return

        failed = [key for key, error in worker_errors.items() if error]
        for key in failed:
            failures[key] = RunFailure(unique[key], worker_errors[key])
        succeeded = [key for key in misses if key not in failures]
        orphans = self._collect_published(succeeded, digests)
        for key in orphans:
            failures[key] = RunFailure(
                unique[key],
                "worker reported success but the cache entry is missing",
            )

    def _collect_published(self, keys, digests) -> List[tuple]:
        """Load worker-published results into the parent memo; return
        any keys whose cache entry cannot be read back."""
        orphans = []
        for key in keys:
            cached = self.runner._disk.load(digests[key])
            if cached is None:
                orphans.append(key)
            else:
                self.runner._memoize(key, cached)
        return orphans
