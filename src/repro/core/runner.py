"""The workload runner: compile once, run per dataset, cache everything."""
from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.compiler import CompiledProgram, CompileOptions, compile_source
from repro.core.cache import DiskCache, run_digest
from repro.opt.pipeline import OptOptions
from repro.profiling.branch_profile import BranchProfile
from repro.vm.counters import RunResult
from repro.vm.machine import Machine
from repro.vm.monitors import BranchMonitor
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: Default on-disk cache location (override with the REPRO_CACHE_DIR
#: environment variable; set it to empty to disable).
DEFAULT_CACHE_DIR = ".repro-cache"


def _default_cache_dir() -> Optional[str]:
    value = os.environ.get("REPRO_CACHE_DIR")
    if value is None:
        return DEFAULT_CACHE_DIR
    return value or None


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Which compiler configuration a run uses.

    The default is the paper's measurement configuration; ``dce`` is the
    Table 1 variant; ``inline`` and ``if_conversion`` drive the ablation
    experiments for the switches the paper's compiler had but kept off.
    """

    dce: bool = False
    inline: bool = False
    if_conversion: bool = False

    def tag(self) -> str:
        return (
            f"dce={self.dce}|inline={self.inline}|ifconv={self.if_conversion}"
        )

    def compile_options(self) -> CompileOptions:
        if self.dce:
            opt = OptOptions.with_dce()
        else:
            opt = OptOptions.classical()
        opt.if_conversion = self.if_conversion
        return CompileOptions(inline=self.inline, opt=opt)


class WorkloadRunner:
    """Compiles and executes workloads, memoizing runs in memory and on disk.

    ``jobs`` sets the default fan-out for the batched ``run_many`` path
    (``None`` consults the ``REPRO_JOBS`` environment variable, ``0``
    means all cores); single ``run`` calls are always in-process.

    ``publish`` is an optional profile-publish hook,
    ``callable(result, dataset_name)``, invoked exactly once per
    (workload, dataset, config) triple when its result is first
    memoized — whether it came from a fresh execution, the disk cache,
    or a parallel worker.  The profile-feedback service's upload path
    (``ProfileClient.publisher()``) plugs in here.  Monitored runs are
    never memoized and therefore never published.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = "auto",
        jobs: Optional[int] = None,
        publish: Optional[Callable[[RunResult, str], None]] = None,
    ):
        from repro.core.parallel import resolve_jobs

        if cache_dir == "auto":
            cache_dir = _default_cache_dir()
        self._disk = DiskCache(cache_dir)
        self._programs: Dict[Tuple[str, RunConfig], CompiledProgram] = {}
        self._runs: Dict[Tuple[str, str, RunConfig], RunResult] = {}
        self._machine = Machine()
        self.jobs = resolve_jobs(jobs)
        self.publish = publish

    def _memoize(
        self, key: Tuple[str, str, RunConfig], result: RunResult
    ) -> None:
        """Record a result in the in-memory memo, publishing it on first
        sight.  Every path that materializes a result — serial run, disk
        hit, parallel collection — funnels through here, so the publish
        hook fires exactly once per triple per runner."""
        fresh = key not in self._runs
        self._runs[key] = result
        if fresh and self.publish is not None:
            self.publish(result, key[1])

    @staticmethod
    def _config(
        dce: bool, inline: bool, if_conversion: bool,
        config: Optional[RunConfig],
    ) -> RunConfig:
        if config is not None:
            return config
        return RunConfig(dce=dce, inline=inline, if_conversion=if_conversion)

    # -- compilation ----------------------------------------------------------

    def compiled(
        self,
        workload_name: str,
        dce: bool = False,
        inline: bool = False,
        if_conversion: bool = False,
        config: Optional[RunConfig] = None,
    ) -> CompiledProgram:
        """The compiled program for a workload (cached per configuration)."""
        run_config = self._config(dce, inline, if_conversion, config)
        key = (workload_name, run_config)
        if key not in self._programs:
            workload = get_workload(workload_name)
            self._programs[key] = compile_source(
                workload.source,
                name=workload.name,
                options=run_config.compile_options(),
            )
        return self._programs[key]

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        workload_name: str,
        dataset_name: str,
        dce: bool = False,
        inline: bool = False,
        if_conversion: bool = False,
        config: Optional[RunConfig] = None,
        monitors: Sequence[BranchMonitor] = (),
    ) -> RunResult:
        """Run one (workload, dataset, configuration); results are cached
        unless monitors are attached (monitors observe the live stream)."""
        run_config = self._config(dce, inline, if_conversion, config)
        key = (workload_name, dataset_name, run_config)
        if monitors:
            return self._execute(key, monitors)
        if key not in self._runs:
            workload = get_workload(workload_name)
            dataset = workload.dataset(dataset_name)
            digest = run_digest(workload.source, dataset.data, run_config.tag())
            cached = self._disk.load(digest)
            if cached is None:
                cached = self._execute(key, ())
                self._disk.store(digest, cached)
            self._memoize(key, cached)
        return self._runs[key]

    def _execute(
        self,
        key: Tuple[str, str, RunConfig],
        monitors: Sequence[BranchMonitor],
    ) -> RunResult:
        # Compiled programs are memoized per (workload, config), and the
        # fast engine caches its predecoded form on the LoweredProgram
        # itself — so a sweep over many datasets of one workload pays
        # compile + predecode exactly once per process.
        workload_name, dataset_name, run_config = key
        workload = get_workload(workload_name)
        dataset = workload.dataset(dataset_name)
        compiled = self.compiled(workload_name, config=run_config)
        return self._machine.run(
            compiled.lowered, input_data=dataset.data, monitors=monitors
        )

    def run_many(self, requests, jobs: Optional[int] = None,
                 on_error: str = "raise"):
        """Run a batch of ``RunRequest`` triples, fanning cache misses
        across worker processes when the effective job count exceeds 1.

        Results come back in request order and are memoized exactly as
        if each triple had gone through ``run`` — serial and parallel
        execution are byte-identical.  See ``repro.core.parallel``.
        """
        from repro.core.parallel import ParallelRunner

        return ParallelRunner(self, jobs=jobs).run_many(
            requests, on_error=on_error
        )

    def run_all(
        self,
        workload_name: str,
        dce: bool = False,
        inline: bool = False,
        if_conversion: bool = False,
        config: Optional[RunConfig] = None,
    ) -> Dict[str, RunResult]:
        """Run a workload on every dataset; dataset name -> result."""
        run_config = self._config(dce, inline, if_conversion, config)
        workload = get_workload(workload_name)
        names = workload.dataset_names()
        if self.jobs > 1:
            from repro.core.parallel import RunRequest

            self.run_many(
                [RunRequest(workload_name, name, run_config) for name in names]
            )
        return {
            name: self.run(workload_name, name, config=run_config)
            for name in names
        }

    # -- profiles -----------------------------------------------------------------

    def profile(
        self,
        workload_name: str,
        dataset_name: str,
        config: Optional[RunConfig] = None,
    ) -> BranchProfile:
        """The branch profile of one (workload, dataset) run."""
        return BranchProfile.from_run(
            self.run(workload_name, dataset_name, config=config)
        )

    def profiles(self, workload_name: str) -> Dict[str, BranchProfile]:
        """Branch profiles for every dataset of a workload."""
        return {
            name: BranchProfile.from_run(result)
            for name, result in self.run_all(workload_name).items()
        }

    def workload(self, workload_name: str) -> Workload:
        """Convenience pass-through to the registry."""
        return get_workload(workload_name)
