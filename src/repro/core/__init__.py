"""The headline API: workload running, profiling, cross-dataset prediction."""
from repro.core.experiment import (
    BestWorstPrediction,
    CrossDatasetExperiment,
    DatasetPrediction,
)
from repro.core.runner import WorkloadRunner

__all__ = [
    "BestWorstPrediction",
    "CrossDatasetExperiment",
    "DatasetPrediction",
    "WorkloadRunner",
]
