"""The headline API: workload running, profiling, cross-dataset prediction."""
from repro.core.experiment import (
    BestWorstPrediction,
    CrossDatasetExperiment,
    DatasetPrediction,
)
from repro.core.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    RunFailure,
    RunRequest,
    dataset_requests,
    resolve_jobs,
)
from repro.core.runner import RunConfig, WorkloadRunner

__all__ = [
    "BestWorstPrediction",
    "CrossDatasetExperiment",
    "DatasetPrediction",
    "ParallelExecutionError",
    "ParallelRunner",
    "RunConfig",
    "RunFailure",
    "RunRequest",
    "WorkloadRunner",
    "dataset_requests",
    "resolve_jobs",
]
