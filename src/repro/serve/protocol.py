"""The profile-feedback wire protocol: length-prefixed, versioned JSON.

Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  Requests carry
``{"v": PROTOCOL_VERSION, "op": <operation>, ...}``; responses carry
``{"v": ..., "ok": true/false, ...}`` with an ``error`` message when
``ok`` is false.  JSON is always encoded canonically (sorted keys, compact
separators), so two semantically equal payloads are byte-equal on the wire
— the property the server/offline differential gate leans on.

Operations:

``upload``
    ``{"program", "dataset", "profile"}`` — accumulate one run's branch
    counters (a ``BranchProfile`` dict) into the aggregator.
``predict``
    ``{"program", "mode", "exclude"}`` — serve the combined summary
    profile over the program's datasets (leave-one-out when ``exclude``
    names a dataset, all datasets when null), byte-identical to the
    offline ``combine_profiles``/``leave_one_out`` path.
``stats``
    aggregator contents plus service metrics.
``health``
    liveness, current epoch, in-flight depth.
"""
from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.profiling.branch_profile import BranchProfile

#: Bump on any incompatible change to framing or payload layout.
PROTOCOL_VERSION = 1

#: Operations the server understands.
OPS = ("upload", "predict", "stats", "health")

#: Hard ceiling on one frame's body; a header claiming more is rejected
#: before any allocation, so a corrupt or hostile peer cannot balloon
#: server memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, truncated, oversized, or version-skewed message."""


def canonical_json(payload: Dict[str, Any]) -> bytes:
    """Canonical (sorted, compact) JSON encoding of a payload."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: length header plus canonical JSON body."""
    body = canonical_json(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def check_version(payload: Dict[str, Any]) -> None:
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer sent {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )


def _claimed_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header claims {length} bytes, cap is {MAX_FRAME_BYTES}"
        )
    return length


# -- message constructors ------------------------------------------------------


def request(op: str, **fields: Any) -> Dict[str, Any]:
    if op not in OPS:
        raise ProtocolError(f"unknown operation {op!r}; use one of {OPS}")
    payload = {"v": PROTOCOL_VERSION, "op": op}
    payload.update(fields)
    return payload


def ok_response(**fields: Any) -> Dict[str, Any]:
    payload = {"v": PROTOCOL_VERSION, "ok": True}
    payload.update(fields)
    return payload


def error_response(message: str) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "ok": False, "error": message}


# -- profile marshalling -------------------------------------------------------


def profile_to_wire(profile: BranchProfile) -> Dict[str, Any]:
    return profile.to_dict()


def profile_from_wire(data: Dict[str, Any]) -> BranchProfile:
    try:
        return BranchProfile.from_dict(data)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError(f"malformed profile payload: {exc}") from None


def canonical_profile_bytes(profile: BranchProfile) -> bytes:
    """The bytes the differential gate compares: a profile's canonical
    JSON form.  Server-side and offline combining must agree on these
    exactly — not approximately — for every mode."""
    return canonical_json(profile.to_dict())


# -- asyncio framing -----------------------------------------------------------


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF before a header starts.

    EOF mid-header or mid-body raises ``ProtocolError`` — the peer
    vanished inside a message.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from None
    length = _claimed_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None
    return decode_body(body)


async def write_frame_async(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking-socket framing (the sync client) ---------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame from a blocking socket (EOF is always an error:
    the sync client only reads where a response is owed)."""
    header = _recv_exact(sock, _HEADER.size)
    return decode_body(_recv_exact(sock, _claimed_length(header)))


def write_frame_sync(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))
