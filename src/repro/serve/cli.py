"""repro-serve: the profile-feedback service command line.

Subcommands::

    repro-serve serve --port 7381 --db profiles.d       # run the server
    repro-serve upload-sweep --server H:P --workloads doduc,fpppp
    repro-serve predict --server H:P --program doduc [--exclude ref]
    repro-serve predict ... --verify-offline            # differential gate
    repro-serve stats --server H:P [--metrics]
    repro-serve health --server H:P

``upload-sweep`` runs bundled workloads locally (through the cached
``WorkloadRunner``) and publishes every run's branch counters via the
runner's publish hook.  ``predict --verify-offline`` recomputes the same
prediction through the offline ``combine_profiles`` path and fails unless
the served bytes match exactly — the round-trip check CI runs.
"""
from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional, Tuple

from repro.prediction.combine import COMBINE_MODES
from repro.serve import protocol
from repro.serve.aggregator import Aggregator, database_predict
from repro.serve.client import ProfileClient, RetryPolicy
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT, ProfileServer


def _parse_server(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _client(args) -> ProfileClient:
    host, port = args.server
    return ProfileClient(
        host, port, timeout=args.timeout,
        retry=RetryPolicy(attempts=args.retries + 1),
    )


# -- serve ---------------------------------------------------------------------


async def _serve(args) -> int:
    aggregator = Aggregator(shards=args.shards, persist_dir=args.db)
    server = ProfileServer(
        aggregator,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        flush_interval=args.flush_interval,
    )
    await server.start()
    print(f"repro-serve: listening on {server.host}:{server.port}", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w") as handle:
            handle.write(f"{server.host}:{server.port}\n")

    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stopping.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without signal support on loops
    await stopping.wait()
    print("repro-serve: draining...", flush=True)
    await server.stop()
    print("repro-serve: stopped", flush=True)
    return 0


def cmd_serve(args) -> int:
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


# -- upload-sweep --------------------------------------------------------------


def cmd_upload_sweep(args) -> int:
    from repro.core.parallel import dataset_requests
    from repro.core.runner import WorkloadRunner
    from repro.workloads.registry import get_workload

    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    if not names:
        print("upload-sweep: no workloads named", file=sys.stderr)
        return 2
    workloads = [get_workload(name) for name in names]
    with _client(args) as client:
        uploaded: List[str] = []

        def publish(run, dataset) -> None:
            client.upload_run(run, dataset)
            uploaded.append(f"{run.program}/{dataset}")

        runner = WorkloadRunner(jobs=args.jobs, publish=publish)
        runner.run_many(dataset_requests(workloads))
        epoch = client.health()["epoch"]
    for entry in uploaded:
        print(f"uploaded {entry}")
    print(f"upload-sweep: {len(uploaded)} uploads, server epoch {epoch}")
    return 0


# -- predict -------------------------------------------------------------------


def _offline_profile_bytes(args) -> bytes:
    """The offline path: rebuild the same per-dataset profiles locally and
    combine them with the library code the experiments use."""
    from repro.core.runner import WorkloadRunner
    from repro.profiling.database import ProfileDatabase

    runner = WorkloadRunner(jobs=args.jobs)
    database = ProfileDatabase()
    for dataset, result in runner.run_all(args.program).items():
        database.record(result, dataset)
    profile, _ = database_predict(
        database, args.program, mode=args.mode, exclude=args.exclude
    )
    return protocol.canonical_profile_bytes(profile)


def cmd_predict(args) -> int:
    with _client(args) as client:
        prediction = client.predict(
            args.program, mode=args.mode, exclude=args.exclude
        )
    served = protocol.canonical_profile_bytes(prediction.profile)
    print(served.decode("utf-8"))
    print(
        f"predict: {args.program} mode={args.mode} "
        f"exclude={args.exclude or '-'} datasets={','.join(prediction.datasets)} "
        f"epoch={prediction.epoch}",
        file=sys.stderr,
    )
    if args.verify_offline:
        offline = _offline_profile_bytes(args)
        if served != offline:
            print(
                "predict: MISMATCH — served bytes differ from the offline "
                "combine_profiles path",
                file=sys.stderr,
            )
            return 1
        print("predict: served bytes == offline bytes", file=sys.stderr)
    return 0


# -- stats / health ------------------------------------------------------------


def cmd_stats(args) -> int:
    with _client(args) as client:
        response = client.stats()
    payload = response["metrics"] if args.metrics else response["stats"]
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_health(args) -> int:
    with _client(args) as client:
        response = client.health()
    print(json.dumps(
        {key: value for key, value in response.items() if key != "ok"},
        indent=2, sort_keys=True,
    ))
    return 0


# -- argument parsing ----------------------------------------------------------


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        type=_parse_server,
        default=f"{DEFAULT_HOST}:{DEFAULT_PORT}",
        help=f"server address (default {DEFAULT_HOST}:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request timeout in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="transport retries per request (exponential backoff)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Profile-feedback service: aggregate branch profiles "
        "over TCP and serve summary predictions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the aggregation server")
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--db", default=None, metavar="DIR",
        help="persist shards as JSON under this directory (write-behind)",
    )
    serve.add_argument("--shards", type=int, default=8)
    serve.add_argument("--max-inflight", type=int, default=64)
    serve.add_argument("--flush-interval", type=float, default=1.0)
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write HOST:PORT here once listening (for scripts)",
    )
    serve.set_defaults(func=cmd_serve)

    sweep = sub.add_parser(
        "upload-sweep",
        help="run bundled workloads locally and upload their profiles",
    )
    _add_client_args(sweep)
    sweep.add_argument(
        "--workloads", required=True,
        help="comma-separated bundled workload names",
    )
    sweep.add_argument("--jobs", "-j", type=int, default=None)
    sweep.set_defaults(func=cmd_upload_sweep)

    predict = sub.add_parser(
        "predict", help="fetch a summary prediction for a program"
    )
    _add_client_args(predict)
    predict.add_argument("--program", required=True)
    predict.add_argument("--mode", choices=COMBINE_MODES, default="scaled")
    predict.add_argument(
        "--exclude", default=None,
        help="leave this dataset out (leave-one-out prediction)",
    )
    predict.add_argument(
        "--verify-offline", action="store_true",
        help="recompute offline and fail unless the bytes match",
    )
    predict.add_argument("--jobs", "-j", type=int, default=None)
    predict.set_defaults(func=cmd_predict)

    stats = sub.add_parser("stats", help="dump aggregator contents")
    _add_client_args(stats)
    stats.add_argument(
        "--metrics", action="store_true",
        help="dump service metrics instead of aggregator contents",
    )
    stats.set_defaults(func=cmd_stats)

    health = sub.add_parser("health", help="liveness probe")
    _add_client_args(health)
    health.set_defaults(func=cmd_health)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
