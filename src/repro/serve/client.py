"""Profile-feedback clients: blocking and asyncio, both resilient.

Both clients share the same contract:

* **Connection reuse** — one TCP connection serves many requests; a dead
  connection is dropped and rebuilt transparently.
* **Per-request timeouts** — a hung server costs ``timeout`` seconds,
  never forever.
* **Exponential-backoff retries** — transport failures (refused, reset,
  timed out, torn mid-frame) are retried on a fresh connection with
  exponentially growing delays; *server-reported* errors are not retried,
  the server already answered.
* **Graceful degradation** — with a ``fallback`` database attached, every
  upload is mirrored locally, and when the server stays unreachable the
  client serves ``predict`` from the mirror through the exact same
  ``database_predict`` code path the server runs — so the degraded answer
  is byte-identical to what the healthy service would have said.
"""
from __future__ import annotations

import asyncio
import dataclasses
import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.serve import protocol
from repro.serve.aggregator import database_predict
from repro.vm.counters import RunResult


class ServiceUnavailable(ConnectionError):
    """The server could not be reached within the retry budget."""


class ServiceError(RuntimeError):
    """The server answered with ``ok: false``."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How transport failures are retried.

    ``attempts`` counts total tries (first one included); the delay before
    retry ``k`` is ``backoff * multiplier**(k-1)``, capped at
    ``max_backoff``.
    """

    attempts: int = 4
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (one fewer than ``attempts``)."""
        delay = self.backoff
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_backoff)
            delay *= self.multiplier


@dataclasses.dataclass
class Prediction:
    """A served (or locally computed) summary prediction."""

    profile: BranchProfile
    datasets: List[str]
    mode: str
    epoch: Optional[int]
    #: True when the answer came from the offline fallback path.
    degraded: bool = False


class _FallbackMixin:
    """Shared offline-degradation logic (sync and async clients)."""

    fallback: Optional[ProfileDatabase]

    def _mirror_upload(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> None:
        if self.fallback is not None:
            self._mirror_profile(program, dataset, profile)

    def _mirror_profile(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> None:
        # Mirror a *copy*: the fallback database accumulates, and callers
        # keep ownership of the profile they passed in.
        self.fallback.record_profile(
            program, dataset, BranchProfile.from_dict(profile.to_dict())
        )

    def _offline_predict(
        self, program: str, mode: str, exclude: Optional[str]
    ) -> Prediction:
        profile, datasets = database_predict(
            self.fallback, program, mode=mode, exclude=exclude
        )
        return Prediction(
            profile=profile,
            datasets=datasets,
            mode=mode,
            epoch=None,
            degraded=True,
        )


class ProfileClient(_FallbackMixin):
    """Blocking client with connection reuse, timeouts, retries, fallback."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        retry: RetryPolicy = RetryPolicy(),
        fallback: Optional[ProfileDatabase] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.fallback = fallback
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        #: Transport failures seen so far (for tests and observability).
        self.transport_failures = 0
        #: True once a request was served by the offline fallback.
        self.degraded = False

    # -- transport ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ProfileClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, retrying transport failures; returns the
        ``ok`` response payload or raises ``ServiceError`` /
        ``ServiceUnavailable``."""
        delays = self.retry.delays()
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                self._sleep(next(delays))
            try:
                sock = self._connect()
                protocol.write_frame_sync(sock, payload)
                response = protocol.read_frame_sync(sock)
            except (OSError, protocol.ProtocolError) as exc:
                # Covers refused/reset/timeout and torn frames alike; the
                # connection state is unknown, so drop it and retry fresh.
                self.transport_failures += 1
                last_error = exc
                self.close()
                continue
            if not response.get("ok"):
                raise ServiceError(response.get("error", "unspecified error"))
            return response
        raise ServiceUnavailable(
            f"{self.host}:{self.port} unreachable after "
            f"{self.retry.attempts} attempts: {last_error}"
        )

    # -- operations ---------------------------------------------------------

    def upload_profile(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> Optional[int]:
        """Upload one run's counters; returns the server epoch, or ``None``
        when the server was unreachable and the fallback absorbed it."""
        self._mirror_upload(program, dataset, profile)
        try:
            response = self.request(
                protocol.request(
                    "upload",
                    program=program,
                    dataset=dataset,
                    profile=protocol.profile_to_wire(profile),
                )
            )
        except ServiceUnavailable:
            if self.fallback is None:
                raise
            self.degraded = True
            return None
        return response["epoch"]

    def upload_run(self, run: RunResult, dataset: str) -> Optional[int]:
        return self.upload_profile(
            run.program, dataset, BranchProfile.from_run(run)
        )

    def predict(
        self,
        program: str,
        mode: str = "scaled",
        exclude: Optional[str] = None,
    ) -> Prediction:
        try:
            response = self.request(
                protocol.request(
                    "predict", program=program, mode=mode, exclude=exclude
                )
            )
        except ServiceUnavailable:
            if self.fallback is None:
                raise
            self.degraded = True
            return self._offline_predict(program, mode, exclude)
        return Prediction(
            profile=protocol.profile_from_wire(response["profile"]),
            datasets=list(response["datasets"]),
            mode=response["mode"],
            epoch=response["epoch"],
        )

    def stats(self) -> Dict[str, Any]:
        return self.request(protocol.request("stats"))

    def health(self) -> Dict[str, Any]:
        return self.request(protocol.request("health"))

    def publisher(self) -> Callable[[RunResult, str], None]:
        """A ``WorkloadRunner`` publish hook that uploads every run."""

        def publish(run: RunResult, dataset: str) -> None:
            self.upload_run(run, dataset)

        return publish


class AsyncProfileClient(_FallbackMixin):
    """Asyncio client: same retry/degrade contract as ``ProfileClient``."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        retry: RetryPolicy = RetryPolicy(),
        fallback: Optional[ProfileDatabase] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.fallback = fallback
        self._streams: Optional[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = None
        self.transport_failures = 0
        self.degraded = False

    async def _connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._streams is None:
            self._streams = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout,
            )
        return self._streams

    async def close(self) -> None:
        if self._streams is not None:
            _, writer = self._streams
            self._streams = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncProfileClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        delays = self.retry.delays()
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                await asyncio.sleep(next(delays))
            try:
                reader, writer = await self._connect()
                await asyncio.wait_for(
                    protocol.write_frame_async(writer, payload),
                    timeout=self.timeout,
                )
                response = await asyncio.wait_for(
                    protocol.read_frame_async(reader), timeout=self.timeout
                )
                if response is None:
                    raise protocol.ProtocolError("connection closed by server")
            except (
                OSError,
                protocol.ProtocolError,
                asyncio.TimeoutError,
            ) as exc:
                self.transport_failures += 1
                last_error = exc
                await self.close()
                continue
            if not response.get("ok"):
                raise ServiceError(response.get("error", "unspecified error"))
            return response
        raise ServiceUnavailable(
            f"{self.host}:{self.port} unreachable after "
            f"{self.retry.attempts} attempts: {last_error}"
        )

    async def upload_profile(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> Optional[int]:
        self._mirror_upload(program, dataset, profile)
        try:
            response = await self.request(
                protocol.request(
                    "upload",
                    program=program,
                    dataset=dataset,
                    profile=protocol.profile_to_wire(profile),
                )
            )
        except ServiceUnavailable:
            if self.fallback is None:
                raise
            self.degraded = True
            return None
        return response["epoch"]

    async def upload_run(self, run: RunResult, dataset: str) -> Optional[int]:
        return await self.upload_profile(
            run.program, dataset, BranchProfile.from_run(run)
        )

    async def predict(
        self,
        program: str,
        mode: str = "scaled",
        exclude: Optional[str] = None,
    ) -> Prediction:
        try:
            response = await self.request(
                protocol.request(
                    "predict", program=program, mode=mode, exclude=exclude
                )
            )
        except ServiceUnavailable:
            if self.fallback is None:
                raise
            self.degraded = True
            return self._offline_predict(program, mode, exclude)
        return Prediction(
            profile=protocol.profile_from_wire(response["profile"]),
            datasets=list(response["datasets"]),
            mode=response["mode"],
            epoch=response["epoch"],
        )

    async def stats(self) -> Dict[str, Any]:
        return await self.request(protocol.request("stats"))

    async def health(self) -> Dict[str, Any]:
        return await self.request(protocol.request("health"))
