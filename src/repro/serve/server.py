"""The asyncio profile-feedback server.

One ``ProfileServer`` owns an ``Aggregator`` and serves the four protocol
operations over TCP.  Design points:

* **Bounded in-flight work.**  A semaphore caps how many requests are
  being dispatched at once; excess requests queue on the semaphore (and
  ultimately on TCP), so a burst degrades to latency, never to unbounded
  memory.  Queue depth and in-flight counts are exported via metrics.
* **Connection isolation.**  A peer that vanishes mid-frame, sends
  garbage, or claims an oversized frame costs the server exactly that
  connection — the handler catches the ``ProtocolError``, answers it when
  the transport still allows, and closes.  Aggregator mutations happen
  only after a request parses completely, so a broken upload can never
  leave partial state behind.
* **Graceful drain.**  ``stop()`` closes the listening socket, lets every
  in-flight request finish (up to ``drain_timeout``), cancels stragglers,
  then flushes the aggregator's dirty shards to disk.
* **Write-behind persistence.**  A background task flushes dirty shards
  every ``flush_interval`` seconds through a worker thread, so uploads
  never wait on the filesystem.

``ServerThread`` runs the whole thing on a private event loop in a
daemon thread — the harness the sync client tests, benchmarks, and the
blocking CLI lean on.
"""
from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from repro.serve import protocol
from repro.serve.aggregator import Aggregator
from repro.serve.metrics import ServiceMetrics

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7381


class ProfileServer:
    """Asyncio TCP server over one aggregator."""

    def __init__(
        self,
        aggregator: Aggregator,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        max_inflight: int = 64,
        idle_timeout: float = 60.0,
        drain_timeout: float = 5.0,
        flush_interval: float = 1.0,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.aggregator = aggregator
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self.flush_interval = flush_interval
        self.metrics = metrics or ServiceMetrics(ops=list(protocol.OPS))
        self._max_inflight = max_inflight
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()
        self._draining = False
        self._flusher: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is updated with the
        actual port when 0 was requested."""
        self._semaphore = asyncio.Semaphore(self._max_inflight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.aggregator.persist_dir:
            self._flusher = asyncio.ensure_future(self._flush_loop())

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, flush."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            done, pending = await asyncio.wait(
                list(self._handlers), timeout=self.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
        await asyncio.get_running_loop().run_in_executor(
            None, self.aggregator.flush
        )

    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.flush_interval)
            if self.aggregator.dirty_shards():
                await loop.run_in_executor(None, self.aggregator.flush)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self.metrics.connection_opened()
        try:
            while not self._draining:
                try:
                    payload = await asyncio.wait_for(
                        protocol.read_frame_async(reader),
                        timeout=self.idle_timeout,
                    )
                except (
                    protocol.ProtocolError,
                    asyncio.TimeoutError,
                    ConnectionError,
                ):
                    self.metrics.record_protocol_error()
                    break
                if payload is None:
                    break  # clean EOF
                response = await self._serve_request(payload)
                try:
                    await protocol.write_frame_async(writer, response)
                except (ConnectionError, protocol.ProtocolError):
                    self.metrics.record_protocol_error()
                    break
        finally:
            self._handlers.discard(task)
            self.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, payload: Dict) -> Dict:
        op = payload.get("op")
        op_label = op if op in protocol.OPS else "invalid"
        self.metrics.enter_queue()
        async with self._semaphore:
            self.metrics.start_request()
            loop = asyncio.get_running_loop()
            started = loop.time()
            try:
                response = self._dispatch(payload)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(str(exc))
            except (KeyError, ValueError) as exc:
                response = protocol.error_response(str(exc))
            except Exception as exc:  # a bug, but never kill the service
                response = protocol.error_response(
                    f"internal error: {type(exc).__name__}: {exc}"
                )
            finally:
                self.metrics.finish_request()
            self.metrics.record_request(
                op_label, loop.time() - started, error=not response["ok"]
            )
            return response

    # -- operations ---------------------------------------------------------

    def _dispatch(self, payload: Dict) -> Dict:
        protocol.check_version(payload)
        op = payload.get("op")
        if op == "upload":
            return self._op_upload(payload)
        if op == "predict":
            return self._op_predict(payload)
        if op == "stats":
            return self._op_stats()
        if op == "health":
            return self._op_health()
        raise protocol.ProtocolError(
            f"unknown operation {op!r}; this server speaks {protocol.OPS}"
        )

    def _op_upload(self, payload: Dict) -> Dict:
        program = payload.get("program")
        dataset = payload.get("dataset")
        if not isinstance(program, str) or not isinstance(dataset, str):
            raise protocol.ProtocolError(
                "upload needs string 'program' and 'dataset' fields"
            )
        profile = protocol.profile_from_wire(payload.get("profile"))
        epoch = self.aggregator.record_profile(program, dataset, profile)
        return protocol.ok_response(program=program, dataset=dataset, epoch=epoch)

    def _op_predict(self, payload: Dict) -> Dict:
        program = payload.get("program")
        if not isinstance(program, str):
            raise protocol.ProtocolError("predict needs a string 'program'")
        mode = payload.get("mode", "scaled")
        exclude = payload.get("exclude")
        if exclude is not None and not isinstance(exclude, str):
            raise protocol.ProtocolError("'exclude' must be a dataset name or null")
        profile, datasets, epoch = self.aggregator.predict(
            program, mode=mode, exclude=exclude
        )
        return protocol.ok_response(
            program=program,
            mode=mode,
            exclude=exclude,
            datasets=datasets,
            epoch=epoch,
            profile=protocol.profile_to_wire(profile),
        )

    def _op_stats(self) -> Dict:
        return protocol.ok_response(
            stats=self.aggregator.stats(), metrics=self.metrics.snapshot()
        )

    def _op_health(self) -> Dict:
        snapshot = self.metrics.snapshot()
        return protocol.ok_response(
            status="draining" if self._draining else "ok",
            epoch=self.aggregator.epoch,
            inflight=snapshot["queue"]["inflight"],
            uptime_s=snapshot["uptime_s"],
        )


class ServerThread:
    """A ProfileServer on a private event loop in a daemon thread.

    Blocking callers (tests, benchmarks, the sync CLI) start one, talk to
    ``host:port`` with the sync client, and ``stop()`` it — which runs the
    server's graceful drain on its own loop before the thread exits.
    """

    def __init__(self, aggregator: Optional[Aggregator] = None, **kwargs):
        self.server = ProfileServer(
            aggregator or Aggregator(), port=kwargs.pop("port", 0), **kwargs
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
