"""The aggregation core: sharded profile storage with epoch snapshots.

The aggregator is the server's state — ``ProfileDatabase`` shards keyed by
a stable hash of the program name, so unrelated programs never contend on
one lock and persistence writes stay proportional to what actually
changed.  Every mutation advances a global *epoch*; predictions and stats
report the epoch they were computed at, and the write-behind persister
snapshots a shard's JSON form under its lock but does the disk write
outside it (through ``ProfileDatabase.save``'s atomic rename), so uploads
are never blocked on the filesystem.

``database_predict`` is the single implementation of summary prediction
over a database — the server and the client's offline fallback both call
it, which is what makes "served bytes == offline bytes" true by
construction rather than by coincidence.
"""
from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.prediction.combine import COMBINE_MODES, combine_profiles
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.vm.counters import RunResult

DEFAULT_SHARDS = 8

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(name: str) -> int:
    """Stable 64-bit FNV-1a: shard placement must not depend on
    ``PYTHONHASHSEED`` or the process that computes it."""
    value = _FNV_OFFSET
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def database_predict(
    database: ProfileDatabase,
    program: str,
    mode: str = "scaled",
    exclude: Optional[str] = None,
) -> Tuple[BranchProfile, List[str]]:
    """The summary prediction contract over one database.

    Dataset profiles are combined in sorted dataset-name order (the order
    ``ProfileDatabase.datasets`` already guarantees); ``exclude`` drops
    one dataset first — exactly ``leave_one_out`` over the sorted profile
    list.  Returns the combined profile and the dataset names that fed it.
    """
    if mode not in COMBINE_MODES:
        raise ValueError(f"unknown combine mode {mode!r}; use one of {COMBINE_MODES}")
    datasets = database.datasets(program)
    if not datasets:
        raise KeyError(f"no profiles recorded for program {program!r}")
    if exclude is not None:
        if exclude not in datasets:
            raise KeyError(
                f"program {program!r} has no dataset {exclude!r} to exclude"
            )
        datasets = [name for name in datasets if name != exclude]
        if not datasets:
            raise ValueError(
                f"excluding {exclude!r} leaves no datasets for {program!r}"
            )
    profiles = [database.dataset_profile(program, name) for name in datasets]
    return combine_profiles(profiles, mode=mode), datasets


class _Shard:
    __slots__ = ("database", "lock", "dirty")

    def __init__(self) -> None:
        self.database = ProfileDatabase()
        self.lock = threading.RLock()
        self.dirty = False


class Aggregator:
    """Sharded, thread-safe profile storage with write-behind persistence.

    Safe to drive from the asyncio server, worker threads, and the
    benchmark harness alike: every shard operation happens under that
    shard's lock, and the epoch counter under its own.
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        persist_dir: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.persist_dir = persist_dir
        self._shards = [_Shard() for _ in range(shards)]
        self._epoch = 0
        self._epoch_lock = threading.Lock()
        if persist_dir:
            os.makedirs(persist_dir, exist_ok=True)
            self._load()

    # -- sharding -----------------------------------------------------------

    def shard_index(self, program: str) -> int:
        return _fnv1a(program) % len(self._shards)

    def _shard(self, program: str) -> _Shard:
        return self._shards[self.shard_index(program)]

    def _bump_epoch(self) -> int:
        with self._epoch_lock:
            self._epoch += 1
            return self._epoch

    @property
    def epoch(self) -> int:
        with self._epoch_lock:
            return self._epoch

    # -- recording ----------------------------------------------------------

    def record_profile(
        self, program: str, dataset: str, profile: BranchProfile
    ) -> int:
        """Accumulate one uploaded profile; returns the new epoch."""
        shard = self._shard(program)
        with shard.lock:
            shard.database.record_profile(program, dataset, profile)
            shard.dirty = True
        return self._bump_epoch()

    def record_run(self, run: RunResult, dataset: str) -> int:
        """Convenience for in-process callers holding a full RunResult."""
        return self.record_profile(
            run.program, dataset, BranchProfile.from_run(run)
        )

    # -- queries ------------------------------------------------------------

    def predict(
        self,
        program: str,
        mode: str = "scaled",
        exclude: Optional[str] = None,
    ) -> Tuple[BranchProfile, List[str], int]:
        """Summary prediction plus the epoch it was computed at."""
        shard = self._shard(program)
        with shard.lock:
            profile, datasets = database_predict(
                shard.database, program, mode=mode, exclude=exclude
            )
        return profile, datasets, self.epoch

    def programs(self) -> List[str]:
        names: List[str] = []
        for shard in self._shards:
            with shard.lock:
                names.extend(shard.database.programs())
        return sorted(names)

    def datasets(self, program: str) -> List[str]:
        shard = self._shard(program)
        with shard.lock:
            return shard.database.datasets(program)

    def stats(self) -> Dict:
        """A JSON-ready summary of everything recorded."""
        programs = {}
        per_shard = []
        for index, shard in enumerate(self._shards):
            with shard.lock:
                names = shard.database.programs()
                per_shard.append({"programs": len(names), "dirty": shard.dirty})
                for name in names:
                    datasets = {}
                    for dataset in shard.database.datasets(name):
                        profile = shard.database.dataset_profile(name, dataset)
                        datasets[dataset] = {
                            "runs": profile.runs,
                            "branch_sites": len(profile),
                            "total_executed": profile.total_executed,
                        }
                    programs[name] = {"shard": index, "datasets": datasets}
        return {
            "epoch": self.epoch,
            "shards": per_shard,
            "programs": programs,
        }

    # -- persistence --------------------------------------------------------

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.persist_dir, f"shard-{index:02d}.json")

    def _load(self) -> None:
        for index, shard in enumerate(self._shards):
            path = self._shard_path(index)
            if os.path.exists(path):
                shard.database = ProfileDatabase.load(path)

    def flush(self) -> int:
        """Write every dirty shard to disk; returns how many were written.

        The shard lock covers only marking it clean and snapshotting —
        ``ProfileDatabase.save`` writes via a private temp file and an
        atomic rename, so a reader (or a crash) never sees a half-written
        shard.
        """
        if not self.persist_dir:
            return 0
        written = 0
        for index, shard in enumerate(self._shards):
            with shard.lock:
                if not shard.dirty:
                    continue
                snapshot = ProfileDatabase.from_dict(shard.database.to_dict())
                shard.dirty = False
            snapshot.save(self._shard_path(index))
            written += 1
        return written

    def dirty_shards(self) -> int:
        return sum(1 for shard in self._shards if shard.dirty)
