"""repro.serve — the networked profile-feedback service.

The paper's core observation — a scaled sum of *other* runs' profiles
predicts a held-out run nearly as well as self-prediction — is exactly
the contract of a production profile-feedback service: executing
instances upload branch counters, a central aggregator serves summary
predictions back.  This package is that service: an asyncio TCP server
(`server`), a length-prefixed versioned JSON protocol (`protocol`), a
sharded epoch-stamped aggregator with write-behind persistence
(`aggregator`), resilient sync/async clients with offline degradation
(`client`), and observability (`metrics`).  Served predictions are
byte-identical to the offline ``combine_profiles``/``leave_one_out``
path — see docs/SERVE.md for the equivalence argument.
"""
from repro.serve.aggregator import Aggregator, database_predict
from repro.serve.client import (
    AsyncProfileClient,
    Prediction,
    ProfileClient,
    RetryPolicy,
    ServiceError,
    ServiceUnavailable,
)
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_profile_bytes,
)
from repro.serve.server import ProfileServer, ServerThread

__all__ = [
    "Aggregator",
    "AsyncProfileClient",
    "LatencyHistogram",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "Prediction",
    "ProfileClient",
    "ProfileServer",
    "ProtocolError",
    "RetryPolicy",
    "ServerThread",
    "ServiceError",
    "ServiceMetrics",
    "ServiceUnavailable",
    "canonical_profile_bytes",
    "database_predict",
]
