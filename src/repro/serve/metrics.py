"""Service observability: request/error counters, latency histograms,
queue depth.

Everything is in-process and lock-guarded (the server's asyncio loop,
its persistence thread, and test harnesses may all touch it), exported
as one JSON-ready dict through the ``stats`` operation and the
``repro-serve stats --metrics`` dump.  Latencies go into fixed
log-spaced buckets, so percentile estimates are bounded-error and the
export stays O(buckets) no matter how many requests were served.
"""
from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Optional

#: Histogram bucket upper bounds, in seconds (log-spaced 10us..10s, plus
#: a catch-all).  A recorded latency lands in the first bucket whose
#: bound is >= the sample.
LATENCY_BUCKETS = (
    0.00001, 0.0000316, 0.0001, 0.000316, 0.001, 0.00316,
    0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, float("inf"),
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation."""

    def __init__(self) -> None:
        self.counts = [0] * len(LATENCY_BUCKETS)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(LATENCY_BUCKETS, seconds)
        self.counts[min(index, len(self.counts) - 1)] += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, fraction: float) -> Optional[float]:
        """Upper-bound estimate of the given percentile (0 < fraction <= 1);
        ``None`` with no samples.  The top catch-all bucket reports the
        observed maximum instead of infinity."""
        if not self.total:
            return None
        threshold = fraction * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= threshold:
                bound = LATENCY_BUCKETS[index]
                return self.max_seconds if bound == float("inf") else bound
        return self.max_seconds

    def as_dict(self) -> Dict:
        mean = self.sum_seconds / self.total if self.total else None
        return {
            "count": self.total,
            "mean_s": mean,
            "max_s": self.max_seconds if self.total else None,
            "p50_s": self.percentile(0.50),
            "p99_s": self.percentile(0.99),
            "buckets": {
                ("inf" if bound == float("inf") else f"{bound:g}"): count
                for bound, count in zip(LATENCY_BUCKETS, self.counts)
                if count
            },
        }


class ServiceMetrics:
    """Counters and gauges for one server instance."""

    def __init__(self, ops: Optional[List[str]] = None) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.latency: Dict[str, LatencyHistogram] = {}
        self.protocol_errors = 0
        self.connections_opened = 0
        self.connections_closed = 0
        self.inflight = 0
        self.inflight_peak = 0
        self.queued = 0
        self.queued_peak = 0
        for op in ops or ():
            self._ensure(op)

    def _ensure(self, op: str) -> None:
        self.requests.setdefault(op, 0)
        self.errors.setdefault(op, 0)
        self.latency.setdefault(op, LatencyHistogram())

    # -- recording ----------------------------------------------------------

    def record_request(self, op: str, seconds: float, error: bool) -> None:
        with self._lock:
            self._ensure(op)
            self.requests[op] += 1
            if error:
                self.errors[op] += 1
            self.latency[op].observe(seconds)

    def record_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    def enter_queue(self) -> None:
        """A request is waiting on the in-flight semaphore."""
        with self._lock:
            self.queued += 1
            self.queued_peak = max(self.queued_peak, self.queued)

    def start_request(self) -> None:
        """A request acquired an in-flight slot."""
        with self._lock:
            self.queued -= 1
            self.inflight += 1
            self.inflight_peak = max(self.inflight_peak, self.inflight)

    def finish_request(self) -> None:
        with self._lock:
            self.inflight -= 1

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._started,
                "requests": dict(self.requests),
                "errors": dict(self.errors),
                "protocol_errors": self.protocol_errors,
                "connections": {
                    "opened": self.connections_opened,
                    "closed": self.connections_closed,
                    "active": self.connections_opened - self.connections_closed,
                },
                "queue": {
                    "depth": self.queued,
                    "peak": self.queued_peak,
                    "inflight": self.inflight,
                    "inflight_peak": self.inflight_peak,
                },
                "latency": {
                    op: histogram.as_dict()
                    for op, histogram in self.latency.items()
                },
            }
