"""Property-based tests: MF expression semantics against a Python oracle."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_source
from repro.vm.machine import run_program

# -- random expression trees over integer literals ---------------------------

_SAFE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def _c_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


@st.composite
def expressions(draw, depth=0):
    """(source_text, value) pairs for random MF expressions."""
    if depth >= 4 or draw(st.booleans()):
        value = draw(st.integers(min_value=-1000, max_value=1000))
        if value < 0:
            return f"(0 - {-value})", value
        return str(value), value
    kind = draw(st.sampled_from(["bin", "div", "mod", "neg", "not", "cmp"]))
    left_text, left = draw(expressions(depth=depth + 1))
    if kind == "neg":
        return f"(-{left_text})", -left
    if kind == "not":
        return f"(!{left_text})", 0 if left else 1
    right_text, right = draw(expressions(depth=depth + 1))
    if kind == "div":
        if right == 0:
            return left_text, left
        return f"({left_text} / {right_text})", _c_div(left, right)
    if kind == "mod":
        if right == 0:
            return left_text, left
        return (
            f"({left_text} % {right_text})",
            left - _c_div(left, right) * right,
        )
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        import operator

        fn = {
            "<": operator.lt, "<=": operator.le, ">": operator.gt,
            ">=": operator.ge, "==": operator.eq, "!=": operator.ne,
        }[op]
        return f"({left_text} {op} {right_text})", int(fn(left, right))
    op = draw(st.sampled_from(sorted(_SAFE_BINOPS)))
    return f"({left_text} {op} {right_text})", _SAFE_BINOPS[op](left, right)


@given(expressions())
@settings(max_examples=120, deadline=None)
def test_expression_evaluation_matches_oracle(expr):
    text, expected = expr
    # Exit codes are arbitrary ints in the VM, so compare via output bytes.
    source = f"""
    func main() {{
        var v = {text};
        putc(v & 255);
        putc((v >> 8) & 255);
        putc((v >> 16) & 255);
        return 0;
    }}
    """
    result = run_program(compile_source(source).lowered)
    assert result.output == bytes(
        [(expected >> shift) & 255 for shift in (0, 8, 16)]
    )


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_optimization_configs_agree_on_expressions(expr):
    text, _ = expr
    source = f"""
    func main() {{
        var v = {text};
        putc(v & 255);
        return 0;
    }}
    """
    outputs = {
        run_program(compile_source(source, options=options).lowered).output
        for options in (
            CompileOptions.paper_default(),
            CompileOptions.with_dce(),
            CompileOptions.unoptimized(),
            CompileOptions(enable_select=False),
        )
    }
    assert len(outputs) == 1


# -- random loop programs: configs must agree on everything -------------------


@st.composite
def loop_programs(draw):
    """Small deterministic programs with data-dependent branches."""
    bound = draw(st.integers(min_value=1, max_value=30))
    step = draw(st.integers(min_value=1, max_value=4))
    modulus = draw(st.integers(min_value=1, max_value=7))
    threshold = draw(st.integers(min_value=0, max_value=40))
    adjust = draw(st.integers(min_value=-5, max_value=5))
    return f"""
    var total;
    func main() {{
        var i;
        for (i = 0; i < {bound}; i += {step}) {{
            if (i % {modulus} == 0 && i < {threshold}) {{
                total += i + {adjust};
            }} else {{
                total -= 1;
            }}
        }}
        putc(total & 255);
        return 0;
    }}
    """


@given(loop_programs())
@settings(max_examples=60, deadline=None)
def test_optimization_configs_agree_on_loops(source):
    results = [
        run_program(compile_source(source, options=options).lowered)
        for options in (
            CompileOptions.paper_default(),
            CompileOptions.with_dce(),
            CompileOptions.unoptimized(),
        )
    ]
    assert len({result.output for result in results}) == 1
    # Branch counters keyed by BranchId must agree wherever both configs
    # kept the branch (DCE may remove constant branches entirely).
    base = results[0].branch_counts()
    unopt = results[2].branch_counts()
    assert base == unopt


@given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
       st.integers(min_value=-(2 ** 20), max_value=2 ** 20).filter(bool))
@settings(max_examples=80, deadline=None)
def test_division_semantics_match_c(a, b):
    source = f"""
    func main() {{
        var q = ({a}) / ({b});
        var r = ({a}) % ({b});
        var ok1 = q * ({b}) + r == ({a});
        var ok2 = 1;
        if (r != 0) {{
            if (({a}) < 0) {{ ok2 = r < 0; }} else {{ ok2 = r > 0; }}
        }}
        return ok1 * 2 + ok2;
    }}
    """
    result = run_program(compile_source(source).lowered)
    assert result.exit_code == 3  # both invariants hold
