"""Differential testing: random MF programs, reference interpreter vs the
full compile-optimize-lower-execute pipeline, under every configuration.

The reference interpreter (tests/reference_interp.py) walks the AST and
shares nothing with the production pipeline beyond the parser, so agreement
on outputs, exit codes and faults is strong evidence both are right.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_source
from repro.opt import OptOptions
from repro.vm.errors import VMError
from repro.vm.machine import Machine

from tests.reference_interp import ReferenceFault, ReferenceInterpreter

CONFIGS = [
    CompileOptions.paper_default(),
    CompileOptions.with_dce(),
    CompileOptions.unoptimized(),
    CompileOptions(inline=True),
    CompileOptions(opt=OptOptions(if_conversion=True)),
]

# --- program generator ----------------------------------------------------------

_VARS = ["a", "b", "c", "d"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 200)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return f"buf[{draw(st.integers(0, 7))}]"
    kind = draw(
        st.sampled_from(["bin", "cmp", "logic", "not", "neg", "mod", "getc"])
    )
    if kind == "getc":
        return "getc()"
    left = draw(expressions(depth=depth + 1))
    if kind == "not":
        return f"(!{left})"
    if kind == "neg":
        return f"(-{left})"
    right = draw(expressions(depth=depth + 1))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    elif kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    elif kind == "logic":
        op = draw(st.sampled_from(["&&", "||"]))
    else:
        # Guard against division faults: divide by a non-zero literal.
        divisor = draw(st.integers(1, 9))
        op_text = draw(st.sampled_from(["/", "%"]))
        return f"({left} {op_text} {divisor})"
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth, budget):
    """One statement; ``budget`` caps loop trip counts for termination."""
    kind = draw(
        st.sampled_from(
            ["assign", "assign", "array", "if", "if", "while", "for",
             "switch", "putc"]
            if depth < 2
            else ["assign", "array", "putc"]
        )
    )
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        op = draw(st.sampled_from(["=", "+=", "-=", "^=", "&="]))
        return f"{var} {op} {draw(expressions())};"
    if kind == "array":
        return f"buf[{draw(st.integers(0, 7))}] = {draw(expressions())};"
    if kind == "putc":
        return f"putc({draw(expressions())});"
    if kind == "if":
        cond = draw(expressions())
        then_body = draw(blocks(depth + 1, budget))
        if draw(st.booleans()):
            else_body = draw(blocks(depth + 1, budget))
            return f"if ({cond}) {{ {then_body} }} else {{ {else_body} }}"
        return f"if ({cond}) {{ {then_body} }}"
    if kind == "while":
        trips = draw(st.integers(1, budget))
        body = draw(blocks(depth + 1, budget))
        # Bounded loop over a dedicated counter to guarantee termination.
        counter = f"w{depth}"
        return (
            f"{counter} = 0; "
            f"while ({counter} < {trips}) {{ {counter} += 1; {body} }}"
        )
    if kind == "for":
        trips = draw(st.integers(1, budget))
        body = draw(blocks(depth + 1, budget))
        counter = f"f{depth}"
        return f"for ({counter} = 0; {counter} < {trips}; {counter} += 1) {{ {body} }}"
    # switch
    scrutinee = draw(expressions())
    arms = []
    values = draw(
        st.lists(st.integers(0, 6), min_size=1, max_size=3, unique=True)
    )
    for value in values:
        arm_body = draw(blocks(depth + 1, budget))
        terminator = draw(st.sampled_from(["break;", ""]))
        arms.append(f"case {value}: {arm_body} {terminator}")
    if draw(st.booleans()):
        arms.append(f"default: {draw(blocks(depth + 1, budget))}")
    return f"switch ({scrutinee}) {{ {' '.join(arms)} }}"


@st.composite
def blocks(draw, depth, budget=6):
    count = draw(st.integers(1, 3 if depth < 2 else 2))
    return " ".join(draw(statements(depth, budget)) for _ in range(count))


@st.composite
def programs(draw):
    body = draw(blocks(0))
    helper_body = draw(blocks(1))
    return f"""
    var g;
    arr buf[8];
    func helper(a, b) {{
        var c; var d; var w1; var w2; var f1; var f2;
        {helper_body}
        return a + b + c + d;
    }}
    func main() {{
        var a; var b; var c; var d;
        var w0; var w1; var w2; var f0; var f1; var f2;
        {body}
        a = helper(a, b);
        putc(a & 255);
        putc(c & 255);
        putc(d & 255);
        putc(buf[3] & 255);
        return (a ^ b ^ c ^ d) & 127;
    }}
    """


def run_reference(source, data):
    interp = ReferenceInterpreter(source)
    try:
        return interp.run(input_data=data)
    except ReferenceFault as fault:
        return ("fault", str(fault))


def run_pipeline(source, data, options):
    compiled = compile_source(source, options=options)
    machine = Machine(max_instructions=5_000_000)
    try:
        result = machine.run(compiled.lowered, input_data=data)
        return result.exit_code, result.output
    except VMError as fault:
        return ("fault", "vm")


@given(programs(), st.binary(max_size=6))
@settings(max_examples=120, deadline=None)
def test_pipeline_matches_reference_interpreter(source, data):
    expected = run_reference(source, data)
    for options in CONFIGS:
        actual = run_pipeline(source, data, options)
        if isinstance(expected, tuple) and expected[0] == "fault":
            assert isinstance(actual, tuple) and actual[0] == "fault", (
                source, data, expected, actual,
            )
        else:
            assert actual == expected, (source, data, options)


@given(programs(), st.binary(max_size=4))
@settings(max_examples=40, deadline=None)
def test_branch_counts_agree_across_scalar_configs(source, data):
    """Scalar optimizations must not change any branch's (exec, taken).

    Select conversion is held fixed (off) in both configurations: it is a
    front-end control-flow decision that removes ``if (c) x = e;`` branches
    before BranchIds are assigned, so comparing it against the unconverted
    program would diff two legitimately different branch sets.
    """
    default = compile_source(
        source, options=CompileOptions(enable_select=False)
    )
    unopt = compile_source(source, options=CompileOptions.unoptimized())
    machine = Machine(max_instructions=5_000_000)
    try:
        counts_default = machine.run(
            default.lowered, input_data=data
        ).branch_counts()
        counts_unopt = machine.run(
            unopt.lowered, input_data=data
        ).branch_counts()
    except VMError:
        return  # fault paths are covered by the other property
    assert counts_default == counts_unopt
