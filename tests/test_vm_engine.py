"""Differential harness for the predecoded fast-path engine.

The fast engine (repro.vm.engine) must be observably indistinguishable
from the legacy dispatch loop: bit-identical RunResults (instructions,
per-branch exec/taken, events, output, exit code) and identical monitor
callback streams, over both generated programs and every bundled
workload x dataset.  Anything the fast path gets wrong shows up here as
a disagreement with the legacy loop, which stays in the tree precisely
to serve as this oracle.
"""
import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.vm.engine import (
    FUSIBLE_OPS,
    OP_FUSED,
    PredecodedProgram,
    predecode,
)
from repro.vm.errors import VMError
from repro.vm.machine import ENGINES, Machine, run_program
from repro.vm.monitors import BranchMonitor, OutcomeRecorder, RunLengthMonitor
from repro.workloads import registry
from repro.workloads.sourcegen import mf_module


def as_tuple(result):
    return dataclasses.astuple(result)


def lowered(source, name="test"):
    return compile_source(source, name=name).lowered


LOOPY = """
arr table[16];
func helper(n) {
    var i; var acc = 0;
    for (i = 0; i < n; i += 1) {
        if (i % 3 == 0) { acc += table[i % 16]; }
        else { table[i % 16] = acc & 255; }
    }
    return acc;
}
func main() {
    var i; var total = 0;
    for (i = 0; i < 40; i += 1) { total = total + helper(i % 7); }
    putc(total & 255);
    return total & 127;
}
"""


# -- generated-program differential -------------------------------------------


@given(st.integers(0, 100_000), st.binary(max_size=8))
@settings(max_examples=60, deadline=None)
def test_fast_matches_legacy_on_generated_modules(seed, data):
    program = lowered(mf_module(seed), name=f"p{seed}")
    fast = Machine(engine="fast").run(program, input_data=data)
    legacy = Machine(engine="legacy").run(program, input_data=data)
    assert as_tuple(fast) == as_tuple(legacy)


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_monitored_fast_matches_legacy_on_generated_modules(seed):
    program = lowered(mf_module(seed), name=f"p{seed}")
    recorder_fast, recorder_legacy = OutcomeRecorder(), OutcomeRecorder()
    fast = Machine(engine="fast").run(program, monitors=[recorder_fast])
    legacy = Machine(engine="legacy").run(program, monitors=[recorder_legacy])
    assert as_tuple(fast) == as_tuple(legacy)
    assert recorder_fast.outcomes == recorder_legacy.outcomes


# -- bundled-workload differential --------------------------------------------


@pytest.mark.parametrize("workload_name", registry.workload_names())
def test_fast_matches_legacy_on_workload(workload_name):
    """Bit-identical RunResults for every dataset of every bundled workload."""
    workload = registry.get_workload(workload_name)
    program = lowered(workload.source, name=workload_name)
    fast = Machine(engine="fast")
    legacy = Machine(engine="legacy")
    for dataset in workload.datasets:
        fast_result = fast.run(program, input_data=dataset.data)
        legacy_result = legacy.run(program, input_data=dataset.data)
        assert as_tuple(fast_result) == as_tuple(legacy_result), (
            workload_name, dataset.name,
        )


def test_monitored_fast_matches_legacy_on_smallest_workload_runs():
    """Identical monitor callback streams on real workloads (the smallest
    dataset of a few workloads keeps the recorded streams tractable)."""
    for workload_name in ("compress", "li", "eqntott"):
        workload = registry.get_workload(workload_name)
        program = lowered(workload.source, name=workload_name)
        dataset = min(workload.datasets, key=lambda ds: len(ds.data))
        recorder_fast, recorder_legacy = OutcomeRecorder(), OutcomeRecorder()
        fast = Machine(engine="fast").run(
            program, input_data=dataset.data, monitors=[recorder_fast]
        )
        legacy = Machine(engine="legacy").run(
            program, input_data=dataset.data, monitors=[recorder_legacy]
        )
        assert as_tuple(fast) == as_tuple(legacy), (workload_name, dataset.name)
        assert recorder_fast.outcomes == recorder_legacy.outcomes


def test_serial_and_parallel_runs_are_identical(tmp_path):
    """One experiment through the new engine: serial and --jobs 2 runs
    publish byte-identical results."""
    from repro.core.parallel import RunRequest
    from repro.core.runner import WorkloadRunner

    workload = registry.get_workload("compress")
    requests = [
        RunRequest("compress", name) for name in workload.dataset_names()
    ]
    serial = WorkloadRunner(cache_dir=str(tmp_path / "serial"), jobs=1)
    fanout = WorkloadRunner(cache_dir=str(tmp_path / "fanout"), jobs=2)
    serial_results = serial.run_many(requests)
    fanout_results = fanout.run_many(requests)
    assert [as_tuple(r) for r in serial_results] == [
        as_tuple(r) for r in fanout_results
    ]


# -- decode correctness --------------------------------------------------------


def test_predecoded_form_is_cached_on_the_program():
    program = lowered(LOOPY)
    first = predecode(program)
    assert isinstance(first, PredecodedProgram)
    assert predecode(program) is first
    assert program.predecoded is first


def test_fusion_collapses_straight_line_runs():
    program = lowered(LOOPY)
    decoded = predecode(program)
    total_fused = sum(func.fused_ops for func in decoded.functions)
    assert total_fused > 0
    for original, fast in zip(program.functions, decoded.functions):
        assert len(fast.code) <= len(original.code)
        # Decoded instruction counts must add back up to the original.
        expanded = sum(
            ins[2] if ins[0] > OP_FUSED - 1 else 1 for ins in fast.code
        )
        assert expanded == len(original.code)


def test_jump_target_scan_fallback_matches_lowering_metadata():
    """A hand-built function (jump_targets=None) decodes via the scan
    fallback to the same behaviour as the lowering-provided metadata."""
    with_metadata = lowered(LOOPY)
    without_metadata = lowered(LOOPY)
    for func in without_metadata.functions:
        func.jump_targets = None
    expected = Machine(engine="fast").run(with_metadata)
    actual = Machine(engine="fast").run(without_metadata)
    assert as_tuple(expected) == as_tuple(actual)


def test_fusible_ops_have_no_control_flow():
    from repro.ir.opcodes import Opcode

    control = {Opcode.BR, Opcode.JMP, Opcode.CALL, Opcode.ICALL,
               Opcode.RET, Opcode.HALT}
    assert not FUSIBLE_OPS & {int(op) for op in control}


def test_engine_selector():
    program = lowered("func main() { return 41; }")
    assert Machine(engine="legacy").run(program).exit_code == 41
    assert Machine(engine="fast").run(program).exit_code == 41
    assert run_program(program, engine="legacy").exit_code == 41
    assert set(ENGINES) == {"fast", "legacy"}
    with pytest.raises(ValueError, match="engine"):
        Machine(engine="turbo")


def test_faults_are_identical_across_engines():
    bad_store = lowered(
        """
        arr buf[4];
        func main() {
            var i = 0 - 5;
            buf[i] = 1;
            return 0;
        }
        """
    )
    with pytest.raises(VMError, match="store to bad address"):
        Machine(engine="fast").run(bad_store)
    with pytest.raises(VMError, match="store to bad address"):
        Machine(engine="legacy").run(bad_store)

    div_zero = lowered(
        """
        func main() {
            var d = 0;
            return 7 / d;
        }
        """
    )
    with pytest.raises(VMError, match="division by zero"):
        Machine(engine="fast").run(div_zero)
    with pytest.raises(VMError, match="division by zero"):
        Machine(engine="legacy").run(div_zero)


# -- monitor contract regressions ---------------------------------------------


class _ExplodingMonitor(BranchMonitor):
    """A deliberately-broken observer: its own bugs must surface as its
    own exceptions, not as guest-program VM faults."""

    def __init__(self, exc_type):
        self.exc_type = exc_type

    def on_branch(self, branch_index, taken, icount):
        if self.exc_type is ZeroDivisionError:
            _ = 1 // 0
        else:
            _ = [][1]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("exc_type", [ZeroDivisionError, IndexError])
def test_monitor_bugs_are_not_misattributed_to_the_guest(engine, exc_type):
    # Before the fix, the dispatch loop's broad except arms converted a
    # monitor's own ZeroDivisionError/IndexError into a guest VMError
    # ("division by zero" / "bad register or code reference").
    program = lowered(LOOPY)
    machine = Machine(engine=engine)
    with pytest.raises(exc_type) as excinfo:
        machine.run(program, monitors=[_ExplodingMonitor(exc_type)])
    assert not isinstance(excinfo.value, VMError)


@pytest.mark.parametrize("engine", ENGINES)
def test_run_length_monitor_flushes_the_tail_run(engine):
    # Before the fix, instructions executed after the last misprediction
    # were silently dropped, so run lengths never summed to the run's
    # instruction count.
    program = lowered(LOOPY)
    num_branches = len(program.branch_table)
    monitor = RunLengthMonitor([False] * num_branches)
    result = Machine(engine=engine).run(program, monitors=[monitor])
    assert monitor.run_lengths
    assert all(length > 0 for length in monitor.run_lengths)
    assert sum(monitor.run_lengths) == result.instructions


def test_run_length_tail_covers_a_fully_predicted_run():
    # Every branch predicted correctly: the whole run is one tail run.
    program = lowered(
        """
        func main() {
            var i; var acc = 0;
            for (i = 0; i < 10; i += 1) { acc += i; }
            return acc;
        }
        """
    )
    recorder = OutcomeRecorder()
    result = Machine().run(program, monitors=[recorder])
    directions = [None] * len(program.branch_table)
    for index, taken in recorder.outcomes:
        directions[index] = taken
    # Only valid if each branch is monotone in this toy program; the loop
    # branch flips on exit, so predict the majority (taken) and accept
    # one break plus the tail.
    monitor = RunLengthMonitor(
        [bool(direction) for direction in directions]
    )
    rerun = Machine().run(program, monitors=[monitor])
    assert sum(monitor.run_lengths) == rerun.instructions
