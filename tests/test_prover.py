"""Static branch-direction prover tests.

Unit tests pin the prover's verdicts on small programs; the gate tests at
the bottom are the soundness contract: across every workload and dataset,
no branch the prover marks PROVEN_* ever goes the other way — checked both
against cached aggregate counts and live inside a monitored VM run.
"""
import pytest

from repro.analysis.prover import (
    ProofVerdict,
    proof_directions,
    prove_function,
    prove_module,
)
from repro.compiler import CompileOptions, compile_source
from repro.opt.globalconst import constant_globals
from repro.prediction import StaticProofPredictor
from repro.vm.machine import Machine
from repro.vm.monitors import ProofCheckMonitor, ProofViolationError
from repro.workloads.registry import all_workloads


def compiled_program(source):
    return compile_source(source, options=CompileOptions(enable_select=False))


def proofs_of(source, name="main"):
    program = compiled_program(source)
    return prove_function(program.module.function(name))


def verdicts(proofs):
    return [proof.verdict for proof in proofs]


# -- unit verdicts --------------------------------------------------------------


def test_constant_false_condition_proven_fallthrough():
    # The optimizer folds trivially-constant guards away, so route the
    # constant through an opaque-to-folding shape: a global the linker
    # pins.  Simplest stable shape: compare getc() to itself is NOT
    # constant, but `0` surviving as a branch condition is what the
    # generality knobs produce; synthesize it via prove_function on the
    # unoptimized module.
    program = compile_source(
        """
        var knob = 0;
        func main() {
            if (knob) { return 1; }
            return 0;
        }
        """,
        options=CompileOptions(enable_select=False),
    )
    proofs = prove_function(
        program.module.function("main"),
        const_globals=constant_globals(program.module),
    )
    assert [p.verdict for p in proofs] == [ProofVerdict.PROVEN_FALLTHROUGH]
    assert proofs[0].direction is False


def test_constant_true_condition_proven_taken():
    program = compile_source(
        """
        var knob = 3;
        func main() {
            if (knob) { return 1; }
            return 0;
        }
        """,
        options=CompileOptions(enable_select=False),
    )
    proofs = prove_function(
        program.module.function("main"),
        const_globals=constant_globals(program.module),
    )
    assert [p.verdict for p in proofs] == [ProofVerdict.PROVEN_TAKEN]
    assert proofs[0].direction is True


def test_data_dependent_branch_stays_unknown():
    proofs = proofs_of(
        """
        func main() {
            if (getc() > 5) { return 1; }
            return 0;
        }
        """
    )
    assert verdicts(proofs) == [ProofVerdict.UNKNOWN]
    assert proofs[0].direction is None


def test_redundant_guard_proven_by_range_refinement():
    # x > 5 on the taken path makes the inner x > 0 test a tautology.
    proofs = proofs_of(
        """
        func main() {
            var x = getc();
            if (x > 5) {
                if (x > 0) { return 1; }
                return 2;
            }
            return 0;
        }
        """
    )
    by_verdict = {p.verdict: p for p in proofs}
    assert ProofVerdict.PROVEN_TAKEN in by_verdict
    assert ProofVerdict.UNKNOWN in by_verdict  # the outer guard


def test_repeated_truthiness_guard_proven_by_sign_facts():
    # Inside `if (x)`, a second `if (x)` must go the same way unless x is
    # redefined: the sign-facts layer pins the condition register nonzero.
    proofs = proofs_of(
        """
        func main() {
            var x = getc();
            if (x) {
                if (x) { return 1; }
                return 2;
            }
            return 0;
        }
        """
    )
    assert ProofVerdict.PROVEN_TAKEN in verdicts(proofs)


def test_getc_range_discharges_bounds_check():
    # getc() yields [-1, 255]; a < 4096 guard on it can never fail.
    proofs = proofs_of(
        """
        func main() {
            var c = getc();
            if (c < 4096) { return 1; }
            return 0;
        }
        """
    )
    assert verdicts(proofs) == [ProofVerdict.PROVEN_TAKEN]


def test_proofs_carry_loop_context():
    proofs = proofs_of(
        """
        func main() {
            var i = 0; var n = 0;
            while (getc() >= 0) { n = n + 1; }
            return n;
        }
        """
    )
    exits = [p for p in proofs if p.is_loop_exit]
    assert exits and all(p.loop_depth >= 1 for p in exits)


def test_proof_directions_keeps_only_proven():
    program = compiled_program(
        """
        var knob = 0;
        func main() {
            if (knob) { return 1; }
            if (getc()) { return 2; }
            return 0;
        }
        """
    )
    proofs = prove_module(program.module, constant_globals(program.module))
    directions = proof_directions(proofs)
    assert len(proofs) == 2
    assert list(directions.values()) == [False]


# -- the StaticProofPredictor wrapper -------------------------------------------


def test_static_proof_predictor_uses_fallback_for_unknown():
    # The data-dependent branch comes first: were it after the proven-taken
    # knob guard's early return, it would be unreachable (and thus proven
    # fall-through) rather than UNKNOWN.
    program = compiled_program(
        """
        var knob = 3;
        func main() {
            var n = 0;
            if (getc()) { n = 2; }
            if (knob) { n = n + 1; }
            return n;
        }
        """
    )
    predictor = StaticProofPredictor(program.module)
    proven = [p for p in predictor.proofs if p.verdict is ProofVerdict.PROVEN_TAKEN]
    unknown = [p for p in predictor.proofs if p.verdict is ProofVerdict.UNKNOWN]
    assert proven and unknown
    assert predictor.predict(proven[0].branch_id) is True
    assert predictor.is_proven(proven[0].branch_id)
    # Default fallback predicts not-taken for unproven branches.
    assert predictor.predict(unknown[0].branch_id) is False
    assert not predictor.is_proven(unknown[0].branch_id)


# -- the monitor ----------------------------------------------------------------


def test_proof_check_monitor_flags_wrong_direction():
    monitor = ProofCheckMonitor({0: True})
    monitor.on_run_start(1)
    monitor.on_branch(0, True, 10)
    assert monitor.ok and monitor.checked == 1
    monitor.on_branch(0, False, 20)
    assert not monitor.ok
    assert monitor.violations == [(0, True, 20)]


def test_proof_check_monitor_fail_fast_raises():
    monitor = ProofCheckMonitor({0: False}, fail_fast=True)
    monitor.on_run_start(1)
    with pytest.raises(ProofViolationError):
        monitor.on_branch(0, True, 5)


# -- soundness gates over the real workloads ------------------------------------


def _proven_directions(runner, workload_name):
    compiled = runner.compiled(workload_name)
    proofs = prove_module(compiled.module, constant_globals(compiled.module))
    return compiled, proof_directions(proofs)


def test_no_proven_branch_mispredicts_in_aggregate_counts(runner):
    """Gate: proofs hold on every workload x dataset (cached counts)."""
    checked = 0
    for workload in all_workloads():
        _, directions = _proven_directions(runner, workload.name)
        if not directions:
            continue
        for dataset in workload.dataset_names():
            result = runner.run(workload.name, dataset)
            for branch_id, (executed, taken) in result.branch_counts().items():
                expected = directions.get(branch_id)
                if expected is None:
                    continue
                checked += executed
                mispredicts = (executed - taken) if expected else taken
                assert mispredicts == 0, (
                    f"proven branch {branch_id} mispredicted "
                    f"{mispredicts}/{executed} times on "
                    f"{workload.name}/{dataset}"
                )
    assert checked > 0  # the gate must actually be exercising proofs


def test_no_proven_branch_mispredicts_in_monitored_run(runner):
    """Gate: proofs hold live, inside a monitored VM run.

    Workloads with no proven branches contribute nothing to this check
    (the monitor would observe an empty direction map), so only workloads
    with at least one proof pay the uncached monitored execution.
    """
    checked = 0
    for workload in all_workloads():
        compiled, directions = _proven_directions(runner, workload.name)
        if not directions:
            continue
        by_index = {
            compiled.lowered.branch_index_of(branch_id): direction
            for branch_id, direction in directions.items()
        }
        for dataset_name in workload.dataset_names():
            monitor = ProofCheckMonitor(by_index)
            dataset = workload.dataset(dataset_name)
            Machine().run(
                compiled.lowered,
                input_data=dataset.data,
                monitors=[monitor],
            )
            assert monitor.ok, (
                f"{workload.name}/{dataset_name}: proven branches "
                f"mispredicted: "
                + ", ".join(
                    f"branch {index} (expected "
                    f"{'taken' if expected else 'fall-through'}) "
                    f"at icount={icount}"
                    for index, expected, icount in monitor.violations[:5]
                )
            )
            checked += monitor.checked
    assert checked > 0
