"""Semantic analysis tests."""
import pytest

from repro.lang.errors import LangError
from repro.lang.parser import parse_source
from repro.lang.sema import analyze


def analyze_source(source):
    return analyze(parse_source(source))


def test_missing_main_raises():
    with pytest.raises(LangError, match="main"):
        analyze_source("func f() { }")


def test_main_with_params_raises():
    with pytest.raises(LangError, match="main"):
        analyze_source("func main(x) { }")


def test_undefined_variable_raises():
    with pytest.raises(LangError, match="undefined"):
        analyze_source("func main() { var x = y; }")


def test_duplicate_local_raises():
    with pytest.raises(LangError, match="duplicate"):
        analyze_source("func main() { var x; var x; }")


def test_local_declared_in_nested_block_is_function_scoped():
    info = analyze_source("func main() { if (1) { var x = 1; } }")
    assert "x" in info.locals_by_function["main"]


def test_duplicate_local_across_blocks_raises():
    with pytest.raises(LangError, match="duplicate"):
        analyze_source("func main() { if (1) { var x; } else { var x; } }")


def test_duplicate_global_raises():
    with pytest.raises(LangError, match="duplicate"):
        analyze_source("var g; arr g[4]; func main() { }")


def test_function_shadowing_global_raises():
    with pytest.raises(LangError, match="duplicate"):
        analyze_source("var f; func f() { } func main() { }")


def test_call_arity_checked():
    with pytest.raises(LangError, match="args"):
        analyze_source("func f(a, b) { } func main() { f(1); }")


def test_builtin_arity_checked():
    with pytest.raises(LangError, match="args"):
        analyze_source("func main() { putc(1, 2); }")


def test_call_through_variable_is_allowed():
    info = analyze_source("func f() { } func main() { var g = &f; g(); }")
    assert info.functions["f"] == 0


def test_call_to_unknown_name_raises():
    with pytest.raises(LangError, match="undefined function"):
        analyze_source("func main() { nosuch(); }")


def test_array_used_as_scalar_raises():
    with pytest.raises(LangError, match="used as a value"):
        analyze_source("arr a[4]; func main() { var x = a; }")


def test_scalar_indexed_raises():
    with pytest.raises(LangError, match="not an array"):
        analyze_source("var g; func main() { var x = g[0]; }")


def test_assign_to_array_name_raises():
    with pytest.raises(LangError, match="directly"):
        analyze_source("arr a[4]; func main() { a = 3; }")


def test_function_used_as_value_raises():
    with pytest.raises(LangError, match="used as a value"):
        analyze_source("func f() { } func main() { var x = f; }")


def test_funcref_to_variable_raises():
    with pytest.raises(LangError, match="non-function"):
        analyze_source("var g; func main() { var x = &g; }")


def test_break_outside_loop_raises():
    with pytest.raises(LangError, match="break"):
        analyze_source("func main() { break; }")


def test_continue_outside_loop_raises():
    with pytest.raises(LangError, match="continue"):
        analyze_source("func main() { continue; }")


def test_continue_inside_switch_only_raises():
    with pytest.raises(LangError, match="continue"):
        analyze_source("func main() { switch (1) { case 1: continue; } }")


def test_break_inside_switch_is_allowed():
    analyze_source("func main() { switch (1) { case 1: break; } }")


def test_duplicate_case_values_raise():
    with pytest.raises(LangError, match="duplicate case"):
        analyze_source(
            "func main() { switch (1) { case 1: break; case 1: break; } }"
        )


def test_locals_include_params_first():
    info = analyze_source("func f(a, b) { var c; } func main() { }")
    assert info.locals_by_function["f"] == ["a", "b", "c"]
