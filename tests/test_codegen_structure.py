"""Codegen structure tests: the lowering decisions the paper depends on."""
from repro.compiler import compile_source
from repro.ir import BinOp, Opcode
from repro.ir.printer import format_function

from tests.helpers import compile_and_run


def branch_count(source, func="main", **kwargs):
    program = compile_source(source, **kwargs)
    return sum(
        1
        for instr in program.module.function(func).instructions()
        if instr.op == Opcode.BR
    )


def test_short_circuit_and_produces_two_branches():
    # Each && operand is its own conditional branch (cascade).
    source = "func main() { if (getc() > 0 && getc() > 1) { return 1; } return 0; }"
    assert branch_count(source) == 2


def test_short_circuit_chain_produces_n_branches():
    source = """
    func main() {
        if (getc() > 0 && getc() > 1 && getc() > 2 || getc() > 3) {
            return 1;
        }
        return 0;
    }
    """
    assert branch_count(source) == 4


def test_not_flips_branch_without_extra_instruction():
    positive = "func main() { if (getc() > 0) { return 1; } return 0; }"
    negated = "func main() { if (!(getc() > 0)) { return 1; } return 0; }"
    assert branch_count(positive) == branch_count(negated) == 1
    # The negated form takes the opposite direction on the same input.
    assert compile_and_run(positive, input_data=b"a").exit_code == 1
    assert compile_and_run(negated, input_data=b"a").exit_code == 0


def test_constant_condition_emits_no_branch():
    source = "func main() { while (1) { return 7; } return 0; }"
    assert branch_count(source) == 0
    assert compile_and_run(source).exit_code == 7


def test_switch_cascade_one_branch_per_case_value():
    source = """
    func main() {
        switch (getc()) {
        case 1: return 1;
        case 2, 3: return 2;
        case 9: return 3;
        default: return 0;
        }
    }
    """
    # Values 1, 2, 3, 9: four cascaded equality branches.
    assert branch_count(source) == 4


def test_while_loop_branch_is_at_the_top():
    source = "func main() { var i = 0; while (i < 3) { i += 1; } return i; }"
    result = compile_and_run(source)
    (executed, taken), = result.branch_counts().values()
    assert (executed, taken) == (4, 3)  # 3 iterations + failing test


def test_do_while_branch_is_at_the_bottom():
    source = "func main() { var i = 0; do { i += 1; } while (i < 3); return i; }"
    result = compile_and_run(source)
    (executed, taken), = result.branch_counts().values()
    assert (executed, taken) == (3, 2)  # tested once per iteration


def test_branch_ids_are_in_source_order():
    source = """
    func main() {
        if (getc() > 0) { }
        if (getc() > 1) { }
        while (getc() > 2) { }
        return 0;
    }
    """
    program = compile_source(source)
    branches = [
        instr.branch_id
        for instr in program.module.function("main").instructions()
        if instr.op == Opcode.BR
    ]
    assert [bid.index for bid in sorted(branches)] == [0, 1, 2]


def test_global_compound_assignment_reads_then_writes():
    source = """
    var total = 5;
    func main() { total += 3; total *= 2; return total; }
    """
    assert compile_and_run(source).exit_code == 16


def test_select_instruction_appears_for_simple_if():
    source = """
    func main() {
        var best = 0;
        var c = getc();
        if (c > best) { best = c; }
        return best;
    }
    """
    program = compile_source(source)
    text = format_function(program.module.function("main"))
    assert "select" in text
    assert compile_and_run(source, input_data=b"A").exit_code == 65


def test_unreachable_code_after_return_generates_no_executed_ops():
    source = """
    func main() {
        return 5;
        putc(1);
        putc(2);
    }
    """
    result = compile_and_run(source)
    assert result.exit_code == 5
    assert result.output == b""


def test_bool_value_materialization():
    source = "func main() { var v = getc() > 0 && getc() > 0; return v; }"
    assert compile_and_run(source, input_data=b"ab").exit_code == 1
    assert compile_and_run(source, input_data=b"").exit_code == 0


def test_cascaded_comparison_operators_fold_to_flags():
    program = compile_source("func main() { return getc() <= 10; }")
    subops = [
        instr.subop
        for instr in program.module.function("main").instructions()
        if instr.op == Opcode.BIN
    ]
    assert int(BinOp.LE) in subops
