"""Shared fixtures.

The session-scoped runner uses the repository's on-disk run cache
(.repro-cache), so the expensive workload simulations happen once per
machine, not once per test run.
"""
import pytest

from repro.core.runner import WorkloadRunner


@pytest.fixture(scope="session")
def runner():
    return WorkloadRunner()
