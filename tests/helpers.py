"""Shared test helpers."""
from __future__ import annotations

from typing import Optional

from repro.compiler import CompiledProgram, CompileOptions, compile_source
from repro.vm.counters import RunResult
from repro.vm.machine import run_program


def compile_and_run(
    source: str,
    input_data: bytes = b"",
    options: Optional[CompileOptions] = None,
    name: str = "test",
) -> RunResult:
    """Compile MF source and run it, returning the RunResult."""
    program = compile_source(source, name=name, options=options)
    return run_program(program.lowered, input_data=input_data)


def run_main(source: str, input_data: bytes = b"", **kwargs) -> int:
    """Compile, run, and return main's exit code."""
    return compile_and_run(source, input_data=input_data, **kwargs).exit_code


def compile_only(source: str, name: str = "test", **kwargs) -> CompiledProgram:
    """Compile MF source without running it."""
    return compile_source(source, name=name, **kwargs)
