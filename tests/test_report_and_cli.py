"""Report rendering and CLI tests."""
import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.report import TextTable, format_number, percent


class TestTextTable:
    def test_basic_rendering(self):
        table = TextTable("Title", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 22)
        text = table.format_text()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "=" * len("Title")
        assert "alpha" in lines[4]
        # Numeric columns are right-aligned.
        assert lines[4].index("1.5") > lines[4].index("alpha")

    def test_float_formatting(self):
        table = TextTable("T", ["a"])
        table.add_row(3.14159)
        assert "3.1" in table.format_text()

    def test_none_renders_dash(self):
        table = TextTable("T", ["a", "b"])
        table.add_row("x", None)
        assert "-" in table.format_text().splitlines()[-1]

    def test_notes_are_appended(self):
        table = TextTable("T", ["a"])
        table.add_row("x")
        table.add_note("hello")
        assert table.format_text().endswith("note: hello")

    def test_column_widths_track_longest_cell(self):
        table = TextTable("T", ["a", "b"])
        table.add_row("short", "very-long-cell-content")
        header_line = table.format_text().splitlines()[2]
        row_line = table.format_text().splitlines()[4]
        assert len(header_line) <= len(row_line)


def test_format_number():
    assert format_number(1.234) == "1.2"
    assert format_number(1.234, digits=3) == "1.234"
    assert format_number(None) == "-"


def test_percent():
    assert percent(0.5) == "50.0%"
    assert percent(1.0) == "100.0%"


class TestCli:
    def test_single_experiment(self, capsys):
        assert cli_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "spice2g6" in out

    def test_table3_uses_cache(self, capsys, runner):
        # The session runner has already warmed the on-disk cache, so the
        # CLI (a fresh runner) serves from disk.
        assert cli_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "tomcatv" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["nonesuch"])
