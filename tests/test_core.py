"""Core runner and cross-dataset experiment machinery tests."""
import pytest

from repro.core.cache import (
    DiskCache,
    run_digest,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.core.experiment import CrossDatasetExperiment
from repro.core.runner import WorkloadRunner


def test_run_results_are_memoized_in_process(runner):
    first = runner.run("lfk", "default")
    second = runner.run("lfk", "default")
    assert first is second


def test_disk_cache_round_trip(tmp_path, runner):
    result = runner.run("lfk", "default")
    cache = DiskCache(str(tmp_path))
    cache.store("abc", result)
    loaded = cache.load("abc")
    assert loaded is not None
    assert loaded.instructions == result.instructions
    assert loaded.branch_exec == result.branch_exec
    assert loaded.branch_table == result.branch_table
    assert loaded.output == result.output


def test_disk_cache_miss_and_corrupt_entry(tmp_path):
    cache = DiskCache(str(tmp_path))
    assert cache.load("missing") is None
    (tmp_path / "bad.json").write_text("{not json")
    assert cache.load("bad") is None


def test_disk_cache_disabled():
    cache = DiskCache(None)
    assert cache.load("x") is None
    cache.store("x", None)  # no-op, must not raise


def test_run_result_serialization_is_lossless(runner):
    result = runner.run("doduc", "tiny")
    restored = run_result_from_dict(run_result_to_dict(result))
    assert restored.program == result.program
    assert restored.instructions == result.instructions
    assert restored.branch_taken == result.branch_taken
    assert restored.events == result.events
    assert restored.exit_code == result.exit_code


def test_run_config_tag_is_injective_over_flags():
    # run_digest keys on tag() while in-memory memoization keys on the
    # dataclass itself; injectivity keeps the two keyspaces aligned.
    import itertools

    from repro.core.runner import RunConfig

    configs = [
        RunConfig(dce=dce, inline=inline, if_conversion=ifconv)
        for dce, inline, ifconv in itertools.product((False, True), repeat=3)
    ]
    assert len({config.tag() for config in configs}) == len(configs)
    assert len(set(configs)) == len(configs)


def test_disk_cache_hit_equals_fresh_execution(tmp_path):
    first = WorkloadRunner(cache_dir=str(tmp_path)).run("doduc", "tiny")
    fresh = WorkloadRunner(cache_dir=None).run("doduc", "tiny")
    cached = WorkloadRunner(cache_dir=str(tmp_path)).run("doduc", "tiny")
    assert run_result_to_dict(cached) == run_result_to_dict(first)
    assert run_result_to_dict(cached) == run_result_to_dict(fresh)


def test_run_digest_sensitivity():
    base = run_digest("src", b"input", "dce=False")
    assert run_digest("src2", b"input", "dce=False") != base
    assert run_digest("src", b"input2", "dce=False") != base
    assert run_digest("src", b"input", "dce=True") != base
    assert run_digest("src", b"input", "dce=False") == base


def test_run_digest_is_injective_across_field_boundaries():
    # Mirrors the RunConfig.tag() injectivity test: without length
    # prefixes, content containing the old '|' separator could shift
    # across field boundaries and serve the wrong cached run.
    assert run_digest("x|y", b"z", "cfg") != run_digest("x", b"y|z", "cfg")
    assert run_digest("s", b"in", "c|") != run_digest("|s", b"in", "c")
    assert run_digest("c|", b"", "") != run_digest("c", b"", "|")
    assert run_digest("", b"a", "b") != run_digest("b", b"a", "")
    # Digits migrating between a field and its length prefix must differ.
    assert run_digest("1", b"", "") != run_digest("", b"1", "")


def test_disk_cache_store_is_safe_under_concurrent_writers(tmp_path, runner):
    # Two parallel workers storing the same digest used to share one
    # "<digest>.json.tmp" path, interleaving writes and racing the final
    # rename; per-writer temp files make every store atomic.
    import json
    import threading

    result = runner.run("lfk", "default")
    cache = DiskCache(str(tmp_path))
    errors = []

    def hammer():
        try:
            for _ in range(50):
                cache.store("shared", result)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    loaded = cache.load("shared")
    assert loaded is not None
    assert run_result_to_dict(loaded) == run_result_to_dict(result)
    # The entry parses as clean JSON (no interleaved writes) and no
    # orphaned temp files survive.
    with open(tmp_path / "shared.json") as handle:
        json.load(handle)
    assert [p.name for p in tmp_path.glob("*.tmp")] == []


def test_disk_cache_used_across_runner_instances(tmp_path):
    first = WorkloadRunner(cache_dir=str(tmp_path))
    result = first.run("lfk", "default")
    # A fresh runner with the same cache dir must load, not re-simulate.
    second = WorkloadRunner(cache_dir=str(tmp_path))
    from repro.core.runner import RunConfig

    digest = run_digest(
        second.workload("lfk").source,
        second.workload("lfk").dataset("default").data,
        RunConfig().tag(),
    )
    assert second._disk.load(digest) is not None
    reloaded = second.run("lfk", "default")
    assert reloaded.instructions == result.instructions


def test_runner_profile_matches_run(runner):
    result = runner.run("doduc", "tiny")
    profile = runner.profile("doduc", "tiny")
    assert profile.total_executed == float(result.total_branch_execs)
    assert profile.total_taken == float(result.total_branch_taken)


def test_monitored_runs_bypass_cache(runner):
    from repro.vm.monitors import OnlinePredictorMonitor

    monitor = OnlinePredictorMonitor(num_bits=2)
    result = runner.run("lfk", "default", monitors=[monitor])
    assert monitor.hits + monitor.misses == result.total_branch_execs


class TestCrossDatasetExperiment:
    @pytest.fixture(scope="class")
    def doduc(self, runner):
        return CrossDatasetExperiment(runner, "doduc")

    def test_dataset_names(self, doduc):
        assert doduc.dataset_names() == ["tiny", "small", "ref"]

    def test_self_prediction_is_upper_bound(self, doduc):
        for target in doduc.dataset_names():
            self_ipb = doduc.ipb(target, doduc.self_predictor(target))
            for other in doduc.dataset_names():
                if other == target:
                    continue
                cross = doduc.ipb(target, doduc.single_predictor(other))
                assert cross <= self_ipb + 1e-9

    def test_combined_predictor_excludes_target(self, doduc):
        predictor = doduc.combined_predictor("tiny")
        # Its profile totals must equal the sum of the scaled others: each
        # dataset contributes weight 1 after scaling.
        assert predictor.profile.total_executed == pytest.approx(2.0)

    def test_dataset_prediction_fields(self, doduc):
        prediction = doduc.dataset_prediction("ref")
        assert prediction.workload == "doduc"
        assert prediction.ipb_self >= prediction.ipb_combined > 0
        assert 0 < prediction.combined_fraction_of_self <= 1.0
        assert prediction.ipb_unpredicted < prediction.ipb_combined

    def test_best_worst_bounds(self, doduc):
        for target in doduc.dataset_names():
            best_worst = doduc.best_worst(target)
            assert best_worst.worst_percent <= best_worst.best_percent
            assert best_worst.best_percent <= 100.0 + 1e-9
            assert best_worst.best_other != target
            assert best_worst.worst_other != target

    def test_pairwise_matrix_diagonal_is_self(self, doduc):
        matrix = doduc.pairwise_matrix()
        for target in doduc.dataset_names():
            self_ipb = doduc.ipb(target, doduc.self_predictor(target))
            assert matrix[(target, target)] == pytest.approx(self_ipb)

    def test_best_worst_requires_multiple_datasets(self, runner):
        experiment = CrossDatasetExperiment(runner, "lfk")
        with pytest.raises(ValueError, match="2\\+ datasets"):
            experiment.best_worst("default")
