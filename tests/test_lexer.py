"""Lexer unit tests."""
import pytest

from repro.lang.errors import LangError
from repro.lang.lexer import tokenize


def kinds(source):
    tokens, _ = tokenize(source)
    return [t.kind for t in tokens]


def values(source):
    tokens, _ = tokenize(source)
    return [t.value for t in tokens[:-1]]  # drop eof


def test_empty_source_yields_only_eof():
    tokens, directives = tokenize("")
    assert [t.kind for t in tokens] == ["eof"]
    assert directives == []


def test_integers_and_identifiers():
    assert values("abc 123 x9_ 0") == ["abc", 123, "x9_", 0]


def test_hex_literals():
    assert values("0x10 0xff 0XAB") == [16, 255, 171]


def test_malformed_hex_raises():
    with pytest.raises(LangError):
        tokenize("0x")


def test_keywords_are_classified():
    tokens, _ = tokenize("if while var foo func")
    assert [t.kind for t in tokens[:-1]] == [
        "keyword", "keyword", "keyword", "ident", "keyword",
    ]


def test_char_literals():
    assert values("'a' '0' '\\n' '\\t' '\\\\' '\\''") == [97, 48, 10, 9, 92, 39]


def test_unterminated_char_literal_raises():
    with pytest.raises(LangError):
        tokenize("'a")


def test_bad_escape_raises():
    with pytest.raises(LangError):
        tokenize("'\\q'")


def test_multichar_operators_lex_greedily():
    assert values("a<<=b") == ["a", "<<=", "b"]
    assert values("a<<b") == ["a", "<<", "b"]
    assert values("a<=b==c&&d") == ["a", "<=", "b", "==", "c", "&&", "d"]


def test_line_comment_is_skipped():
    assert values("a // comment\n b") == ["a", "b"]


def test_block_comment_is_skipped_and_lines_tracked():
    tokens, _ = tokenize("a /* one\ntwo */ b")
    assert [t.value for t in tokens[:-1]] == ["a", "b"]
    assert tokens[1].line == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(LangError):
        tokenize("a /* never ends")


def test_directive_comments_are_collected():
    _, directives = tokenize("//!MF! IFPROB(main, 0, 10, 3)\nvar x;")
    assert directives == ["IFPROB(main, 0, 10, 3)"]


def test_plain_comments_are_not_directives():
    _, directives = tokenize("// IFPROB(main, 0, 10, 3)\n")
    assert directives == []


def test_unexpected_character_raises_with_position():
    with pytest.raises(LangError) as excinfo:
        tokenize("var $x;")
    assert "line 1" in str(excinfo.value)


def test_line_and_column_tracking():
    tokens, _ = tokenize("ab\n  cd")
    assert tokens[0].line == 1 and tokens[0].col == 1
    assert tokens[1].line == 2 and tokens[1].col == 3
