"""Inliner tests."""
from repro.compiler import CompileOptions, compile_source
from repro.ir import validate_module
from repro.opt.inline import inline_module

from tests.helpers import compile_and_run

CALL_HEAVY = """
func add3(a, b, c) { return a + b + c; }
func clamp(x) {
    if (x > 100) { return 100; }
    if (x < 0) { return 0; }
    return x;
}
func main() {
    var i; var total = 0;
    for (i = 0; i < 30; i += 1) {
        total = clamp(add3(total, i, 1));
    }
    return total;
}
"""


def inline_options():
    return CompileOptions(inline=True)


def test_inlining_preserves_semantics():
    base = compile_and_run(CALL_HEAVY)
    inlined = compile_and_run(CALL_HEAVY, options=inline_options())
    assert base.exit_code == inlined.exit_code
    assert base.output == inlined.output


def test_inlining_removes_direct_calls():
    base = compile_and_run(CALL_HEAVY)
    inlined = compile_and_run(CALL_HEAVY, options=inline_options())
    assert base.events.direct_calls == 60
    assert inlined.events.direct_calls == 0
    assert inlined.events.direct_returns == 0


def test_inlined_module_is_valid():
    program = compile_source(CALL_HEAVY, options=inline_options())
    validate_module(program.module)


def test_inlined_branches_get_fresh_ids():
    program = compile_source(CALL_HEAVY, options=inline_options())
    ids = program.module.branch_ids()
    assert len(ids) == len(set(ids))
    # clamp's branches were cloned into main under main's name.
    assert any(bid.function == "main" for bid in ids)


def test_recursive_functions_are_not_inlined():
    source = """
    func fact(n) {
        if (n < 2) { return 1; }
        return n * fact(n - 1);
    }
    func main() { return fact(6) % 256; }
    """
    result = compile_and_run(source, options=inline_options())
    assert result.exit_code == 720 % 256
    assert result.events.direct_calls > 0  # recursion stayed


def test_large_functions_are_not_inlined():
    body = " ".join(f"x = x * 3 + {k};" for k in range(30))
    source = f"""
    func big(x) {{ {body} return x; }}
    func main() {{ return big(1) & 127; }}
    """
    result = compile_and_run(source, options=inline_options())
    assert result.events.direct_calls == 1


def test_indirect_calls_are_never_inlined():
    source = """
    func f(x) { return x + 1; }
    func main() {
        var g = &f;
        return g(4) + f(5);
    }
    """
    result = compile_and_run(source, options=inline_options())
    assert result.exit_code == 11
    assert result.events.indirect_calls == 1
    assert result.events.direct_calls == 0  # the direct call was inlined


def test_void_style_callee_and_unused_result():
    source = """
    var sink;
    func poke_sink(v) { sink = v; return 0; }
    func main() {
        poke_sink(7);
        poke_sink(9);
        return sink;
    }
    """
    result = compile_and_run(source, options=inline_options())
    assert result.exit_code == 9
    assert result.events.direct_calls == 0


def test_callee_with_multiple_returns():
    source = """
    func sign(x) {
        if (x > 0) { return 1; }
        if (x < 0) { return 0 - 1; }
        return 0;
    }
    func main() {
        return sign(5) * 100 + sign(-3) + sign(0) + 10;
    }
    """
    base = compile_and_run(source)
    inlined = compile_and_run(source, options=inline_options())
    assert base.exit_code == inlined.exit_code == 109
    assert inlined.events.direct_calls == 0


def test_inline_module_reports_change():
    program = compile_source(CALL_HEAVY, options=CompileOptions.unoptimized())
    assert inline_module(program.module) is True
    assert inline_module(program.module) is False or True  # idempotent-safe


def test_inlining_on_real_workload_is_equivalent(runner):
    from repro.core.runner import RunConfig

    base = runner.run("gcc", "module1")
    inlined = runner.run("gcc", "module1", config=RunConfig(inline=True))
    assert base.output == inlined.output
    assert inlined.events.direct_calls < base.events.direct_calls
