"""IR lint suite tests: each rule on crafted IR, plus the pipeline sanitizer.

The first half pins every rule's trigger on hand-built CFGs; the second
half is the integration contract: all real workloads are lint-error-free,
``optimize_module(..., sanitize=True)`` stays quiet on clean input, and an
intentionally broken pass is caught *by name*.
"""
import pytest

from repro.analysis.lint import (
    ERROR,
    INFO,
    WARNING,
    format_findings,
    lint_errors,
    lint_function,
    severity_counts,
)
from repro.compiler import CompileOptions, compile_source
from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import Opcode
from repro.opt import pipeline
from repro.opt.pipeline import PipelineSanityError, optimize_module
from repro.workloads.registry import all_workloads


def rules_of(findings):
    return {finding.rule for finding in findings}


def _br(cond, then_label, else_label, index=0):
    return Instr(
        Opcode.BR,
        a=cond,
        then_label=then_label,
        else_label=else_label,
        branch_id=BranchId("main", index),
    )


# -- one test per rule ----------------------------------------------------------


def test_use_before_def_fires_on_one_armed_init():
    func = Function(name="main", num_params=1, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [_br(0, "t", "join")]),
        BasicBlock("t", [Instr(Opcode.CONST, dst=1, imm=1),
                         Instr(Opcode.JMP, then_label="join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=1)]),
    ]
    findings = lint_function(func, min_severity=ERROR)
    assert rules_of(findings) == {"use-before-def"}
    assert all(finding.severity == ERROR for finding in findings)


def test_register_width_fires_on_out_of_range_register():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=5, imm=0),
                             Instr(Opcode.RET, a=5)]),
    ]
    findings = lint_function(func, min_severity=ERROR)
    assert "register-width" in rules_of(findings)
    assert any("r5" in finding.message for finding in findings)


def test_dead_store_fires_on_unused_definition():
    func = Function(name="main", num_params=0, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=7),
                             Instr(Opcode.CONST, dst=1, imm=0),
                             Instr(Opcode.RET, a=1)]),
    ]
    findings = lint_function(func, min_severity=WARNING)
    dead = [f for f in findings if f.rule == "dead-store"]
    assert len(dead) == 1
    assert "r0" in dead[0].message


def test_degenerate_branch_fires_on_identical_targets():
    func = Function(name="main", num_params=1, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [_br(0, "join", "join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=0)]),
    ]
    findings = lint_function(func, min_severity=WARNING)
    assert "degenerate-branch" in rules_of(findings)


def test_unreachable_block_fires_on_orphan():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=0),
                             Instr(Opcode.RET, a=0)]),
        BasicBlock("orphan", [Instr(Opcode.RET, a=0)]),
    ]
    findings = lint_function(func, min_severity=INFO)
    orphaned = [f for f in findings if f.rule == "unreachable-block"]
    assert [f.label for f in orphaned] == ["orphan"]


def test_critical_edge_fires_on_branch_into_join():
    # entry has two successors; join has two predecessors; the direct
    # entry -> join edge is critical.
    func = Function(name="main", num_params=1, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [_br(0, "t", "join")]),
        BasicBlock("t", [Instr(Opcode.JMP, then_label="join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=0)]),
    ]
    findings = lint_function(func, min_severity=INFO)
    critical = [f for f in findings if f.rule == "critical-edge"]
    assert len(critical) == 1
    assert critical[0].label == "entry"


def test_severity_filter_and_formatting():
    func = Function(name="main", num_params=1, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [_br(0, "join", "join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=0)]),
        BasicBlock("orphan", [Instr(Opcode.RET, a=0)]),
    ]
    infos = lint_function(func, min_severity=INFO)
    warnings = lint_function(func, min_severity=WARNING)
    assert rules_of(infos) == {"degenerate-branch", "unreachable-block"}
    assert rules_of(warnings) == {"degenerate-branch"}
    counts = severity_counts(infos)
    assert counts[WARNING] == 1 and counts[INFO] == 1
    text = format_findings(infos)
    assert "degenerate-branch" in text and "unreachable-block" in text
    assert str(infos[0]).startswith("warning: [degenerate-branch]")


# -- real workloads are clean ---------------------------------------------------


def test_all_workloads_are_lint_error_free(runner):
    for workload in all_workloads():
        compiled = runner.compiled(workload.name)
        errors = lint_errors(compiled.module)
        assert errors == [], (
            f"{workload.name}: " + format_findings(errors)
        )


# -- the pipeline sanitizer -----------------------------------------------------


def test_sanitized_pipeline_is_quiet_on_all_workloads():
    from repro.opt.pipeline import OptOptions

    for workload in all_workloads():
        program = compile_source(
            workload.source,
            name=workload.name,
            options=CompileOptions(opt=OptOptions.none()),
        )
        optimize_module(program.module, sanitize=True)  # must not raise


def test_broken_pass_is_caught_by_name():
    def clobber_jump_target(func, const_globals):
        for block in func.blocks:
            term = block.terminator
            if term is not None and term.op == Opcode.JMP:
                term.then_label = "__nowhere__"
                return True
        return False

    program = compile_source(
        """
        func main() {
            var n = 0;
            if (getc()) { n = 1; }
            return n;
        }
        """,
        options=CompileOptions.unoptimized(),
    )
    index = next(
        i for i, p in enumerate(pipeline.PASSES) if p.name == "jump-threading"
    )
    original = pipeline.PASSES[index]
    pipeline.PASSES[index] = pipeline.Pass(
        name="jump-threading",
        enabled=lambda options: True,
        run=clobber_jump_target,
    )
    try:
        with pytest.raises(PipelineSanityError) as excinfo:
            optimize_module(program.module, sanitize=True)
    finally:
        pipeline.PASSES[index] = original
    assert excinfo.value.pass_name == "jump-threading"
    assert "__nowhere__" in excinfo.value.details
    # Without sanitize the corruption would go unnoticed until lowering.


def test_sanitizer_rejects_invalid_input_module():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.JMP, then_label="__nowhere__")]),
    ]
    from repro.ir.cfg import Module

    module = Module(name="broken", functions=[func])
    with pytest.raises(PipelineSanityError) as excinfo:
        optimize_module(module, sanitize=True)
    assert excinfo.value.pass_name == "<input>"


# -- the CLI --------------------------------------------------------------------


def test_cli_lint_reports_clean_program(tmp_path, capsys):
    from repro.tools.cli import main

    path = tmp_path / "tiny.mf"
    path.write_text("func main() { return getc(); }\n")
    assert main(["lint", str(path), "--min-severity", "error"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_lint_prints_info_findings(tmp_path, capsys):
    from repro.tools.cli import main

    path = tmp_path / "branchy.mf"
    path.write_text(
        """
        func main() {
            var n = 0; var i;
            for (i = 0; i < 4; i += 1) {
                if (getc() > 0) { n += 1; }
            }
            return n;
        }
        """
    )
    assert main(["lint", str(path)]) == 0  # infos never fail the build
    out = capsys.readouterr().out
    assert "critical-edge" in out
