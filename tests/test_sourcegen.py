"""Dataset generator tests."""
import pytest

from repro.workloads import sourcegen


def test_c_module_is_deterministic():
    assert sourcegen.c_module(42) == sourcegen.c_module(42)
    assert sourcegen.c_module(42) != sourcegen.c_module(43)


def test_c_module_styles_differ():
    texts = {
        style: sourcegen.c_module(7, style=style)
        for style in sourcegen.C_STYLES
    }
    assert len(set(texts.values())) == len(texts)
    assert texts["commented"].count("/*") > texts["scanner"].count("/*")
    assert texts["tables"].count("acc = acc +") > 0


def test_c_module_rejects_unknown_style():
    with pytest.raises(KeyError):
        sourcegen.c_module(1, style="bogus")


def test_fortran_module_is_loop_heavy():
    text = sourcegen.fortran_module(3)
    assert text.count("for (") + text.count("while (") >= 15


def test_english_text_word_count():
    text = sourcegen.english_text(1, 200)
    assert 180 <= len(text.split()) <= 200 + 1


def test_adder_equations_structure():
    text = sourcegen.adder_equations(3)
    # 3 carries + 3 sums, one equation per line.
    assert text.count(";") == 6
    assert "c2" in text and "s2" in text
    assert "a2" in text and "b2" in text


def test_adder_equations_truth():
    """Evaluate the generated sum/carry equations against real addition."""
    import itertools
    import re

    bits = 3
    text = sourcegen.adder_equations(bits)
    equations = [
        line.strip().rstrip(";").split("=", 1)
        for line in text.strip().splitlines()
    ]
    for values in itertools.product([0, 1], repeat=2 * bits):
        env = {}
        for k in range(bits):
            env[f"a{k}"] = values[k]
            env[f"b{k}"] = values[bits + k]
        for name, expr in equations:
            python_expr = re.sub(r"!", " not ", expr)
            python_expr = python_expr.replace("&", " and ").replace("|", " or ")
            env[name.strip()] = int(eval(python_expr, {}, dict(env)))
        a = sum(env[f"a{k}"] << k for k in range(bits))
        b = sum(env[f"b{k}"] << k for k in range(bits))
        total = sum(env[f"s{k}"] << k for k in range(bits))
        total += env[f"c{bits - 1}"] << bits
        assert total == a + b, (a, b, total)


def test_priority_equations():
    text = sourcegen.priority_equations(4)
    assert "p0" in text and "p3" in text and "anyv" in text
    # p0 must exclude all higher-priority inputs.
    first_line = text.splitlines()[0]
    assert "!i1" in first_line and "!i3" in first_line


def test_pla_cubes_format():
    data = sourcegen.pla_cubes(5, ninputs=8, ncubes=10)
    assert data[0] == 8
    assert data[1] + data[2] * 256 == 10
    assert len(data) == 3 + 10 * 9
    body = data[3:]
    for cube in range(10):
        *inputs, output = body[cube * 9 : cube * 9 + 9]
        assert all(value in (0, 1, 2) for value in inputs)
        assert output == 1


def test_pla_density_knob():
    dense = sourcegen.pla_cubes(1, 10, 50, dontcare_weight=1)
    sparse = sourcegen.pla_cubes(1, 10, 50, dontcare_weight=8)
    assert sparse.count(2) > dense.count(2)


def test_netlist_round_trip():
    data = sourcegen.netlist(2, 5, [(1, 1, 2, 0, 100)], 7)
    values = [int(token) for token in data.split()]
    assert values == [2, 5, 1, 1, 1, 2, 0, 100, 7]
