"""Virtual machine behaviour: counting, limits, monitors, events."""
import pytest

from repro.compiler import compile_source
from repro.vm import (
    InstructionLimitExceeded,
    Machine,
    OnlinePredictorMonitor,
    OutcomeRecorder,
    VMError,
    run_program,
)

from tests.helpers import compile_and_run

COUNT_LOOP = """
func main() {
    var i;
    var sum = 0;
    for (i = 0; i < 100; i += 1) { sum += i; }
    return sum % 256;
}
"""


def test_instruction_count_is_exact_for_straight_line():
    # const, const, add, ret == 4 executed operations.
    program = compile_source("func main() { return 0; }")
    result = run_program(program.lowered)
    assert result.instructions == len(program.lowered.functions[0].code)


def test_instruction_limit_enforced():
    program = compile_source("func main() { while (1) { } }")
    machine = Machine(max_instructions=1000)
    with pytest.raises(InstructionLimitExceeded):
        machine.run(program.lowered)


def test_call_depth_limit_enforced():
    program = compile_source(
        "func f(n) { return f(n + 1); } func main() { return f(0); }"
    )
    machine = Machine(max_call_depth=50)
    with pytest.raises(VMError, match="depth"):
        machine.run(program.lowered)


def test_main_with_params_rejected_at_runtime():
    # Bypass the front end: lowering a module whose main takes params.
    from repro.ir import BasicBlock, Function, Instr, Module, Opcode
    from repro.ir.lower import lower_module

    func = Function(name="main", num_params=1, num_regs=1)
    func.blocks.append(BasicBlock("entry", [Instr(Opcode.RET, a=None)]))
    lowered = lower_module(Module(name="m", functions=[func]))
    with pytest.raises(VMError, match="main"):
        run_program(lowered)


def test_branch_counters_match_loop_trip_counts():
    result = compile_and_run(COUNT_LOOP)
    counts = result.branch_counts()
    assert len(counts) == 1
    (executed, taken), = counts.values()
    assert executed == 101  # 100 iterations + the failing test
    assert taken == 100


def test_runs_are_deterministic():
    first = compile_and_run(COUNT_LOOP)
    second = compile_and_run(COUNT_LOOP)
    assert first.instructions == second.instructions
    assert first.branch_exec == second.branch_exec
    assert first.branch_taken == second.branch_taken


def test_direct_call_and_return_events():
    source = """
    func f() { return 1; }
    func main() { return f() + f() + f(); }
    """
    result = compile_and_run(source)
    assert result.events.direct_calls == 3
    assert result.events.direct_returns == 3


def test_outcome_recorder_sees_every_branch():
    recorder = OutcomeRecorder()
    program = compile_source(COUNT_LOOP)
    run_program(program.lowered, monitors=[recorder])
    assert len(recorder.outcomes) == 101
    assert recorder.outcomes[0] == (0, True)
    assert recorder.outcomes[-1] == (0, False)


def test_online_two_bit_predictor_learns_a_loop():
    monitor = OnlinePredictorMonitor(num_bits=2)
    program = compile_source(COUNT_LOOP)
    run_program(program.lowered, monitors=[monitor])
    # Mispredicts while warming up (2) and at the final not-taken exit (1).
    assert monitor.misses == 3
    assert monitor.hits == 98


def test_online_one_bit_predictor():
    monitor = OnlinePredictorMonitor(num_bits=1)
    program = compile_source(COUNT_LOOP)
    run_program(program.lowered, monitors=[monitor])
    # 1-bit: one warm-up miss, one miss at exit.
    assert monitor.misses == 2


def test_online_predictor_rejects_bad_width():
    with pytest.raises(ValueError):
        OnlinePredictorMonitor(num_bits=3)


def test_monitor_accuracy_property():
    monitor = OnlinePredictorMonitor(num_bits=2)
    monitor.on_run_start(1)
    # Zero branch executions is a vacuously perfect prediction, matching
    # PredictionReport.percent_correct for the same degenerate run.
    assert monitor.accuracy == 1.0
    monitor.on_branch(0, True, 10)
    monitor.on_branch(0, True, 20)
    monitor.on_branch(0, True, 30)
    assert 0 < monitor.accuracy < 1


def test_output_and_percent_taken():
    source = """
    func main() {
        var i;
        for (i = 0; i < 4; i += 1) { putc('a' + i); }
        return 0;
    }
    """
    result = compile_and_run(source)
    assert result.output == b"abcd"
    assert 0.0 < result.percent_taken() < 1.0


def test_memory_is_fresh_per_run():
    source = """
    var counter;
    func main() { counter += 1; return counter; }
    """
    program = compile_source(source)
    assert run_program(program.lowered).exit_code == 1
    assert run_program(program.lowered).exit_code == 1
