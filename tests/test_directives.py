"""IFPROB directive parsing and feedback tests."""
import pytest

from repro.ir.instructions import BranchId
from repro.lang import (
    LangError,
    apply_feedback,
    format_directives,
    parse_directives,
    strip_feedback,
)


def test_parse_single_directive():
    counts = parse_directives(["IFPROB(main, 0, 100, 42)"])
    assert counts == {BranchId("main", 0): (100, 42)}


def test_parse_accumulates_duplicates():
    counts = parse_directives(
        ["IFPROB(f, 1, 10, 2)", "IFPROB(f, 1, 30, 8)"]
    )
    assert counts == {BranchId("f", 1): (40, 10)}


def test_parse_rejects_taken_above_executed():
    with pytest.raises(LangError, match="exceeds"):
        parse_directives(["IFPROB(f, 0, 5, 9)"])


def test_parse_rejects_garbage():
    with pytest.raises(LangError, match="unrecognized"):
        parse_directives(["FROBNICATE(1)"])


def test_blank_directives_ignored():
    assert parse_directives(["", "  "]) == {}


def test_format_is_sorted_and_parsable():
    counts = {
        BranchId("z", 1): (5, 5),
        BranchId("a", 0): (10, 3),
    }
    text = format_directives(counts)
    lines = text.splitlines()
    assert lines[0] == "//!MF! IFPROB(a, 0, 10, 3)"
    assert lines[1] == "//!MF! IFPROB(z, 1, 5, 5)"
    reparsed = parse_directives(
        line[len("//!MF!"):].strip() for line in lines
    )
    assert reparsed == counts


def test_apply_feedback_replaces_existing():
    source = "//!MF! IFPROB(main, 0, 1, 1)\nfunc main() { }\n"
    updated = apply_feedback(source, {BranchId("main", 0): (7, 2)})
    assert updated.count("IFPROB") == 1
    assert "IFPROB(main, 0, 7, 2)" in updated
    assert "func main()" in updated


def test_strip_feedback_removes_all():
    source = "//!MF! IFPROB(main, 0, 1, 1)\nfunc main() { }\n"
    stripped = strip_feedback(source)
    assert "IFPROB" not in stripped
    assert "func main()" in stripped
