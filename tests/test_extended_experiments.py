"""Tests for the ablation, run-length and coverage experiments."""
import pytest

from repro.experiments import ablations, coverage, runlengths
from repro.vm.monitors import RunLengthMonitor


class TestInliningAblation:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return ablations.inlining(runner)

    def test_outputs_unchanged_by_construction(self, result):
        # The ablation machinery itself verified outputs via the runner's
        # deterministic runs; here we check the report invariants.
        for row in result.rows:
            assert row.calls_inlined <= row.calls_base

    def test_inlining_shrinks_call_breaks_somewhere(self, result):
        assert any(row.calls_inlined < row.calls_base for row in result.rows)

    def test_white_ipb_never_gets_worse_when_calls_vanish(self, result):
        for row in result.rows:
            if row.calls_inlined < row.calls_base * 0.5:
                assert row.ipb_with_calls_inlined >= row.ipb_with_calls_base

    def test_formatting(self, result):
        assert "Inlining ablation" in result.format_text()


class TestIfConversionAblation:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return ablations.if_conversion(runner)

    def test_branch_execs_never_increase(self, result):
        for row in result.rows:
            assert row.branch_execs_converted <= row.branch_execs_base

    def test_dynamic_effect_is_tiny_like_the_papers_footnote(self, result):
        # Paper footnote 2: selects were well under 1% of operations.
        for row in result.rows:
            assert row.branch_reduction < 0.05

    def test_formatting(self, result):
        assert "If-conversion ablation" in result.format_text()


class TestRunLengths:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return runlengths.run(runner)

    def test_breaks_match_self_misprediction_counts(self, runner, result):
        from repro.prediction import self_prediction

        for row in result.rows:
            baseline = runner.run(row.program, row.dataset)
            expected = self_prediction(baseline).mispredicted
            # Every misprediction terminates a run, plus the flushed tail
            # run (instructions after the last misprediction, terminated
            # by program exit) when it is non-empty.
            assert row.stats["count"] in (expected, expected + 1)

    def test_runs_are_not_evenly_spaced(self, result):
        # The paper's claim: an evenly-spaced process would have cv ~ 0.
        assert all(row.stats["cv"] > 0.3 for row in result.rows)

    def test_mean_tracks_ipb(self, runner, result):
        from repro.metrics import ipb_self_prediction

        li = result.find("li")
        baseline = runner.run("li", li.dataset)
        # Run-length mean between mispredicted branches approximates the
        # instructions-per-mispredicted-branch measure (no indirect calls
        # in li's accounting here).
        assert li.stats["mean"] == pytest.approx(
            ipb_self_prediction(baseline), rel=0.1
        )

    def test_formatting(self, result):
        assert "run lengths" in result.format_text().lower()


class TestRunLengthMonitor:
    def test_records_gaps(self):
        monitor = RunLengthMonitor([True, False])
        monitor.on_run_start(2)
        monitor.on_branch(0, True, 10)    # predicted: no break
        monitor.on_branch(1, True, 25)    # mispredicted: gap 25
        monitor.on_branch(0, False, 40)   # mispredicted: gap 15
        assert monitor.run_lengths == [25, 15]
        stats = monitor.stats()
        assert stats["count"] == 2
        assert stats["mean"] == 20.0

    def test_direction_list_extension(self):
        monitor = RunLengthMonitor([True])
        monitor.on_run_start(3)  # grows with default not-taken
        monitor.on_branch(2, True, 5)
        assert monitor.run_lengths == [5]

    def test_empty_stats(self):
        monitor = RunLengthMonitor([])
        monitor.on_run_start(0)
        assert monitor.stats()["count"] == 0


class TestCoverage:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return coverage.run(runner)

    def test_pair_count(self, result):
        # Every multi-dataset workload contributes n*(n-1) ordered pairs.
        from repro.workloads import multi_dataset_workloads

        expected = sum(
            len(wl.datasets) * (len(wl.datasets) - 1)
            for wl in multi_dataset_workloads()
        )
        assert len(result.pairs) == expected

    def test_measures_are_fractions(self, result):
        for pair in result.pairs:
            for value in pair.measures.values():
                assert -1e-9 <= value <= 1.0 + 1e-9

    def test_correlations_are_valid(self, result):
        for value in result.correlations.values():
            assert -1.0 <= value <= 1.0

    def test_weighted_coverage_is_informative_here(self, result):
        # Our finding (a deviation from the paper's null result, recorded
        # in EXPERIMENTS.md): coverage correlates positively with quality.
        assert result.correlations["weighted_coverage"] > 0.3

    def test_formatting(self, result):
        assert "Coverage measures" in result.format_text()


class TestCoverageMeasureUnits:
    def make_profile(self, counts):
        from repro.ir.instructions import BranchId
        from repro.profiling import BranchProfile

        profile = BranchProfile(program="p")
        for index, (executed, taken) in enumerate(counts):
            profile.counts[BranchId("f", index)] = (
                float(executed), float(taken),
            )
        return profile

    def test_full_coverage(self):
        a = self.make_profile([(10, 5), (20, 5)])
        assert coverage.weighted_coverage(a, a) == 1.0
        assert coverage.emphasis_overlap(a, a) == pytest.approx(1.0)

    def test_zero_coverage(self):
        a = self.make_profile([(10, 5)])
        b = self.make_profile([(0, 0), (30, 10)])
        b.counts.pop(list(b.counts)[0])
        assert coverage.weighted_coverage(a, b) == 0.0

    def test_pearson_degenerate(self):
        assert coverage.pearson([1.0], [2.0]) == 0.0
        assert coverage.pearson([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_pearson_perfect(self):
        assert coverage.pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert coverage.pearson([1, 2, 3], [-2, -4, -6]) == pytest.approx(-1.0)
