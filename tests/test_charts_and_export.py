"""ASCII chart and JSON export tests."""
import json

import pytest

from repro.experiments import export, figure1, figure2, figure3
from repro.experiments.charts import ascii_bars


class TestAsciiBars:
    def test_basic_shape(self):
        text = ascii_bars(
            "T", [("a", 10.0, 5.0), ("b", 100.0, None)], log=False
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "#" in lines[3]
        assert "-" in lines[4]
        assert "10.0" in lines[3]

    def test_longest_bar_fills_width(self):
        text = ascii_bars("T", [("a", 10.0, None), ("b", 100.0, None)],
                          width=30, log=False)
        bar_a = text.splitlines()[3].count("#")
        bar_b = text.splitlines()[4].count("#")
        assert bar_b == 30
        assert 0 < bar_a < bar_b

    def test_log_scale_compresses_outliers(self):
        linear = ascii_bars("T", [("a", 10.0, None), ("b", 1000.0, None)],
                            width=40, log=False)
        logged = ascii_bars("T", [("a", 10.0, None), ("b", 1000.0, None)],
                            width=40, log=True)
        ratio_linear = (
            linear.splitlines()[4].count("#") / linear.splitlines()[3].count("#")
        )
        ratio_log = (
            logged.splitlines()[4].count("#") / logged.splitlines()[3].count("#")
        )
        assert ratio_log < ratio_linear

    def test_zero_value(self):
        text = ascii_bars("T", [("a", 0.0, 0.0)])
        assert "0.0" in text

    def test_empty(self):
        assert ascii_bars("T", []) == "T"


class TestFigureCharts:
    def test_figure_charts_render(self, runner):
        for module in (figure1, figure2, figure3):
            chart = module.run(runner).format_chart()
            assert "#" in chart and "-" in chart
            assert "chart" in chart


class TestExport:
    @pytest.fixture(scope="class")
    def document(self, runner, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("export") / "results.json")
        return export.export_json(path, runner), path

    def test_all_sections_present(self, document):
        data, _ = document
        for key in (
            "table1", "table2", "table3", "figure1", "figure2", "figure3",
            "informal", "runlengths", "coverage", "ablations",
        ):
            assert key in data

    def test_file_is_valid_json(self, document):
        _, path = document
        with open(path) as handle:
            reloaded = json.load(handle)
        assert reloaded["table1"]["rows"]

    def test_values_match_experiment_objects(self, runner, document):
        data, _ = document
        from repro.experiments import table3

        live = table3.run(runner)
        exported = data["table3"]["rows"]
        assert len(exported) == len(live.rows)
        assert exported[0]["program"] == live.rows[0].program
        assert exported[0]["instructions_per_break"] == pytest.approx(
            live.rows[0].instructions_per_break
        )

    def test_dataclass_flattening_handles_nested_dicts(self, document):
        data, _ = document
        combine = data["informal"]["combine_modes"]["rows"][0]
        assert set(combine["fraction_of_self"]) == {
            "scaled", "unscaled", "polling",
        }
