"""IR construction, validation, printing and lowering tests."""
import pytest

from repro.ir import (
    BasicBlock,
    BinOp,
    BranchId,
    Function,
    GlobalVar,
    IRBuilder,
    IRError,
    Instr,
    Module,
    Opcode,
    format_module,
    lower_module,
    validate_module,
)
from repro.vm.machine import run_program


def build_simple_module():
    """return 2 + 3 via hand-built IR."""
    func = Function(name="main", num_params=0, num_regs=0)
    builder = IRBuilder(func)
    entry = builder.add_block("entry")
    builder.set_block(entry)
    two = builder.const(2)
    three = builder.const(3)
    total = builder.bin(BinOp.ADD, two, three)
    builder.ret(total)
    return Module(name="m", functions=[func])


def test_builder_produces_valid_module():
    module = build_simple_module()
    validate_module(module)


def test_hand_built_module_runs():
    module = build_simple_module()
    result = run_program(lower_module(module))
    assert result.exit_code == 5
    assert result.instructions == 4


def test_emitting_into_terminated_block_raises():
    func = Function(name="main", num_params=0, num_regs=0)
    builder = IRBuilder(func)
    builder.set_block(builder.add_block("entry"))
    builder.ret(None)
    with pytest.raises(IRError, match="terminated"):
        builder.const(1)


def test_validate_rejects_missing_terminator():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks.append(
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=1)])
    )
    with pytest.raises(IRError, match="terminator"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_unknown_branch_target():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks.append(
        BasicBlock("entry", [Instr(Opcode.JMP, then_label="nowhere")])
    )
    with pytest.raises(IRError, match="undefined label"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_out_of_range_register():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks.append(
        BasicBlock(
            "entry",
            [Instr(Opcode.CONST, dst=5, imm=1), Instr(Opcode.RET, a=None)],
        )
    )
    with pytest.raises(IRError, match="out of range"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_branch_without_id():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks.append(
        BasicBlock(
            "entry",
            [
                Instr(Opcode.CONST, dst=0, imm=1),
                Instr(Opcode.BR, a=0, then_label="entry", else_label="entry"),
            ],
        )
    )
    with pytest.raises(IRError, match="BranchId"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_duplicate_branch_ids():
    func = Function(name="main", num_params=0, num_regs=1)
    bid = BranchId("main", 0)
    block_a = BasicBlock(
        "entry",
        [
            Instr(Opcode.CONST, dst=0, imm=1),
            Instr(Opcode.BR, a=0, then_label="b", else_label="b", branch_id=bid),
        ],
    )
    block_b = BasicBlock(
        "b",
        [
            Instr(Opcode.BR, a=0, then_label="b", else_label="b", branch_id=bid),
        ],
    )
    func.blocks = [block_a, block_b]
    with pytest.raises(IRError, match="duplicate BranchId"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_missing_main():
    func = Function(name="f", num_params=0, num_regs=0)
    func.blocks.append(BasicBlock("entry", [Instr(Opcode.RET, a=None)]))
    with pytest.raises(IRError, match="main"):
        validate_module(Module(name="m", functions=[func]))


def test_validate_rejects_call_arity_mismatch():
    callee = Function(name="f", num_params=2, num_regs=2)
    callee.blocks.append(BasicBlock("entry", [Instr(Opcode.RET, a=None)]))
    caller = Function(name="main", num_params=0, num_regs=1)
    caller.blocks.append(
        BasicBlock(
            "entry",
            [
                Instr(Opcode.CONST, dst=0, imm=1),
                Instr(Opcode.CALL, dst=None, symbol="f", args=(0,)),
                Instr(Opcode.RET, a=None),
            ],
        )
    )
    with pytest.raises(IRError, match="expects 2"):
        validate_module(Module(name="m", functions=[caller, callee]))


def test_global_layout_and_initializers():
    module = Module(
        name="m",
        globals=[
            GlobalVar("a", 3, (1, 2)),
            GlobalVar("b", 1, (9,)),
        ],
    )
    func = Function(name="main", num_params=0, num_regs=1)
    builder = IRBuilder(func)
    builder.set_block(builder.add_block("entry"))
    addr = builder.addr("b")
    value = builder.load(addr)
    builder.ret(value)
    module.functions.append(func)
    lowered = lower_module(module)
    assert lowered.symbols == {"a": 0, "b": 3}
    assert lowered.memory_init == [1, 2, 0, 9]
    assert run_program(lowered).exit_code == 9


def test_global_size_must_be_positive():
    with pytest.raises(IRError, match="size"):
        GlobalVar("bad", 0)


def test_fallthrough_jump_elided_in_lowering():
    func = Function(name="main", num_params=0, num_regs=1)
    builder = IRBuilder(func)
    entry = builder.add_block("entry")
    builder.set_block(entry)
    builder.jmp("next")
    nxt = builder.add_block("next")
    builder.set_block(nxt)
    builder.ret(None)
    lowered = lower_module(Module(name="m", functions=[func]))
    # The JMP to the lexically-next block disappears.
    assert [ins[0] for ins in lowered.functions[0].code] == [int(Opcode.RET)]


def test_branch_table_is_deduplicated_and_ordered():
    source_module = build_simple_module()
    lowered = lower_module(source_module)
    assert lowered.branch_table == []


def test_printer_output_mentions_everything():
    module = build_simple_module()
    module.globals.append(GlobalVar("g", 4, (1,)))
    text = format_module(module)
    assert "module m" in text
    assert "global g[4]" in text
    assert "func main" in text
    assert "ret" in text


def test_static_counts():
    module = build_simple_module()
    counts = module.static_counts()
    assert counts == {
        "instructions": 4, "branches": 0, "blocks": 1, "functions": 1,
    }
