"""Dataflow framework tests: solver behavior and the concrete analyses."""
import pytest

from repro.analysis import (
    GETC_RANGE,
    TOP,
    Interval,
    constants,
    hull,
    intersect,
    live_sets,
    maybe_uninitialized_uses,
    ranges,
    reaching_definitions,
)
from repro.analysis.ranges import compare_intervals
from repro.compiler import CompileOptions, compile_source
from repro.ir.cfg import BasicBlock, Function
from repro.ir.instructions import BranchId, Instr
from repro.ir.opcodes import BinOp, Opcode


def function_of(source, name="main"):
    program = compile_source(source, options=CompileOptions(enable_select=False))
    return program.module.function(name)


def _br(cond, then_label, else_label, index=0, function="main"):
    return Instr(
        Opcode.BR,
        a=cond,
        then_label=then_label,
        else_label=else_label,
        branch_id=BranchId(function, index),
    )


# -- solver ---------------------------------------------------------------------


def test_solver_terminates_on_unreachable_cycle():
    # entry returns; a two-block cycle floats unreachable behind it.
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=1),
                             Instr(Opcode.RET, a=0)]),
        BasicBlock("a", [Instr(Opcode.JMP, then_label="b")]),
        BasicBlock("b", [Instr(Opcode.JMP, then_label="a")]),
    ]
    result = constants(func)
    assert result.before["a"] is None  # unreachable = bottom
    assert result.before["b"] is None
    assert result.before["entry"] == {}


def test_forward_reachability_via_constant_branch_pruning():
    func = function_of(
        """
        func main() {
            var flag = 0; var n = 1;
            if (flag) { n = 2; }
            return n;
        }
        """
    )
    result = constants(func)
    # Exactly one block (the then-arm) is pruned as infeasible.
    unreachable = [
        block.label
        for block in func.blocks
        if result.before[block.label] is None
    ]
    assert len(unreachable) == 1


# -- liveness -------------------------------------------------------------------


def test_liveness_diamond():
    # if (r0) r1 = 1 else r1 = 2; return r1
    func = Function(name="main", num_params=1, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [_br(0, "t", "f")]),
        BasicBlock("t", [Instr(Opcode.CONST, dst=1, imm=1),
                         Instr(Opcode.JMP, then_label="join")]),
        BasicBlock("f", [Instr(Opcode.CONST, dst=1, imm=2),
                         Instr(Opcode.JMP, then_label="join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=1)]),
    ]
    live_in, live_out = live_sets(func)
    assert live_in["entry"] == {0}
    assert live_out["t"] == {1}
    assert live_out["f"] == {1}
    assert live_in["join"] == {1}
    assert live_out["join"] == set()


def test_liveness_keeps_infinite_loop_blocks_at_boundary():
    # An infinite loop has no path to exit; bottom_is_boundary must keep
    # its live sets defined (matching historical dead-code semantics).
    func = Function(name="main", num_params=0, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=1),
                             Instr(Opcode.JMP, then_label="loop")]),
        BasicBlock("loop", [Instr(Opcode.BIN, dst=1, a=0, b=0,
                                  subop=int(BinOp.ADD)),
                            Instr(Opcode.JMP, then_label="loop")]),
    ]
    live_in, live_out = live_sets(func)
    assert live_in["loop"] == {0}
    assert live_out["loop"] == {0}


# -- reaching definitions / definite assignment ---------------------------------


def test_reaching_definitions_params_and_kills():
    func = function_of(
        """
        func f(a) {
            var x = a + 1;
            x = x * 2;
            return x;
        }
        func main() { return f(3); }
        """,
        name="f",
    )
    reaching = reaching_definitions(func)
    entry = func.blocks[0].label
    # At function entry only the parameter definition reaches.
    assert all(fact[1:] == ("<entry>", -1) for fact in reaching[entry])


def test_maybe_uninitialized_uses_detects_one_armed_init():
    func = Function(name="main", num_params=1, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [_br(0, "t", "join")]),
        BasicBlock("t", [Instr(Opcode.CONST, dst=1, imm=1),
                         Instr(Opcode.JMP, then_label="join")]),
        BasicBlock("join", [Instr(Opcode.RET, a=1)]),
    ]
    findings = maybe_uninitialized_uses(func)
    assert [(label, reg) for label, _, _, reg in findings] == [("join", 1)]


def test_maybe_uninitialized_ignores_unreachable_blocks():
    func = Function(name="main", num_params=0, num_regs=2)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.CONST, dst=0, imm=0),
                             Instr(Opcode.RET, a=0)]),
        BasicBlock("orphan", [Instr(Opcode.RET, a=1)]),
    ]
    assert maybe_uninitialized_uses(func) == []


# -- constant propagation -------------------------------------------------------


def test_constprop_meet_keeps_agreeing_constants():
    func = function_of(
        """
        func main() {
            var x;
            if (getc() > 0) { x = 7; } else { x = 7; }
            return x;
        }
        """
    )
    result = constants(func)
    ret_block = next(
        b for b in func.blocks
        if b.terminator is not None and b.terminator.op == Opcode.RET
    )
    state = result.before[ret_block.label]
    assert state is not None
    assert 7 in state.values()


def test_constprop_folds_constant_global_loads():
    func = function_of(
        """
        var knob = 0;
        func main() {
            if (knob) { return 1; }
            return 0;
        }
        """
    )
    result = constants(func, const_globals={"knob": 0})
    branch_block = next(
        b for b in func.blocks
        if b.terminator is not None and b.terminator.op == Opcode.BR
    )
    state = result.after[branch_block.label]
    assert state is not None
    assert state.get(branch_block.terminator.a) == 0


# -- ranges ---------------------------------------------------------------------


def test_interval_helpers():
    assert hull(Interval(0, 1), Interval(5, 9)) == Interval(0, 9)
    assert intersect(Interval(0, 10), Interval(5, 20)) == Interval(5, 10)
    assert intersect(Interval(0, 1), Interval(5, 9)) is None
    assert Interval(1, 5).excludes_zero()
    assert Interval(-3, -1).excludes_zero()
    assert not Interval(0, 1).excludes_zero()
    with pytest.raises(ValueError):
        Interval(2, 1)


def test_compare_intervals_decides_disjoint():
    assert compare_intervals(BinOp.LT, Interval(0, 4), Interval(5, 9)) is True
    assert compare_intervals(BinOp.GE, Interval(0, 4), Interval(5, 9)) is False
    assert compare_intervals(BinOp.LT, Interval(0, 5), Interval(5, 9)) is None
    assert compare_intervals(BinOp.EQ, Interval(1, 1), Interval(1, 1)) is True
    assert compare_intervals(BinOp.NE, Interval(0, 0), Interval(1, 5)) is True


def test_getc_result_is_bounded():
    func = Function(name="main", num_params=0, num_regs=1)
    func.blocks = [
        BasicBlock("entry", [Instr(Opcode.GETC, dst=0),
                             Instr(Opcode.RET, a=0)]),
    ]
    result = ranges(func)
    assert result.after["entry"][0] == GETC_RANGE


def test_range_widening_terminates_and_keeps_lower_bound():
    func = function_of(
        """
        func main() {
            var i = 0; var n = 0;
            while (i < 10) { n = n + i; i = i + 1; }
            return i;
        }
        """
    )
    result = ranges(func)  # must terminate despite the increasing counter
    for block in func.blocks:
        state = result.after[block.label]
        if state is None:
            continue
        for interval in state.values():
            assert interval != TOP


def test_comparison_refinement_proves_second_guard():
    # The first guard pins x > 5 on the taken path; the second x > 0 test
    # in that region is then range-decided.
    func = function_of(
        """
        func main() {
            var x = getc();
            if (x > 5) {
                if (x > 0) { return 1; }
                return 2;
            }
            return 0;
        }
        """
    )
    result = ranges(func)
    branches = [
        b for b in func.blocks
        if b.terminator is not None and b.terminator.op == Opcode.BR
        and b.terminator.then_label != b.terminator.else_label
    ]
    decided = []
    for block in branches:
        state = result.after[block.label]
        if state is None:
            continue
        interval = state.get(block.terminator.a, TOP)
        if interval.excludes_zero() or interval == Interval(0, 0):
            decided.append(block.label)
    assert decided  # the inner guard is proven by refinement
