"""Property-based tests over profiles, predictors and break accounting."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.instructions import BranchId
from repro.prediction.base import FixedPredictor, ProfilePredictor
from repro.prediction.combine import combine_profiles
from repro.prediction.evaluate import evaluate_static, self_prediction
from repro.profiling.branch_profile import BranchProfile
from repro.vm.counters import ControlEvents, RunResult

# -- strategies -----------------------------------------------------------------


@st.composite
def branch_counts(draw, max_branches=12):
    count = draw(st.integers(min_value=1, max_value=max_branches))
    executed = draw(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=count, max_size=count,
        )
    )
    taken = [
        draw(st.integers(min_value=0, max_value=total)) for total in executed
    ]
    return executed, taken


def make_run(executed, taken, instructions=None):
    table = [BranchId("f", index) for index in range(len(executed))]
    return RunResult(
        program="p",
        instructions=instructions or (sum(executed) * 7 + 13),
        branch_table=table,
        branch_exec=list(executed),
        branch_taken=list(taken),
        events=ControlEvents(),
        output=b"",
        exit_code=0,
    )


def profile_from(executed, taken):
    return BranchProfile.from_run(make_run(executed, taken))


# -- evaluation invariants ---------------------------------------------------------


@given(branch_counts())
@settings(max_examples=200, deadline=None)
def test_self_prediction_is_optimal(counts):
    executed, taken = counts
    run = make_run(executed, taken)
    best = self_prediction(run).mispredicted
    assert best == sum(min(t, e - t) for e, t in zip(executed, taken))
    for predictor in (
        FixedPredictor(True),
        FixedPredictor(False),
        ProfilePredictor(profile_from(executed, taken), default=True),
    ):
        assert evaluate_static(run, predictor).mispredicted >= best


@given(branch_counts())
@settings(max_examples=200, deadline=None)
def test_taken_plus_not_taken_mispredictions_cover_all(counts):
    executed, taken = counts
    run = make_run(executed, taken)
    always = evaluate_static(run, FixedPredictor(True)).mispredicted
    never = evaluate_static(run, FixedPredictor(False)).mispredicted
    assert always + never == sum(executed)


@given(branch_counts())
@settings(max_examples=200, deadline=None)
def test_percent_correct_bounds(counts):
    executed, taken = counts
    run = make_run(executed, taken)
    report = self_prediction(run)
    assert 0.5 <= report.percent_correct <= 1.0
    assert report.mispredicted + report.correct == report.branch_execs


# -- combining invariants --------------------------------------------------------------


@given(st.lists(branch_counts(), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_unscaled_combination_preserves_totals(count_sets):
    profiles = [profile_from(e, t) for e, t in count_sets]
    combined = combine_profiles(profiles, mode="unscaled")
    assert combined.total_executed == sum(p.total_executed for p in profiles)
    assert combined.total_taken == sum(p.total_taken for p in profiles)


@given(st.lists(branch_counts(), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_scaled_combination_gives_unit_weight(count_sets):
    profiles = [profile_from(e, t) for e, t in count_sets]
    nonempty = [p for p in profiles if p.total_executed]
    combined = combine_profiles(profiles, mode="scaled")
    assert abs(combined.total_executed - len(nonempty)) < 1e-9


@given(st.lists(branch_counts(), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_polling_counts_votes(count_sets):
    profiles = [profile_from(e, t) for e, t in count_sets]
    combined = combine_profiles(profiles, mode="polling")
    for branch_id, (votes, taken_votes) in combined.counts.items():
        appearing = sum(1 for p in profiles if branch_id in p)
        assert votes == appearing
        assert 0 <= taken_votes <= votes


@given(branch_counts())
@settings(max_examples=100, deadline=None)
def test_single_profile_combination_preserves_directions(counts):
    executed, taken = counts
    profile = profile_from(executed, taken)
    for mode in ("scaled", "unscaled"):
        combined = combine_profiles([profile], mode=mode)
        for branch_id in profile:
            assert combined.direction(branch_id) == profile.direction(branch_id)


# -- serialization ---------------------------------------------------------------------


@given(branch_counts())
@settings(max_examples=100, deadline=None)
def test_profile_dict_round_trip(counts):
    executed, taken = counts
    profile = profile_from(executed, taken)
    restored = BranchProfile.from_dict(profile.to_dict())
    assert restored.counts == profile.counts


# -- metrics ------------------------------------------------------------------


@given(branch_counts(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_ipb_monotone_in_breaks(counts, include_calls):
    from repro.metrics.breaks import BreakPolicy, predicted_breaks

    executed, taken = counts
    run = make_run(executed, taken)
    policy = BreakPolicy(include_direct_calls=include_calls)
    few = predicted_breaks(run, mispredicted=1, policy=policy)
    many = predicted_breaks(run, mispredicted=10, policy=policy)
    assert many == few + 9
