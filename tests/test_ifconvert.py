"""If-conversion tests."""
from repro.compiler import CompileOptions, compile_source
from repro.ir import validate_module
from repro.opt import OptOptions

from tests.helpers import compile_and_run

DIAMOND = """
func main() {
    var i; var x = 0; var y = 0; var s = 0;
    for (i = 0; i < 40; i += 1) {
        if (i & 1) {
            x = i * 3;
            y = y + x;
        } else {
            x = i + 7;
            y = y - 1;
        }
        s = s + x + y;
    }
    return s % 256;
}
"""


def converted_options():
    return CompileOptions(opt=OptOptions(if_conversion=True))


def test_conversion_preserves_semantics():
    base = compile_and_run(DIAMOND)
    converted = compile_and_run(DIAMOND, options=converted_options())
    assert base.exit_code == converted.exit_code


def test_conversion_removes_the_branch():
    base = compile_and_run(DIAMOND)
    converted = compile_and_run(DIAMOND, options=converted_options())
    assert len(converted.branch_counts()) < len(base.branch_counts())
    assert converted.events.selects > 0


def test_converted_module_is_valid():
    program = compile_source(DIAMOND, options=converted_options())
    validate_module(program.module)


def test_memory_touching_arms_are_not_converted():
    source = """
    arr data[8];
    func main() {
        var i; var s = 0;
        for (i = 0; i < 16; i += 1) {
            if (i & 1) { data[i % 8] = i; } else { s += data[i % 8]; }
        }
        return s % 256;
    }
    """
    base = compile_and_run(source)
    converted = compile_and_run(source, options=converted_options())
    assert base.exit_code == converted.exit_code
    # Stores/loads in the arms keep the branch.
    assert len(converted.branch_counts()) == len(base.branch_counts())


def test_division_arms_are_not_converted():
    source = """
    func main() {
        var i; var s = 0; var q = 0;
        for (i = 0; i < 10; i += 1) {
            var d = i - 5;
            if (d != 0) { q = 100 / d; } else { q = 0; }
            s += q;
        }
        return (s + 128) % 256;
    }
    """
    base = compile_and_run(source)
    converted = compile_and_run(source, options=converted_options())
    # Converting would divide by zero at i == 5.
    assert base.exit_code == converted.exit_code


def test_one_sided_hammock_conversion():
    source = """
    func main() {
        var i; var best = 0; var second = 0;
        for (i = 0; i < 20; i += 1) {
            var score = (i * 37) % 23;
            if (score > best) {
                second = best;
                best = score;
            }
        }
        return best * 100 + second;
    }
    """
    base = compile_and_run(source)
    converted = compile_and_run(source, options=converted_options())
    assert base.exit_code == converted.exit_code
    assert len(converted.branch_counts()) <= len(base.branch_counts())


def test_conversion_keeps_branch_when_arm_has_call():
    source = """
    var calls;
    func note(v) { calls += 1; return v; }
    func main() {
        var i; var x = 0;
        for (i = 0; i < 10; i += 1) {
            if (i & 1) { x = note(i); } else { x = 0; }
        }
        return calls;
    }
    """
    base = compile_and_run(source)
    converted = compile_and_run(source, options=converted_options())
    # Calls must not be speculated: exactly 5 in both configurations.
    assert base.exit_code == converted.exit_code == 5
