"""Branch profile and database tests."""
import pytest

from repro.ir.instructions import BranchId
from repro.profiling import BranchProfile, IfProbber, ProfileDatabase

from tests.helpers import compile_and_run

BIASED_LOOP = """
func main() {
    var i; var n = 0;
    for (i = 0; i < 20; i += 1) {
        if (i % 4 == 0) { n += 1; }
    }
    return n;
}
"""


def test_profile_from_run_counts():
    run = compile_and_run(BIASED_LOOP)
    profile = BranchProfile.from_run(run)
    assert profile.runs == 1
    loop_branch = BranchId("main", 0)
    inner_branch = BranchId("main", 1)
    assert profile.counts[loop_branch] == (21.0, 20.0)
    assert profile.counts[inner_branch] == (20.0, 5.0)


def test_profile_directions():
    run = compile_and_run(BIASED_LOOP)
    profile = BranchProfile.from_run(run)
    assert profile.direction(BranchId("main", 0)) is True
    assert profile.direction(BranchId("main", 1)) is False
    assert profile.direction(BranchId("main", 99)) is None


def test_direction_tie_predicts_not_taken():
    profile = BranchProfile(program="p")
    profile.counts[BranchId("f", 0)] = (10.0, 5.0)
    assert profile.direction(BranchId("f", 0)) is False


def test_add_run_accumulates():
    run = compile_and_run(BIASED_LOOP)
    profile = BranchProfile.from_run(run)
    profile.add_run(run)
    assert profile.runs == 2
    assert profile.counts[BranchId("main", 0)] == (42.0, 40.0)


def test_add_run_program_mismatch_raises():
    run = compile_and_run(BIASED_LOOP, name="a")
    other = compile_and_run(BIASED_LOOP, name="b")
    profile = BranchProfile.from_run(run)
    with pytest.raises(ValueError):
        profile.add_run(other)


def test_weighted_add_profile():
    run = compile_and_run(BIASED_LOOP)
    base = BranchProfile.from_run(run)
    combined = BranchProfile(program=run.program)
    combined.add_profile(base, weight=0.5)
    assert combined.counts[BranchId("main", 0)] == (10.5, 10.0)


def test_percent_taken():
    run = compile_and_run(BIASED_LOOP)
    profile = BranchProfile.from_run(run)
    assert profile.percent_taken() == pytest.approx(25 / 41)


def test_profile_round_trips_through_dict():
    run = compile_and_run(BIASED_LOOP)
    profile = BranchProfile.from_run(run)
    restored = BranchProfile.from_dict(profile.to_dict())
    assert restored.counts == profile.counts
    assert restored.program == profile.program
    assert restored.runs == profile.runs


def test_database_record_and_query():
    database = ProfileDatabase()
    run = compile_and_run(BIASED_LOOP, name="prog")
    database.record(run, "d1")
    database.record(run, "d1")
    database.record(run, "d2")
    assert database.programs() == ["prog"]
    assert database.datasets("prog") == ["d1", "d2"]
    assert database.dataset_profile("prog", "d1").runs == 2
    merged = database.program_profile("prog")
    assert merged.counts[BranchId("main", 0)] == (63.0, 60.0)


def test_database_leave_one_out():
    database = ProfileDatabase()
    run = compile_and_run(BIASED_LOOP, name="prog")
    database.record(run, "d1")
    database.record(run, "d2")
    loo = database.program_profile("prog", exclude="d2")
    assert loo.counts[BranchId("main", 0)] == (21.0, 20.0)


def test_database_missing_profile_raises():
    with pytest.raises(KeyError):
        ProfileDatabase().dataset_profile("nope", "d")


def test_database_persistence(tmp_path):
    database = ProfileDatabase()
    run = compile_and_run(BIASED_LOOP, name="prog")
    database.record(run, "d1")
    path = str(tmp_path / "profiles.json")
    database.save(path)
    loaded = ProfileDatabase.load(path)
    assert loaded.dataset_profile("prog", "d1").counts == (
        database.dataset_profile("prog", "d1").counts
    )


def test_database_record_profile_matches_record(tmp_path):
    run = compile_and_run(BIASED_LOOP, name="prog")
    via_run = ProfileDatabase()
    via_run.record(run, "d1")
    via_run.record(run, "d1")
    via_profile = ProfileDatabase()
    via_profile.record_profile("prog", "d1", BranchProfile.from_run(run))
    via_profile.record_profile("prog", "d1", BranchProfile.from_run(run))
    assert via_profile.to_dict() == via_run.to_dict()


def test_database_record_profile_program_mismatch():
    run = compile_and_run(BIASED_LOOP, name="prog")
    with pytest.raises(ValueError):
        ProfileDatabase().record_profile(
            "other", "d1", BranchProfile.from_run(run)
        )


def test_database_save_survives_concurrent_writers(tmp_path):
    """Regression: ``save`` used a shared ``<path>.tmp``, so concurrent
    writers interleaved JSON and raced the rename — FileNotFoundError or
    a corrupt database.  Per-writer mkstemp temp files make every
    observable state a complete database from exactly one writer."""
    import json
    import threading

    run = compile_and_run(BIASED_LOOP, name="prog")
    databases = []
    for index in range(4):
        database = ProfileDatabase()
        for repeat in range(index + 1):
            database.record(run, f"d{index}")
        databases.append(database)
    valid_dumps = {
        json.dumps(database.to_dict(), sort_keys=True)
        for database in databases
    }

    path = str(tmp_path / "hammered.json")
    errors = []

    def hammer(database):
        try:
            for _ in range(25):
                database.save(path)
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(database,))
        for database in databases
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, f"concurrent saves raised: {errors!r}"
    with open(path) as handle:
        final = json.dumps(json.load(handle), sort_keys=True)
    assert final in valid_dumps
    leftovers = [name for name in tmp_path.iterdir() if ".tmp" in name.name]
    assert not leftovers, f"temp files leaked: {leftovers}"


def test_ifprobber_full_feedback_loop():
    probber = IfProbber(BIASED_LOOP, name="prog")
    probber.run_dataset("d1", b"")
    feedback_source = probber.feedback_source()
    assert "IFPROB(main, 0, 21, 20)" in feedback_source

    # Recompiling the feedback source recovers the same profile.
    from repro.compiler import compile_source
    from repro.profiling import profile_from_feedback

    recompiled = compile_source(feedback_source, name="prog")
    recovered = profile_from_feedback(recompiled)
    assert recovered.counts[BranchId("main", 0)] == (21.0, 20.0)
    assert recovered.counts[BranchId("main", 1)] == (20.0, 5.0)


def test_ifprobber_feedback_is_idempotent():
    probber = IfProbber(BIASED_LOOP, name="prog")
    probber.run_dataset("d1", b"")
    once = probber.feedback_source()
    probber_again = IfProbber(once, name="prog")
    probber_again.run_dataset("d1", b"")
    twice = probber_again.feedback_source()
    assert once.count("IFPROB") == twice.count("IFPROB")
