"""Tests for the dynamic branch-predictor subsystem (repro.dynamic)."""
import pytest

from repro.dynamic import (
    BimodalPredictor,
    DynamicScoreMonitor,
    GSharePredictor,
    StaticAsDynamic,
    TournamentPredictor,
    TwoLevelLocalPredictor,
    branch_pc,
    build_model,
    default_zoo,
)
from repro.experiments import dynamic_compare
from repro.ir.instructions import BranchId
from repro.prediction.base import FixedPredictor, ProfilePredictor
from repro.prediction.evaluate import evaluate_static
from repro.vm.monitors import OnlinePredictorMonitor

ONE_BRANCH = [BranchId("main", 0)]


def drive(model, outcomes, index=0, branch_table=None):
    """Reset a model and feed it an outcome stream; returns predictions."""
    model.reset(branch_table if branch_table is not None else ONE_BRANCH)
    return [model.observe(index, taken) for taken in outcomes]


# -- saturating-counter transition tables -------------------------------------


class TestSaturatingCounters:
    def test_one_bit_transitions(self):
        model = BimodalPredictor(table_size=None, num_bits=1)
        model.reset(ONE_BRANCH)
        # state 0 predicts not-taken; a single taken flips it, and back.
        assert model.predict(0) is False
        model.update(0, True)
        assert model.snapshot() == ((1,),)
        assert model.predict(0) is True
        model.update(0, True)
        assert model.snapshot() == ((1,),)  # saturates at 1
        model.update(0, False)
        assert model.snapshot() == ((0,),)
        model.update(0, False)
        assert model.snapshot() == ((0,),)  # saturates at 0

    def test_two_bit_transitions(self):
        model = BimodalPredictor(table_size=None, num_bits=2)
        model.reset(ONE_BRANCH)
        states = []
        for taken in (True, True, True, True, False, False, True, False):
            model.update(0, taken)
            states.append(model.snapshot()[0][0])
        # 0 -> 1 -> 2 -> 3 (saturate) -> 3 -> 2 -> 1 -> 2 -> 1
        assert states == [1, 2, 3, 3, 2, 1, 2, 1]

    def test_two_bit_hysteresis_survives_one_exception(self):
        # Classic 2-bit property: a single not-taken inside a taken run
        # does not flip the prediction (unlike 1-bit).
        one = BimodalPredictor(table_size=None, num_bits=1)
        two = BimodalPredictor(table_size=None, num_bits=2)
        stream = [True, True, True, False, True]
        assert drive(one, stream)[-1] is False   # flipped by the exception
        assert drive(two, stream)[-1] is True    # hysteresis held

    def test_threshold_is_top_half(self):
        model = BimodalPredictor(table_size=None, num_bits=2, initial_state=2)
        model.reset(ONE_BRANCH)
        assert model.predict(0) is True
        model = BimodalPredictor(table_size=None, num_bits=2, initial_state=1)
        model.reset(ONE_BRANCH)
        assert model.predict(0) is False

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="num_bits"):
            BimodalPredictor(num_bits=0)
        with pytest.raises(ValueError, match="initial_state"):
            BimodalPredictor(num_bits=1, initial_state=2)
        with pytest.raises(ValueError, match="power of two"):
            BimodalPredictor(table_size=100)


# -- hashing and aliasing ------------------------------------------------------


class TestIndexing:
    def test_branch_pc_is_stable(self):
        # The FNV-1a constant for "main#0" must never change: finite-table
        # simulations are only reproducible across processes if indexing
        # does not depend on Python's salted hash().
        assert branch_pc(BranchId("main", 0)) == branch_pc(BranchId("main", 0))
        assert branch_pc(BranchId("main", 0)) != branch_pc(BranchId("main", 1))
        assert branch_pc(BranchId("main", 0)) == 0xAA5D7873E9A81CD3

    def test_finite_bimodal_aliases_when_table_is_small(self):
        branches = [BranchId("f", i) for i in range(64)]
        small = BimodalPredictor(table_size=4)
        small.reset(branches)
        assert len(set(small._slots)) <= 4
        infinite = BimodalPredictor(table_size=None)
        infinite.reset(branches)
        assert len(set(infinite._slots)) == 64

    def test_aliased_branches_share_state(self):
        branches = [BranchId("f", i) for i in range(64)]
        model = BimodalPredictor(table_size=1, num_bits=2)
        model.reset(branches)
        # Every branch maps to the single entry: training one branch
        # taken trains them all.
        model.update(0, True)
        model.update(0, True)
        assert all(model.predict(i) is True for i in range(64))


class TestGShare:
    def test_history_register_tracks_recent_outcomes(self):
        model = GSharePredictor(table_size=16, history_bits=4)
        drive(model, [True, False, True, True])
        # history = last 4 outcomes, oldest first: 1011
        assert model.snapshot()[1] == 0b1011

    def test_history_length_is_bounded(self):
        model = GSharePredictor(table_size=16, history_bits=2)
        drive(model, [True] * 10)
        assert model.snapshot()[1] == 0b11

    def test_same_stream_same_snapshot(self):
        branches = [BranchId("f", i) for i in range(8)]
        stream = [(i % 3, i % 2 == 0) for i in range(200)]
        snaps = []
        for _ in range(2):
            model = GSharePredictor(table_size=16)
            model.reset(branches)
            predictions = [model.observe(i, t) for i, t in stream]
            snaps.append((model.snapshot(), predictions))
        assert snaps[0] == snaps[1]

    def test_index_mixes_history_and_address(self):
        model = GSharePredictor(table_size=16, history_bits=4)
        model.reset(ONE_BRANCH)
        before = model.slot(0)
        model.update(0, True)
        after = model.slot(0)
        # Same branch, different history context -> different entry.
        assert before != after

    def test_learns_an_alternating_pattern_bimodal_cannot(self):
        stream = [i % 2 == 0 for i in range(400)]
        gshare = GSharePredictor(table_size=16)
        bimodal = BimodalPredictor(table_size=16)
        gshare_correct = sum(
            p == t for p, t in zip(drive(gshare, stream), stream)
        )
        bimodal_correct = sum(
            p == t for p, t in zip(drive(bimodal, stream), stream)
        )
        assert gshare_correct > 390  # perfect after warmup
        assert bimodal_correct < 250  # alternation defeats counters


class TestTwoLevelLocal:
    def test_learns_a_short_period_loop(self):
        # taken,taken,taken,not-taken repeating: a 4-iteration inner loop.
        stream = ([True, True, True, False] * 100)
        model = TwoLevelLocalPredictor(table_size=16)
        predictions = drive(model, stream)
        correct = sum(p == t for p, t in zip(predictions, stream))
        assert correct > 380  # near-perfect after pattern warmup

    def test_snapshot_has_both_levels(self):
        model = TwoLevelLocalPredictor(table_size=8)
        drive(model, [True, False, True])
        histories, patterns = model.snapshot()
        assert len(histories) == 8 and len(patterns) == 8


class TestTournament:
    def test_chooser_migrates_to_the_better_component(self):
        # Alternating outcomes: gshare perfect, bimodal hopeless.  The
        # chooser must end up trusting gshare and track its predictions.
        model = TournamentPredictor(table_size=16)
        stream = [i % 2 == 0 for i in range(600)]
        drive(model, stream)
        assert model._chooser[model._slots[0]] >= 2
        assert model.predict(0) == model.gshare.predict(0)

    def test_budget_sums_components_and_chooser(self):
        model = TournamentPredictor(table_size=64)
        expected = (
            model.bimodal.budget_bits()
            + model.gshare.budget_bits()
            + 64 * 2
        )
        assert model.budget_bits() == expected


class TestBudgets:
    def test_budget_accounting(self):
        assert BimodalPredictor(table_size=1024).budget_bits() == 2048
        assert BimodalPredictor(table_size=None).budget_bits() is None
        assert GSharePredictor(table_size=1024).budget_bits() == 2048 + 10
        local = TwoLevelLocalPredictor(table_size=1024)
        assert local.budget_bits() == 1024 * 10 + 1024 * 2
        assert StaticAsDynamic(FixedPredictor(True)).budget_bits() is None

    def test_zoo_builds_every_family_at_every_size(self):
        zoo = default_zoo(table_sizes=(16, 64))
        assert [model.name for model in zoo] == [
            "bimodal@16", "bimodal@64", "gshare@16", "gshare@64",
            "local@16", "local@64", "tournament@16", "tournament@64",
        ]
        with pytest.raises(ValueError, match="unknown predictor family"):
            build_model("neural", 64)


# -- scoring against real runs -------------------------------------------------


@pytest.fixture(scope="module")
def doduc_run(runner):
    branch_table = runner.compiled("doduc").lowered.branch_table
    return runner, branch_table


class TestStaticAsDynamic:
    @pytest.mark.parametrize("predictor_dataset", ["tiny", "small"])
    def test_mispredicts_match_evaluate_static(
        self, doduc_run, predictor_dataset
    ):
        """The adapter, scored event-by-event on the live stream, must
        agree exactly with the counter arithmetic of evaluate_static."""
        runner, branch_table = doduc_run
        profile = runner.profile("doduc", predictor_dataset)
        predictor = ProfilePredictor(profile, name=predictor_dataset)
        monitor = DynamicScoreMonitor(
            [StaticAsDynamic(predictor)], branch_table
        )
        result = runner.run("doduc", "ref", monitors=[monitor])
        report = evaluate_static(result, predictor)
        score = monitor.scores(result)[0]
        assert score.mispredicted == report.mispredicted
        assert score.branch_execs == report.branch_execs
        assert score.percent_correct == report.percent_correct
        assert score.instructions_per_break == report.instructions_per_break

    def test_self_prediction_is_static_optimum(self, doduc_run):
        runner, branch_table = doduc_run
        self_profile = runner.profile("doduc", "tiny")
        cross_profile = runner.profile("doduc", "ref")
        monitor = DynamicScoreMonitor(
            [
                StaticAsDynamic(ProfilePredictor(self_profile, name="self")),
                StaticAsDynamic(ProfilePredictor(cross_profile, name="x")),
            ],
            branch_table,
        )
        runner.run("doduc", "tiny", monitors=[monitor])
        self_score, cross_score = (
            monitor.mispredicts[0], monitor.mispredicts[1]
        )
        assert self_score <= cross_score


class TestInfiniteBimodalMatchesLegacyMonitor:
    def test_same_numbers_as_online_predictor_monitor(self, doduc_run):
        """BimodalPredictor(table_size=None) must reproduce the original
        OnlinePredictorMonitor exactly (the informal experiment depends
        on it)."""
        runner, branch_table = doduc_run
        legacy_one = OnlinePredictorMonitor(num_bits=1)
        legacy_two = OnlinePredictorMonitor(num_bits=2)
        monitor = DynamicScoreMonitor(
            [
                BimodalPredictor(table_size=None, num_bits=1),
                BimodalPredictor(table_size=None, num_bits=2),
            ],
            branch_table,
        )
        result = runner.run(
            "doduc", "small", monitors=[legacy_one, legacy_two, monitor]
        )
        one, two = monitor.scores(result)
        assert one.mispredicted == legacy_one.misses
        assert two.mispredicted == legacy_two.misses
        assert one.percent_correct == legacy_one.accuracy
        assert two.percent_correct == legacy_two.accuracy

    def test_shim_still_exposes_states(self):
        monitor = OnlinePredictorMonitor(num_bits=2)
        monitor.on_run_start(3)
        monitor.on_branch(1, True, 10)
        assert monitor.states == [0, 1, 0]


class TestVacuousAccuracy:
    def test_monitor_and_report_agree_on_zero_branches(self):
        from repro.prediction.evaluate import PredictionReport

        monitor = OnlinePredictorMonitor()
        monitor.on_run_start(0)
        report = PredictionReport(
            program="p", predictor="q", instructions=10,
            branch_execs=0, mispredicted=0, unavoidable_breaks=0,
        )
        assert monitor.accuracy == report.percent_correct == 1.0

    def test_dynamic_score_agrees(self):
        from repro.dynamic.score import DynamicScore

        score = DynamicScore(
            program="p", predictor="q", table_size=64, budget_bits=128,
            instructions=10, branch_execs=0, mispredicted=0,
            unavoidable_breaks=0,
        )
        assert score.percent_correct == 1.0


class TestScoreMonitor:
    def test_rejects_mismatched_branch_table(self):
        monitor = DynamicScoreMonitor([BimodalPredictor()], ONE_BRANCH)
        with pytest.raises(ValueError, match="built for 1"):
            monitor.on_run_start(7)

    def test_counts_every_branch_event(self, doduc_run):
        runner, branch_table = doduc_run
        monitor = DynamicScoreMonitor([BimodalPredictor()], branch_table)
        result = runner.run("doduc", "tiny", monitors=[monitor])
        score = monitor.scores(result)[0]
        assert score.branch_execs == result.total_branch_execs
        assert score.unavoidable_breaks == (
            result.events.indirect_calls + result.events.indirect_returns
        )


# -- the comparison experiment -------------------------------------------------


class TestDynamicCompareExperiment:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return dynamic_compare.run(
            runner, programs=["doduc"], table_sizes=(16, 64, 256)
        )

    def test_covers_the_full_grid(self, result):
        datasets = {row.dataset for row in result.rows}
        predictors = {row.predictor for row in result.rows}
        assert datasets == {"tiny", "small", "ref"}
        assert "static-self" in predictors and "static-cross" in predictors
        # 4 families x 3 sizes + 2 static rows, for each of 3 datasets.
        assert len(result.rows) == 3 * (4 * 3 + 2)

    def test_static_self_dominates_static_cross_per_dataset(self, result):
        by_key = {
            (row.dataset, row.predictor): row for row in result.rows
        }
        for dataset in ("tiny", "small", "ref"):
            self_row = by_key[(dataset, "static-self")]
            cross_row = by_key[(dataset, "static-cross")]
            assert self_row.mispredicted <= cross_row.mispredicted

    def test_formatting(self, result):
        text = result.format_text()
        assert "Dynamic vs static prediction" in text
        assert "% correct" in text and "instrs/mispredict" in text
        assert "bimodal@16" in text and "tournament@256" in text
        chart = result.format_chart()
        assert "instrs per mispredict" in chart

    def test_single_dataset_workload_rejected(self, runner):
        with pytest.raises(ValueError, match="single dataset"):
            dynamic_compare.run(runner, programs=["tomcatv"])


def test_cli_dynamic_serial_vs_jobs2_byte_identical(
    tmp_path, capsys, monkeypatch
):
    """The acceptance gate: `repro-experiments dynamic --jobs 2` output
    must be byte-identical to the serial run."""
    from repro.experiments.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dyn-cache"))
    monkeypatch.setattr(dynamic_compare, "DEFAULT_PROGRAMS", ["doduc"])
    assert main(["dynamic", "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["dynamic"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "Dynamic vs static prediction" in parallel_out
