"""Optimizer fixpoint and invariant-preservation properties.

Two contracts:

1. ``optimize_module`` is idempotent: running the pipeline a second time
   over an already-optimized module changes nothing, byte-for-byte, for
   every registered workload under both measurement configurations.
2. Every individual pass preserves ``validate_module`` cleanliness (and
   freedom from error-severity lint findings), property-tested over seeded
   ``sourcegen.mf_module`` programs rather than hand-picked examples.
"""
import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import lint_errors
from repro.compiler import CompileOptions, compile_source
from repro.ir.printer import format_module
from repro.ir.validate import validate_module
from repro.opt.globalconst import constant_globals
from repro.opt.pipeline import OptOptions, PASSES, optimize_module
from repro.workloads.registry import all_workloads
from repro.workloads.sourcegen import mf_module


@pytest.mark.parametrize("dce", [False, True], ids=["paper", "dce"])
def test_optimize_module_twice_is_byte_identical(runner, dce):
    options = OptOptions.with_dce() if dce else OptOptions.classical()
    for workload in all_workloads():
        module = runner.compiled(workload.name, dce=dce).module
        before = format_module(module)
        clone = copy.deepcopy(module)
        optimize_module(clone, options)
        after = format_module(clone)
        assert after == before, (
            f"{workload.name}: second optimize_module run changed the IR"
        )


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_each_pass_preserves_validity(seed):
    source = mf_module(seed, functions=3)
    program = compile_source(source, options=CompileOptions.unoptimized())
    module = program.module
    options = OptOptions.classical()
    const_globals = constant_globals(module)
    for pipeline_pass in PASSES:
        if not pipeline_pass.enabled(options):
            continue
        for func in module.functions:
            pipeline_pass.run(func, const_globals)
        validate_module(module)  # raises on a structural violation
        errors = lint_errors(module)
        assert errors == [], (
            f"seed {seed}: pass {pipeline_pass.name!r} introduced "
            f"lint errors: {[str(e) for e in errors]}"
        )


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_generated_modules_optimize_idempotently(seed):
    source = mf_module(seed, functions=3)
    module = compile_source(source).module  # paper-default pipeline
    before = format_module(module)
    optimize_module(module, OptOptions.classical())
    assert format_module(module) == before


def test_mf_module_is_deterministic():
    assert mf_module(42) == mf_module(42)
    assert mf_module(42) != mf_module(43)
