"""End-to-end language semantics: compile and execute MF programs.

These are the ground-truth tests for the whole toolchain: front end,
optimizer (default configuration) and virtual machine together.
"""
import pytest

from repro.compiler import CompileOptions
from repro.vm.errors import VMError

from tests.helpers import compile_and_run, run_main

ALL_CONFIGS = [
    CompileOptions.paper_default(),
    CompileOptions.with_dce(),
    CompileOptions.unoptimized(),
]


@pytest.fixture(params=ALL_CONFIGS, ids=["default", "dce", "unopt"])
def options(request):
    """Semantics must not depend on the optimization configuration."""
    return request.param


def test_return_constant(options):
    assert run_main("func main() { return 42; }", options=options) == 42


def test_arithmetic(options):
    assert run_main(
        "func main() { return (2 + 3) * 4 - 10 / 2; }", options=options
    ) == 15


def test_c_style_division_truncates_toward_zero(options):
    assert run_main("func main() { return -7 / 2; }", options=options) == -3
    assert run_main("func main() { return 7 / -2; }", options=options) == -3
    assert run_main("func main() { return -7 % 2; }", options=options) == -1
    assert run_main("func main() { return 7 % -2; }", options=options) == 1


def test_bitwise_and_shifts(options):
    assert run_main(
        "func main() { return (12 & 10) | (1 << 4) ^ 3; }", options=options
    ) == ((12 & 10) | (1 << 4) ^ 3)
    assert run_main("func main() { return -16 >> 2; }", options=options) == -4
    assert run_main("func main() { return ~5; }", options=options) == -6


def test_comparisons_produce_zero_or_one(options):
    assert run_main("func main() { return (3 < 5) + (5 <= 5) + (6 > 9); }",
                    options=options) == 2


def test_logical_not(options):
    assert run_main("func main() { return !0 + !7; }", options=options) == 1


def test_unary_minus(options):
    assert run_main("func main() { var x = 5; return -x; }", options=options) == -5


def test_globals_and_arrays(options):
    source = """
    var g = 7;
    arr a[8] = {10, 20, 30};
    func main() {
        g = g + a[1];
        a[3] = g;
        return a[3] + a[0] + a[7];
    }
    """
    assert run_main(source, options=options) == 37


def test_while_loop(options):
    source = """
    func main() {
        var i = 0; var sum = 0;
        while (i < 10) { sum += i; i += 1; }
        return sum;
    }
    """
    assert run_main(source, options=options) == 45


def test_do_while_executes_at_least_once(options):
    source = """
    func main() {
        var n = 0;
        do { n += 1; } while (0);
        return n;
    }
    """
    assert run_main(source, options=options) == 1


def test_for_loop_with_break_and_continue(options):
    source = """
    func main() {
        var i; var sum = 0;
        for (i = 0; i < 100; i += 1) {
            if (i == 10) { break; }
            if (i % 2 == 1) { continue; }
            sum += i;
        }
        return sum;
    }
    """
    assert run_main(source, options=options) == 0 + 2 + 4 + 6 + 8


def test_nested_loops_break_binds_innermost(options):
    source = """
    func main() {
        var i; var j; var count = 0;
        for (i = 0; i < 3; i += 1) {
            for (j = 0; j < 10; j += 1) {
                if (j == 2) { break; }
                count += 1;
            }
        }
        return count;
    }
    """
    assert run_main(source, options=options) == 6


def test_short_circuit_and_skips_rhs(options):
    source = """
    var effects;
    func bump() { effects += 1; return 1; }
    func main() {
        if (0 && bump()) { return 99; }
        if (1 && bump()) { }
        return effects;
    }
    """
    assert run_main(source, options=options) == 1


def test_short_circuit_or_skips_rhs(options):
    source = """
    var effects;
    func bump() { effects += 1; return 0; }
    func main() {
        if (1 || bump()) { }
        if (0 || bump()) { return 99; }
        return effects;
    }
    """
    assert run_main(source, options=options) == 1


def test_logical_as_value(options):
    source = """
    func main() {
        var a = 3 && 0;
        var b = 3 && 2;
        var c = 0 || 0;
        var d = 0 || 9;
        return a * 1000 + b * 100 + c * 10 + d;
    }
    """
    assert run_main(source, options=options) == 101


def test_switch_dispatch_and_default(options):
    source = """
    func pick(x) {
        switch (x) {
        case 1: return 10;
        case 2, 3: return 20;
        default: return -1;
        }
    }
    func main() {
        return pick(1) * 1000 + pick(3) * 10 + (pick(9) == -1);
    }
    """
    assert run_main(source, options=options) == 10201


def test_switch_fallthrough(options):
    source = """
    func main() {
        var n = 0;
        switch (2) {
        case 1: n += 1;
        case 2: n += 10;
        case 3: n += 100;
        break;
        case 4: n += 1000;
        }
        return n;
    }
    """
    assert run_main(source, options=options) == 110


def test_switch_default_position_is_matched_last(options):
    source = """
    func main() {
        var n = 0;
        switch (5) {
        case 1: n = 1; break;
        default: n = 7; break;
        case 5: n = 5; break;
        }
        return n;
    }
    """
    assert run_main(source, options=options) == 5


def test_recursion(options):
    source = """
    func fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    func main() { return fib(12); }
    """
    assert run_main(source, options=options) == 144


def test_mutual_recursion(options):
    source = """
    func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
    func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
    func main() { return is_even(10) * 10 + is_odd(7); }
    """
    assert run_main(source, options=options) == 11


def test_indirect_call_through_variable(options):
    source = """
    func double(x) { return 2 * x; }
    func triple(x) { return 3 * x; }
    func main() {
        var f = &double;
        var a = f(10);
        f = &triple;
        return a + f(10);
    }
    """
    assert run_main(source, options=options) == 50


def test_indirect_call_through_table(options):
    source = """
    arr ops[2];
    func inc(x) { return x + 1; }
    func dec(x) { return x - 1; }
    func main() {
        ops[0] = &inc;
        ops[1] = &dec;
        return ops[0](10) * 100 + ops[1](10);
    }
    """
    assert run_main(source, options=options) == 1109


def test_indirect_calls_counted_as_events(options):
    source = """
    func f() { return 1; }
    func main() { var g = &f; return g() + g(); }
    """
    result = compile_and_run(source, options=options)
    assert result.events.indirect_calls == 2
    assert result.events.indirect_returns == 2
    assert result.events.direct_calls == 0


def test_getc_putc_roundtrip(options):
    source = """
    func main() {
        var c = getc();
        while (c != -1) {
            putc(c);
            c = getc();
        }
        return 0;
    }
    """
    result = compile_and_run(source, input_data=b"hello", options=options)
    assert result.output == b"hello"


def test_getc_returns_minus_one_at_eof(options):
    assert run_main("func main() { return getc(); }", options=options) == -1


def test_halt_stops_program(options):
    source = """
    func main() {
        putc('a');
        halt;
    }
    """
    result = compile_and_run(source, options=options)
    assert result.output == b"a"
    assert result.exit_code == 0


def test_compound_assignment_on_array_element(options):
    source = """
    arr a[4] = {5};
    func main() { a[0] *= 3; a[0] += 1; return a[0]; }
    """
    assert run_main(source, options=options) == 16


def test_function_falls_off_end_returns_zero(options):
    source = "func f() { } func main() { return f() + 5; }"
    assert run_main(source, options=options) == 5


def test_statements_after_return_are_dead(options):
    source = """
    func main() {
        return 1;
        return 2;
    }
    """
    assert run_main(source, options=options) == 1


def test_division_by_zero_raises_vmerror(options):
    with pytest.raises(VMError, match="division by zero"):
        run_main("func main() { var z = 0; return 5 / z; }", options=options)


def test_out_of_bounds_store_raises_vmerror(options):
    with pytest.raises(VMError, match="bad address"):
        run_main("arr a[2]; func main() { a[5] = 1; return 0; }", options=options)


def test_negative_index_raises_vmerror(options):
    with pytest.raises(VMError, match="bad address"):
        run_main(
            "arr a[2]; func main() { var i = -1; return a[i]; }", options=options
        )


def test_bad_indirect_target_raises_vmerror(options):
    with pytest.raises(VMError, match="indirect call"):
        run_main("func main() { var f = 999; return f(); }", options=options)


def test_select_conversion_is_semantics_preserving():
    source = """
    func main() {
        var best = 0;
        var i;
        for (i = 0; i < 10; i += 1) {
            if ((i ^ 5) > best) { best = i ^ 5; }
        }
        return best;
    }
    """
    with_select = compile_and_run(source)
    without = compile_and_run(source, options=CompileOptions(enable_select=False))
    assert with_select.exit_code == without.exit_code == 13
    assert with_select.events.selects > 0
    assert without.events.selects == 0
    # Select conversion suppresses the inner if's branch.
    assert with_select.total_branch_execs < without.total_branch_execs


def test_select_not_applied_to_division():
    # if (b != 0) x = a / b; else x = 0; must NOT evaluate a/b when b == 0.
    source = """
    func main() {
        var a = 10; var b = 0; var x;
        if (b != 0) { x = a / b; } else { x = -1; }
        return x;
    }
    """
    assert run_main(source) == -1


def test_exit_code_is_mains_return_value(options):
    assert run_main("func main() { return 123; }", options=options) == 123
