"""Break accounting and instructions-per-break tests."""
import pytest

from repro.metrics import (
    BreakPolicy,
    RunSummary,
    branch_density,
    ipb_no_prediction,
    ipb_self_prediction,
    ipb_with_predictor,
    predicted_breaks,
    unavoidable_breaks,
    unpredicted_breaks,
)
from repro.prediction import FixedPredictor

from tests.helpers import compile_and_run

MIXED = """
func helper(x) { return x + 1; }
func main() {
    var f = &helper;
    var i; var n = 0;
    for (i = 0; i < 10; i += 1) {
        n = helper(n);
        n = f(n);
    }
    return n % 256;
}
"""


def test_unavoidable_breaks_are_indirect_call_pairs():
    run = compile_and_run(MIXED)
    assert unavoidable_breaks(run) == 20  # 10 icalls + 10 ireturns


def test_unpredicted_breaks_policy():
    run = compile_and_run(MIXED)
    without_calls = unpredicted_breaks(run)
    with_calls = unpredicted_breaks(run, BreakPolicy(include_direct_calls=True))
    assert without_calls == run.total_branch_execs + 20
    assert with_calls == without_calls + 20  # 10 direct calls + 10 returns


def test_predicted_breaks_uses_mispredictions():
    run = compile_and_run(MIXED)
    assert predicted_breaks(run, mispredicted=3) == 23


def test_ipb_no_prediction_matches_definition():
    run = compile_and_run(MIXED)
    expected = run.instructions / unpredicted_breaks(run)
    assert ipb_no_prediction(run) == pytest.approx(expected)


def test_ipb_improves_with_prediction():
    run = compile_and_run(MIXED)
    assert ipb_self_prediction(run) > ipb_no_prediction(run)


def test_ipb_self_is_upper_bound():
    run = compile_and_run(MIXED)
    for predictor in (FixedPredictor(True), FixedPredictor(False)):
        assert ipb_with_predictor(run, predictor) <= ipb_self_prediction(run) + 1e-9


def test_branch_density():
    run = compile_and_run(MIXED)
    assert branch_density(run) == pytest.approx(
        run.instructions / run.total_branch_execs
    )


def test_ipb_handles_branch_free_runs():
    run = compile_and_run("func main() { return 3; }")
    assert ipb_no_prediction(run) == run.instructions
    assert ipb_self_prediction(run) == run.instructions


def test_run_summary_fields():
    run = compile_and_run(MIXED)
    summary = RunSummary.from_run(run, dataset="d0")
    assert summary.program == run.program
    assert summary.dataset == "d0"
    assert summary.instructions == run.instructions
    assert 0 <= summary.percent_taken <= 1
    assert summary.ipb_self >= summary.ipb_unpredicted
    assert summary.ipb_unpredicted_with_calls <= summary.ipb_unpredicted
