"""Trace selection and candidate-set tests."""
import pytest

from repro.compiler import compile_source
from repro.prediction.base import FixedPredictor, ProfilePredictor
from repro.profiling.branch_profile import BranchProfile
from repro.tracesched import (
    candidate_set_report,
    compare_predictors,
    expected_useful_length,
    select_traces,
    trace_instruction_counts,
)

from tests.helpers import compile_and_run

LOOP_WITH_RARE_EXIT = """
func main() {
    var i; var n = 0;
    for (i = 0; i < 100; i += 1) {
        if (i % 25 == 0) { n += 3; } else { n += 1; }
    }
    return n;
}
"""


@pytest.fixture()
def compiled():
    return compile_source(LOOP_WITH_RARE_EXIT)


@pytest.fixture()
def profile():
    return BranchProfile.from_run(compile_and_run(LOOP_WITH_RARE_EXIT))


def test_traces_partition_all_blocks(compiled, profile):
    func = compiled.module.function("main")
    traces = select_traces(func, ProfilePredictor(profile))
    covered = [label for trace in traces for label in trace.blocks]
    assert sorted(covered) == sorted(block.label for block in func.blocks)
    assert len(set(covered)) == len(covered)  # no block in two traces


def test_profile_guided_trace_follows_the_hot_path(compiled, profile):
    func = compiled.module.function("main")
    traces = select_traces(func, ProfilePredictor(profile))
    # The first trace starts at entry and runs through the loop body's
    # common (else) side.
    first = traces[0]
    assert first.blocks[0] == "entry"
    assert any("else" in label or "for.body" in label for label in first.blocks)


def test_trace_instruction_counts(compiled, profile):
    func = compiled.module.function("main")
    traces = select_traces(func, ProfilePredictor(profile))
    counts = trace_instruction_counts(func, traces)
    total = sum(len(block.instrs) for block in func.blocks)
    assert sum(counts.values()) == total


def test_expected_useful_length_bounded_by_static(compiled, profile):
    func = compiled.module.function("main")
    traces = select_traces(func, ProfilePredictor(profile))
    report = candidate_set_report(func, traces, profile)
    for expected, static in zip(report.expected_useful, report.static_lengths):
        assert 0 < expected <= static + 1e-9


def test_unknown_branches_assume_fifty_fifty(compiled):
    func = compiled.module.function("main")
    empty = BranchProfile(program="test")
    traces = select_traces(func, FixedPredictor(True))
    for trace in traces:
        value = expected_useful_length(func, trace, empty)
        assert value >= 0


def test_better_predictions_give_larger_candidate_sets(compiled, profile):
    """The paper's motivation: profile feedback lets the scheduler see
    more useful instructions than naive always-taken prediction."""
    func = compiled.module.function("main")
    reports = compare_predictors(
        func,
        profile,
        {
            "profile": ProfilePredictor(profile),
            "always-taken": FixedPredictor(True),
        },
    )
    assert (
        reports["profile"].best_expected
        >= reports["always-taken"].best_expected
    )


def test_candidate_sets_on_real_workload(runner):
    """Trace selection over the lisp interpreter's eval function."""
    compiled = runner.compiled("li")
    func = compiled.module.function("eval")
    profile = runner.profile("li", "6queens")
    traces = select_traces(func, ProfilePredictor(profile))
    report = candidate_set_report(func, traces, profile)
    assert len(traces) >= 2
    assert report.best_expected > 5
    assert report.mean_expected <= report.best_expected
