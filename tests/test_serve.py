"""Profile-feedback service tests: protocol, aggregator, metrics, server
round trips, fault injection, client resilience, runner integration, CLI.
"""
import json
import socket
import struct
import threading
import time

import pytest

from repro.ir.instructions import BranchId
from repro.prediction.combine import combine_profiles
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.serve import protocol
from repro.serve.aggregator import Aggregator, database_predict
from repro.serve.client import (
    ProfileClient,
    RetryPolicy,
    ServiceError,
    ServiceUnavailable,
)
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.server import ServerThread


def make_profile(program, counts, runs=1):
    profile = BranchProfile(program=program, runs=runs)
    for (func, index), (executed, taken) in counts.items():
        profile.counts[BranchId(func, index)] = (float(executed), float(taken))
    return profile


PROFILES = {
    "d1": {("f", 0): (10, 3), ("f", 1): (7, 7)},
    "d2": {("f", 0): (100, 90)},
    "d3": {("f", 1): (5, 1), ("g", 0): (3, 2)},
}


def upload_demo(client, program="demo"):
    for dataset, counts in PROFILES.items():
        client.upload_profile(program, dataset, make_profile(program, counts))


def demo_profiles(program="demo"):
    return [make_profile(program, PROFILES[name]) for name in sorted(PROFILES)]


@pytest.fixture()
def server():
    with ServerThread() as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ProfileClient(
        server.host, server.port, retry=RetryPolicy(attempts=2, backoff=0.01)
    ) as instance:
        yield instance


# -- protocol ------------------------------------------------------------------


def test_frame_round_trip():
    payload = protocol.request("health")
    frame = protocol.encode_frame(payload)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert protocol.decode_body(frame[4:]) == payload


def test_canonical_json_is_sorted_and_compact():
    assert protocol.canonical_json({"b": 1, "a": [1.5]}) == b'{"a":[1.5],"b":1}'


def test_oversized_frame_rejected_without_allocation():
    header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
    with pytest.raises(protocol.ProtocolError, match="cap"):
        protocol._claimed_length(header)


def test_version_check_and_unknown_op():
    with pytest.raises(protocol.ProtocolError, match="version"):
        protocol.check_version({"v": 999, "op": "health"})
    with pytest.raises(protocol.ProtocolError, match="unknown operation"):
        protocol.request("bogus")


def test_decode_body_rejects_non_objects():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"[1,2]")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"\xff\xfe")


def test_profile_wire_round_trip():
    profile = make_profile("demo", PROFILES["d1"])
    restored = protocol.profile_from_wire(protocol.profile_to_wire(profile))
    assert restored.counts == profile.counts
    assert protocol.canonical_profile_bytes(
        restored
    ) == protocol.canonical_profile_bytes(profile)
    with pytest.raises(protocol.ProtocolError):
        protocol.profile_from_wire({"program": "x"})


# -- metrics -------------------------------------------------------------------


def test_latency_histogram_percentiles():
    histogram = LatencyHistogram()
    assert histogram.percentile(0.99) is None
    for _ in range(99):
        histogram.observe(0.0005)
    histogram.observe(2.0)
    assert histogram.percentile(0.50) == pytest.approx(0.001)
    assert histogram.percentile(0.99) == pytest.approx(0.001)
    assert histogram.total == 100
    assert histogram.as_dict()["max_s"] == pytest.approx(2.0)


def test_metrics_snapshot_shape():
    metrics = ServiceMetrics(ops=["upload"])
    metrics.enter_queue()
    metrics.start_request()
    metrics.record_request("upload", 0.001, error=False)
    metrics.finish_request()
    metrics.record_request("upload", 0.002, error=True)
    snapshot = metrics.snapshot()
    assert snapshot["requests"]["upload"] == 2
    assert snapshot["errors"]["upload"] == 1
    assert snapshot["queue"] == {
        "depth": 0, "peak": 1, "inflight": 0, "inflight_peak": 1,
    }
    assert snapshot["latency"]["upload"]["count"] == 2


# -- aggregator ----------------------------------------------------------------


def test_aggregator_record_predict_and_epoch():
    aggregator = Aggregator(shards=4)
    assert aggregator.epoch == 0
    for dataset, counts in PROFILES.items():
        aggregator.record_profile("demo", dataset, make_profile("demo", counts))
    assert aggregator.epoch == 3
    profile, datasets, epoch = aggregator.predict("demo", mode="scaled")
    assert datasets == ["d1", "d2", "d3"]
    assert epoch == 3
    offline = combine_profiles(demo_profiles(), mode="scaled")
    assert protocol.canonical_profile_bytes(
        profile
    ) == protocol.canonical_profile_bytes(offline)


def test_aggregator_predict_errors():
    aggregator = Aggregator(shards=2)
    with pytest.raises(KeyError):
        aggregator.predict("missing")
    aggregator.record_profile("demo", "d1", make_profile("demo", PROFILES["d1"]))
    with pytest.raises(KeyError):
        aggregator.predict("demo", exclude="nope")
    with pytest.raises(ValueError):
        aggregator.predict("demo", exclude="d1")
    with pytest.raises(ValueError):
        aggregator.predict("demo", mode="bogus")


def test_aggregator_sharding_is_stable_and_complete():
    aggregator = Aggregator(shards=4)
    names = [f"prog{i}" for i in range(12)]
    for name in names:
        assert aggregator.shard_index(name) == aggregator.shard_index(name)
        aggregator.record_profile(name, "d", make_profile(name, PROFILES["d1"]))
    assert aggregator.programs() == sorted(names)
    shards = {aggregator.shard_index(name) for name in names}
    assert len(shards) > 1, "12 programs should spread over 4 shards"


def test_aggregator_persistence_round_trip(tmp_path):
    persist = str(tmp_path / "agg")
    aggregator = Aggregator(shards=3, persist_dir=persist)
    for dataset, counts in PROFILES.items():
        aggregator.record_profile("demo", dataset, make_profile("demo", counts))
    aggregator.record_profile("other", "d", make_profile("other", PROFILES["d2"]))
    assert aggregator.dirty_shards() >= 1
    written = aggregator.flush()
    assert written >= 1
    assert aggregator.dirty_shards() == 0
    assert aggregator.flush() == 0  # write-behind: clean shards are skipped

    reloaded = Aggregator(shards=3, persist_dir=persist)
    assert reloaded.programs() == ["demo", "other"]
    original = aggregator.predict("demo", mode="unscaled")[0]
    recovered = reloaded.predict("demo", mode="unscaled")[0]
    assert protocol.canonical_profile_bytes(
        recovered
    ) == protocol.canonical_profile_bytes(original)


def test_aggregator_stats_contents():
    aggregator = Aggregator(shards=2)
    aggregator.record_profile("demo", "d1", make_profile("demo", PROFILES["d1"]))
    stats = aggregator.stats()
    assert stats["epoch"] == 1
    entry = stats["programs"]["demo"]["datasets"]["d1"]
    assert entry["runs"] == 1
    assert entry["branch_sites"] == 2
    assert entry["total_executed"] == 17.0


# -- server round trips --------------------------------------------------------


def test_server_upload_predict_round_trip(client):
    upload_demo(client)
    for mode in ("scaled", "unscaled", "polling"):
        prediction = client.predict("demo", mode=mode)
        offline = combine_profiles(demo_profiles(), mode=mode)
        assert protocol.canonical_profile_bytes(
            prediction.profile
        ) == protocol.canonical_profile_bytes(offline), mode
        assert prediction.datasets == ["d1", "d2", "d3"]
        assert not prediction.degraded
    health = client.health()
    assert health["status"] == "ok"
    assert health["epoch"] == 3


def test_server_stats_reports_uploads_and_metrics(client):
    upload_demo(client)
    response = client.stats()
    assert response["stats"]["programs"]["demo"]["datasets"]["d2"]["runs"] == 1
    assert response["metrics"]["requests"]["upload"] == 3
    assert response["metrics"]["errors"]["upload"] == 0


def test_server_error_responses_do_not_mutate_state(client):
    upload_demo(client)
    epoch_before = client.health()["epoch"]
    # Unknown program, unknown mode, malformed profile: all answered, none
    # recorded, connection stays usable.
    with pytest.raises(ServiceError, match="no profiles"):
        client.predict("missing")
    with pytest.raises(ServiceError, match="unknown combine mode"):
        client.predict("demo", mode="bogus")
    with pytest.raises(ServiceError, match="malformed profile"):
        client.request(
            protocol.request(
                "upload", program="demo", dataset="dx", profile={"nope": 1}
            )
        )
    with pytest.raises(ServiceError, match="unknown operation"):
        client.request({"v": protocol.PROTOCOL_VERSION, "op": "explode"})
    with pytest.raises(ServiceError, match="version"):
        client.request({"v": 999, "op": "health"})
    assert client.health()["epoch"] == epoch_before
    metrics = client.stats()["metrics"]
    assert metrics["errors"]["predict"] == 2
    assert metrics["errors"]["invalid"] == 1


# -- fault injection -----------------------------------------------------------


def _raw_connect(server):
    return socket.create_connection((server.host, server.port), timeout=5.0)


def test_dropped_connection_mid_header(server, client):
    upload_demo(client)
    before = client.stats()["stats"]
    raw = _raw_connect(server)
    raw.sendall(b"\x00\x00")  # 2 of 4 header bytes
    raw.close()
    time.sleep(0.05)
    assert client.stats()["stats"] == before  # state untouched, server alive


def test_dropped_connection_mid_frame(server, client):
    upload_demo(client)
    before = client.stats()["stats"]
    raw = _raw_connect(server)
    raw.sendall(struct.pack(">I", 4096) + b'{"v":1,')  # claim 4096, send 7
    raw.close()
    time.sleep(0.05)
    assert client.stats()["stats"] == before
    assert client.health()["status"] == "ok"


def test_garbage_and_oversized_frames_cost_only_the_connection(server, client):
    upload_demo(client)
    before = client.stats()["stats"]
    garbage = _raw_connect(server)
    garbage.sendall(struct.pack(">I", 9) + b"not json!")
    assert garbage.recv(1) == b""  # server closes the poisoned connection
    garbage.close()
    oversized = _raw_connect(server)
    oversized.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
    assert oversized.recv(1) == b""
    oversized.close()
    assert client.stats()["stats"] == before
    assert client.stats()["metrics"]["protocol_errors"] >= 2


def test_slow_client_does_not_block_fast_clients(server, client):
    frame = protocol.encode_frame(
        protocol.request(
            "upload",
            program="slow",
            dataset="d",
            profile=protocol.profile_to_wire(make_profile("slow", PROFILES["d1"])),
        )
    )
    slow_response = {}

    def dribble():
        raw = _raw_connect(server)
        for index in range(0, len(frame), 16):
            raw.sendall(frame[index:index + 16])
            time.sleep(0.005)
        slow_response["payload"] = protocol.read_frame_sync(raw)
        raw.close()

    thread = threading.Thread(target=dribble)
    thread.start()
    # The fast client is served while the slow upload dribbles in.
    for _ in range(20):
        assert client.health()["status"] == "ok"
    thread.join(timeout=10.0)
    assert slow_response["payload"]["ok"] is True
    profile, _, _ = server.server.aggregator.predict("slow", mode="unscaled")
    assert profile.counts[BranchId("f", 0)] == (10.0, 3.0)


def test_backpressure_bounds_inflight_work():
    with ServerThread(max_inflight=1) as server:
        clients = [
            ProfileClient(server.host, server.port) for _ in range(4)
        ]
        errors = []

        def spam(instance):
            try:
                for _ in range(25):
                    instance.health()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=spam, args=(instance,))
            for instance in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        snapshot = server.server.metrics.snapshot()
        assert snapshot["requests"]["health"] == 100
        assert snapshot["queue"]["inflight_peak"] == 1
        for instance in clients:
            instance.close()


def test_client_retries_with_exponential_backoff():
    delays = []
    client = ProfileClient(
        "127.0.0.1", 9,  # discard port: nothing listens
        retry=RetryPolicy(attempts=4, backoff=0.05),
        sleep=delays.append,
    )
    with pytest.raises(ServiceUnavailable, match="after 4 attempts"):
        client.health()
    assert delays == [0.05, 0.1, 0.2]
    assert client.transport_failures == 4


def test_retry_policy_caps_backoff():
    policy = RetryPolicy(attempts=6, backoff=0.1, max_backoff=0.3)
    assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3, 0.3]
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)


def test_client_reconnects_after_server_restart():
    first = ServerThread().start()
    host, port = first.host, first.port
    client = ProfileClient(
        host, port, retry=RetryPolicy(attempts=8, backoff=0.05)
    )
    upload_demo(client)
    reference = protocol.canonical_profile_bytes(
        client.predict("demo").profile
    )
    first.stop()
    second = ServerThread(port=port).start()
    try:
        upload_demo(client)  # reconnects transparently on the same client
        served = protocol.canonical_profile_bytes(client.predict("demo").profile)
        assert served == reference
        assert client.transport_failures >= 1
    finally:
        client.close()
        second.stop()


def test_graceful_drain_flushes_persistence(tmp_path):
    persist = str(tmp_path / "drain")
    aggregator = Aggregator(shards=2, persist_dir=persist)
    # Long flush interval: only the drain path can have written the data.
    with ServerThread(aggregator, flush_interval=3600.0) as server:
        with ProfileClient(server.host, server.port) as client:
            upload_demo(client)
    reloaded = Aggregator(shards=2, persist_dir=persist)
    assert reloaded.programs() == ["demo"]
    assert reloaded.datasets("demo") == ["d1", "d2", "d3"]


def test_degraded_client_serves_offline_bytes():
    database = ProfileDatabase()
    client = ProfileClient(
        "127.0.0.1", 9,
        retry=RetryPolicy(attempts=2, backoff=0.01),
        fallback=database,
        sleep=lambda _: None,
    )
    upload_demo(client)  # absorbed by the fallback mirror
    prediction = client.predict("demo", mode="scaled")
    assert prediction.degraded and client.degraded
    offline = combine_profiles(demo_profiles(), mode="scaled")
    assert protocol.canonical_profile_bytes(
        prediction.profile
    ) == protocol.canonical_profile_bytes(offline)
    # health/stats have no offline analog and must still raise.
    with pytest.raises(ServiceUnavailable):
        client.health()


def test_fallback_mirror_does_not_alias_uploaded_profiles():
    database = ProfileDatabase()
    client = ProfileClient(
        "127.0.0.1", 9, retry=RetryPolicy(attempts=1),
        fallback=database, sleep=lambda _: None,
    )
    mine = make_profile("demo", PROFILES["d1"])
    client.upload_profile("demo", "d1", mine)
    mirrored = database.dataset_profile("demo", "d1")
    assert mirrored.counts == mine.counts
    assert mirrored is not mine
    mirrored.counts[BranchId("f", 0)] = (0.0, 0.0)
    assert mine.counts[BranchId("f", 0)] == (10.0, 3.0)


# -- runner integration --------------------------------------------------------


def test_runner_publish_hook_fires_once_per_triple(runner):
    published = []
    from repro.core.runner import WorkloadRunner

    publishing = WorkloadRunner(
        publish=lambda run, dataset: published.append((run.program, dataset))
    )
    publishing.run("doduc", "tiny")
    publishing.run("doduc", "tiny")  # memoized: no second publish
    publishing.run("doduc", "small")
    assert published == [("doduc", "tiny"), ("doduc", "small")]


def test_runner_publish_hook_covers_run_many(runner):
    from repro.core.parallel import RunRequest
    from repro.core.runner import WorkloadRunner

    published = []
    publishing = WorkloadRunner(
        publish=lambda run, dataset: published.append((run.program, dataset))
    )
    requests = [
        RunRequest("doduc", name) for name in ("tiny", "small", "ref")
    ]
    publishing.run_many(requests)
    publishing.run_many(requests)  # second sweep is fully memoized
    publishing.run("doduc", "ref")
    assert sorted(published) == [
        ("doduc", "ref"), ("doduc", "small"), ("doduc", "tiny"),
    ]


def test_runner_monitored_runs_are_not_published(runner):
    from repro.core.runner import WorkloadRunner
    from repro.vm.monitors import OutcomeRecorder

    published = []
    publishing = WorkloadRunner(
        publish=lambda run, dataset: published.append(dataset)
    )
    publishing.run("doduc", "tiny", monitors=(OutcomeRecorder(),))
    assert published == []


def test_server_aggregation_matches_offline_database(runner):
    """Publishing runs through the hook accumulates exactly what an
    offline ProfileDatabase would."""
    offline = ProfileDatabase()
    with ServerThread() as server:
        with ProfileClient(server.host, server.port) as client:
            from repro.core.runner import WorkloadRunner

            publishing = WorkloadRunner(publish=client.publisher())
            for dataset, result in publishing.run_all("doduc").items():
                offline.record(result, dataset)
            for mode in ("scaled", "unscaled", "polling"):
                served = client.predict("doduc", mode=mode).profile
                local, _ = database_predict(offline, "doduc", mode=mode)
                assert protocol.canonical_profile_bytes(
                    served
                ) == protocol.canonical_profile_bytes(local), mode


# -- CLI -----------------------------------------------------------------------


def test_cli_parse_server_validation():
    from repro.serve.cli import _parse_server

    assert _parse_server("127.0.0.1:7381") == ("127.0.0.1", 7381)
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parse_server("no-port")
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_server(":123")


def test_cli_round_trip_against_live_server(runner, capsys):
    from repro.serve.cli import main

    with ServerThread() as server:
        address = f"{server.host}:{server.port}"
        assert main([
            "upload-sweep", "--server", address, "--workloads", "doduc",
        ]) == 0
        out = capsys.readouterr().out
        assert "uploaded doduc/tiny" in out
        assert "3 uploads" in out
        assert main([
            "predict", "--server", address, "--program", "doduc",
            "--exclude", "ref", "--verify-offline",
        ]) == 0
        captured = capsys.readouterr()
        assert "served bytes == offline bytes" in captured.err
        served = json.loads(captured.out)
        assert served["program"] == "doduc"
        assert main(["stats", "--server", address, "--metrics"]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["requests"]["upload"] == 3
        assert main(["health", "--server", address]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"


def test_cli_upload_sweep_rejects_empty_workloads(capsys):
    from repro.serve.cli import main

    assert main(["upload-sweep", "--workloads", ",", "--server", "x:1"]) == 2
