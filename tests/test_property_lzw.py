"""Property test: the MF compress workload is a correct LZW codec.

For arbitrary byte strings, decompressing the compressed stream must return
the original — executing both directions inside the VM.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.vm.machine import run_program
from repro.workloads.base import load_program_source

_PROGRAM = None


def _program():
    global _PROGRAM
    if _PROGRAM is None:
        _PROGRAM = compile_source(
            load_program_source("compress.mf"), name="compress"
        ).lowered
    return _PROGRAM


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=60, deadline=None)
def test_lzw_round_trip(data):
    compressed = run_program(_program(), input_data=b"C" + data).output
    restored = run_program(_program(), input_data=b"D" + compressed).output
    assert restored == data


@given(st.integers(min_value=1, max_value=5), st.binary(min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_lzw_round_trip_repetitive(repeats, unit):
    # Highly repetitive inputs exercise the KwKwK special case.
    data = unit * (repeats * 40)
    compressed = run_program(_program(), input_data=b"C" + data).output
    restored = run_program(_program(), input_data=b"D" + compressed).output
    assert restored == data
    assert len(compressed) < len(data)  # repetition must actually compress
