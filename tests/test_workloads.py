"""Workload integrity: every Table 2 analog compiles, runs, and behaves."""
import pytest

from repro.compiler import compile_source
from repro.workloads import (
    FORTRAN,
    all_workloads,
    get_workload,
    multi_dataset_workloads,
    workload_names,
)

EXPECTED_NAMES = [
    "spice2g6", "doduc", "nasa7", "matrix300", "fpppp", "tomcatv", "lfk",
    "gcc", "espresso", "li", "eqntott", "compress", "uncompress", "mfcom",
    "spiff",
]


def test_registry_has_all_table2_programs():
    assert workload_names() == EXPECTED_NAMES


def test_unknown_workload_raises():
    from repro.workloads.registry import get_workload as get

    with pytest.raises(KeyError, match="unknown workload"):
        get("nonesuch")


def test_workloads_are_cached_by_registry():
    assert get_workload("lfk") is get_workload("lfk")


def test_every_workload_compiles():
    for workload in all_workloads():
        compiled = compile_source(workload.source, name=workload.name)
        assert compiled.lowered.functions, workload.name


def test_dataset_generation_is_deterministic():
    for name in ("gcc", "espresso", "spice2g6", "spiff"):
        first = get_workload(name)
        # Bypass the registry cache to rebuild from scratch.
        from repro.workloads.registry import _factories

        rebuilt = _factories()[name]()
        for a, b in zip(first.datasets, rebuilt.datasets):
            assert a.name == b.name
            assert a.data == b.data


def test_paper_dataset_names_present():
    spice = get_workload("spice2g6")
    for expected in ("circuit1", "circuit5", "add_bjt", "add_fet",
                     "greysmall", "greybig"):
        assert expected in spice.dataset_names()
    assert get_workload("eqntott").dataset_names() == [
        "add4", "add5", "add6", "intpri",
    ]
    assert get_workload("compress").dataset_names() == (
        get_workload("uncompress").dataset_names()
    )


def test_categories():
    categories = {wl.name: wl.category for wl in all_workloads()}
    assert categories["spice2g6"] == FORTRAN
    assert categories["tomcatv"] == FORTRAN
    assert categories["li"] != FORTRAN


def test_multi_dataset_workloads_have_two_plus():
    multis = multi_dataset_workloads()
    assert all(len(wl.datasets) >= 2 for wl in multis)
    names = {wl.name for wl in multis}
    assert "spice2g6" in names and "tomcatv" not in names


def test_dataset_lookup_errors():
    with pytest.raises(KeyError):
        get_workload("lfk").dataset("nonesuch")


class TestWorkloadBehaviour:
    """Selected output correctness (the analogs compute real answers)."""

    def test_li_queens_solution_counts(self, runner):
        assert runner.run("li", "5queens").output == b"10\n"
        assert runner.run("li", "6queens").output == b"4\n"

    def test_li_sieve_counts_primes(self, runner):
        # pi(519) = 97 primes below the sieve limit of 520.
        assert runner.run("li", "sieve1").output == b"97\n"

    def test_compress_roundtrip_through_uncompress(self, runner):
        compress = get_workload("compress")
        uncompress = get_workload("uncompress")
        for name in compress.dataset_names():
            plain = compress.dataset(name).data[1:]  # strip mode byte
            decompressed = runner.run("uncompress", name).output
            assert decompressed == plain, name

    def test_all_runs_exit_cleanly(self, runner):
        for workload in all_workloads():
            for dataset in workload.dataset_names():
                result = runner.run(workload.name, dataset)
                assert result.exit_code == 0, (workload.name, dataset)
                assert result.instructions > 1000, (workload.name, dataset)
                assert result.total_branch_execs > 0, (workload.name, dataset)

    def test_dce_preserves_output_everywhere(self, runner):
        for workload in all_workloads():
            for dataset in workload.dataset_names():
                default = runner.run(workload.name, dataset)
                dce = runner.run(workload.name, dataset, dce=True)
                assert default.output == dce.output, (workload.name, dataset)
                assert dce.instructions <= default.instructions

    def test_fpppp_has_sparse_branches_li_dense(self, runner):
        from repro.metrics import branch_density

        fpppp = branch_density(runner.run("fpppp", "8atoms"))
        li = branch_density(runner.run("li", "6queens"))
        # The paper's motivating contrast: li branches every ~10
        # instructions, fpppp every ~170.
        assert li < 15
        assert fpppp > 100

    def test_direct_calls_heavy_in_li(self, runner):
        result = runner.run("li", "sieve1")
        assert result.events.direct_calls > 1000

    def test_indirect_calls_exercised_by_spice(self, runner):
        # spice registers device setup hooks through a function table; each
        # device's setup is an indirect call (an unavoidable break).
        result = runner.run("spice2g6", "add_bjt")
        assert result.events.indirect_calls > 0
        assert result.events.indirect_returns == result.events.indirect_calls
