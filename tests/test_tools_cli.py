"""Tests for the repro-mf user-interface tool (the paper's missing piece)."""
import json
import os

import pytest

from repro.tools.cli import main

PROGRAM = """
arr counts[26];
func main() {
    var c = getc();
    while (c != -1) {
        if (c >= 'a' && c <= 'z') { counts[c - 'a'] += 1; }
        c = getc();
    }
    var i; var best = 0; var besti = 0;
    for (i = 0; i < 26; i += 1) {
        if (counts[i] > best) { best = counts[i]; besti = i; }
    }
    putc('a' + besti);
    return 0;
}
"""


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    program = tmp_path / "histogram.mf"
    program.write_text(PROGRAM)
    (tmp_path / "d1.txt").write_bytes(b"the quick brown fox jumps over the lazy dog")
    (tmp_path / "d2.txt").write_bytes(b"sphinx of black quartz judge my vow")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_run_prints_output_and_exit_code(workdir, capsysbinary):
    code = main(["run", "histogram.mf", "--input", "d1.txt"])
    assert code == 0
    assert capsysbinary.readouterr().out == b"o"


def test_run_stats_on_stderr(workdir, capsys):
    main(["run", "histogram.mf", "--input", "d1.txt", "--stats"])
    err = capsys.readouterr().err
    assert "instructions:" in err
    assert "instrs/break (self):" in err


def test_profile_accumulates_database(workdir, capsys):
    assert main(["profile", "histogram.mf", "--dataset", "d1",
                 "--input", "d1.txt", "--db", "prof.json"]) == 0
    assert main(["profile", "histogram.mf", "--dataset", "d1",
                 "--input", "d1.txt", "--db", "prof.json"]) == 0
    with open("prof.json") as handle:
        data = json.load(handle)
    (entry,) = data["entries"]
    assert entry["dataset"] == "d1"
    assert entry["profile"]["runs"] == 2


def test_report_lists_datasets(workdir, capsys):
    main(["profile", "histogram.mf", "--dataset", "d1",
          "--input", "d1.txt", "--db", "prof.json"])
    main(["profile", "histogram.mf", "--dataset", "d2",
          "--input", "d2.txt", "--db", "prof.json"])
    capsys.readouterr()
    assert main(["report", "--db", "prof.json"]) == 0
    out = capsys.readouterr().out
    assert "histogram:" in out and "d1" in out and "d2" in out


def test_feedback_and_predict_round_trip(workdir, capsys):
    main(["profile", "histogram.mf", "--dataset", "d1",
          "--input", "d1.txt", "--db", "prof.json"])
    assert main(["feedback", "histogram.mf", "--db", "prof.json",
                 "-o", "fb.mf"]) == 0
    assert os.path.exists("fb.mf")
    assert "IFPROB" in open("fb.mf").read()
    capsys.readouterr()
    # Predicting from the directives embedded in the feedback source.
    assert main(["predict", "fb.mf", "--input", "d2.txt"]) == 0
    out = capsys.readouterr().out
    assert "predicted correctly" in out
    assert "IFPROB directives in source" in out


def test_predict_from_database(workdir, capsys):
    main(["profile", "histogram.mf", "--dataset", "d1",
          "--input", "d1.txt", "--db", "prof.json"])
    capsys.readouterr()
    assert main(["predict", "histogram.mf", "--input", "d2.txt",
                 "--db", "prof.json"]) == 0
    assert "database prof.json" in capsys.readouterr().out


def test_predict_without_profile_fails(workdir, capsys):
    code = main(["predict", "histogram.mf", "--input", "d1.txt"])
    assert code == 1
    assert "no --db" in capsys.readouterr().err


def test_feedback_for_unknown_program_fails(workdir, capsys):
    main(["profile", "histogram.mf", "--dataset", "d1",
          "--input", "d1.txt", "--db", "prof.json"])
    other = workdir / "other.mf"
    other.write_text("func main() { return 0; }")
    code = main(["feedback", "other.mf", "--db", "prof.json"])
    assert code == 1


def test_run_exit_code_propagates(workdir, capsysbinary):
    program = workdir / "seven.mf"
    program.write_text("func main() { return 7; }")
    assert main(["run", "seven.mf"]) == 7


def test_compile_flags_accepted(workdir, capsysbinary):
    assert main(["run", "histogram.mf", "--input", "d1.txt",
                 "--dce", "--inline", "--ifconvert"]) == 0
    assert capsysbinary.readouterr().out == b"o"


def test_dynsim_scores_the_zoo(workdir, capsys):
    assert main(["dynsim", "histogram.mf", "--input", "d1.txt",
                 "--table-size", "16", "--table-size", "64"]) == 0
    out = capsys.readouterr().out
    assert "branch executions" in out
    for name in ("bimodal@16", "gshare@64", "local@16", "tournament@64"):
        assert name in out
    assert "bimodal@1024" not in out  # only the requested sizes


def test_dynsim_with_profile_database(workdir, capsys):
    main(["profile", "histogram.mf", "--dataset", "d1",
          "--input", "d1.txt", "--db", "prof.json"])
    capsys.readouterr()
    assert main(["dynsim", "histogram.mf", "--input", "d2.txt",
                 "--db", "prof.json"]) == 0
    out = capsys.readouterr().out
    assert "static-feedback" in out and "bimodal@256" in out


def test_dynsim_rejects_bad_table_size(workdir, capsys):
    assert main(["dynsim", "histogram.mf", "--input", "d1.txt",
                 "--table-size", "100"]) == 1
    assert "power of two" in capsys.readouterr().err


def test_disasm_subcommand(workdir, capsys):
    assert main(["disasm", "histogram.mf"]) == 0
    out = capsys.readouterr().out
    assert "func main" in out
    assert "br " in out and "main#0" in out
