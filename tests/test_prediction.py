"""Predictor and evaluation tests."""
import pytest

from repro.compiler import compile_source
from repro.ir.instructions import BranchId
from repro.prediction import (
    FixedPredictor,
    LoopHeuristicPredictor,
    OpcodeHeuristicPredictor,
    ProfilePredictor,
    combine_profiles,
    evaluate_static,
    leave_one_out,
    self_prediction,
)
from repro.profiling import BranchProfile

from tests.helpers import compile_and_run

BIASED_LOOP = """
func main() {
    var i; var n = 0;
    for (i = 0; i < 20; i += 1) {
        if (i % 4 == 0) { n += 1; }
    }
    return n;
}
"""


def make_profile(counts):
    profile = BranchProfile(program="p")
    for (func, index), (executed, taken) in counts.items():
        profile.counts[BranchId(func, index)] = (float(executed), float(taken))
    return profile


def test_profile_predictor_majority():
    profile = make_profile({("f", 0): (10, 9), ("f", 1): (10, 2)})
    predictor = ProfilePredictor(profile)
    assert predictor.predict(BranchId("f", 0)) is True
    assert predictor.predict(BranchId("f", 1)) is False


def test_profile_predictor_default_for_unseen():
    profile = make_profile({})
    assert ProfilePredictor(profile).predict(BranchId("f", 0)) is False
    assert ProfilePredictor(profile, default=True).predict(BranchId("f", 0)) is True


def test_fixed_predictors():
    assert FixedPredictor(True).predict(BranchId("f", 0)) is True
    assert FixedPredictor(False).predict(BranchId("f", 0)) is False


def test_evaluate_static_counts_mispredictions():
    run = compile_and_run(BIASED_LOOP)
    # Predict everything taken: loop branch right 20/21, inner right 5/20.
    report = evaluate_static(run, FixedPredictor(True))
    assert report.mispredicted == 1 + 15
    report_nt = evaluate_static(run, FixedPredictor(False))
    assert report_nt.mispredicted == 20 + 5


def test_self_prediction_is_a_lower_bound_on_misses():
    run = compile_and_run(BIASED_LOOP)
    best = self_prediction(run)
    assert best.mispredicted == 1 + 5  # loop exit + taken minority
    for predictor in (FixedPredictor(True), FixedPredictor(False)):
        assert evaluate_static(run, predictor).mispredicted >= best.mispredicted


def test_report_properties():
    run = compile_and_run(BIASED_LOOP)
    report = self_prediction(run)
    assert report.branch_execs == 41
    assert report.correct == 41 - 6
    assert report.percent_correct == pytest.approx(35 / 41)
    assert report.breaks == report.mispredicted  # no indirect calls here
    assert report.instructions_per_break == pytest.approx(
        run.instructions / 6
    )


def test_loop_heuristic_predicts_backedges_taken():
    program = compile_source(BIASED_LOOP)
    run = compile_and_run(BIASED_LOOP)
    heuristic = LoopHeuristicPredictor(program.module)
    # Loop branch (index 0) predicted taken; inner if (index 1) not-taken.
    assert heuristic.predict(BranchId("main", 0)) is True
    assert heuristic.predict(BranchId("main", 1)) is False
    report = evaluate_static(run, heuristic)
    assert report.mispredicted == 1 + 5  # as good as self-prediction here


def test_opcode_heuristic_uses_comparison():
    source = """
    func main() {
        var i; var n = 0;
        for (i = 0; i < 10; i += 1) {
            if (i == 3) { n += 1; }
            if (i != 3) { n += 1; }
        }
        return n;
    }
    """
    program = compile_source(source)
    heuristic = OpcodeHeuristicPredictor(program.module)
    branch_ids = sorted(program.module.branch_ids())
    directions = [heuristic.predict(bid) for bid in branch_ids]
    # for-loop i<10 -> taken; == -> not-taken; != -> taken.
    assert directions == [True, False, True]


def test_combine_unscaled_sums_counts():
    a = make_profile({("f", 0): (100, 90)})
    b = make_profile({("f", 0): (10, 1)})
    combined = combine_profiles([a, b], mode="unscaled")
    assert combined.counts[BranchId("f", 0)] == (110.0, 91.0)
    assert combined.direction(BranchId("f", 0)) is True


def test_combine_scaled_gives_equal_weight():
    # Unscaled, the huge dataset wins; scaled, both count equally and the
    # small dataset's strong bias flips the majority.
    a = make_profile({("f", 0): (1000, 550)})   # weak taken bias, huge
    b = make_profile({("f", 0): (10, 0)})       # strong not-taken bias, tiny
    unscaled = combine_profiles([a, b], mode="unscaled")
    scaled = combine_profiles([a, b], mode="scaled")
    assert unscaled.direction(BranchId("f", 0)) is True
    assert scaled.direction(BranchId("f", 0)) is False


def test_combine_polling_one_vote_each():
    a = make_profile({("f", 0): (1000, 900)})
    b = make_profile({("f", 0): (10, 1)})
    c = make_profile({("f", 0): (10, 1)})
    polled = combine_profiles([a, b, c], mode="polling")
    assert polled.counts[BranchId("f", 0)] == (3.0, 1.0)
    assert polled.direction(BranchId("f", 0)) is False


def test_combine_runs_accounting_consistent_across_modes():
    """``runs`` is the total underlying runs of the contributing profiles
    in *every* mode — polling used to report the profile count instead,
    and scaled/unscaled silently included empty profiles."""
    a = make_profile({("f", 0): (10, 9)})
    a.runs = 3
    b = make_profile({("f", 0): (10, 1)})
    b.runs = 2
    for mode in ("scaled", "unscaled", "polling"):
        assert combine_profiles([a, b], mode=mode).runs == 5, mode


def test_combine_skips_empty_profiles_deliberately():
    empty = make_profile({("g", 7): (0, 0)})
    empty.runs = 4
    loaded = make_profile({("f", 0): (10, 9)})
    loaded.runs = 1
    for mode in ("scaled", "unscaled", "polling"):
        combined = combine_profiles([loaded, empty], mode=mode)
        # The empty profile contributes neither runs nor branch sites.
        assert combined.runs == 1, mode
        assert BranchId("g", 7) not in combined, mode
        assert BranchId("f", 0) in combined, mode


def test_combine_on_empty_error_surfaces_empty_profiles():
    empty = make_profile({})
    loaded = make_profile({("f", 0): (10, 9)})
    with pytest.raises(ValueError, match="no branch executions"):
        combine_profiles([loaded, empty], mode="scaled", on_empty="error")
    with pytest.raises(ValueError):
        combine_profiles([loaded], on_empty="bogus")


def test_combine_all_empty_returns_empty_summary():
    combined = combine_profiles([make_profile({})], mode="scaled")
    assert len(combined) == 0
    assert combined.runs == 0


def test_leave_one_out_passes_on_empty_through():
    profiles = [
        make_profile({("f", 0): (10, 10)}),
        make_profile({}),
        make_profile({("f", 0): (10, 0)}),
    ]
    with pytest.raises(ValueError, match="no branch executions"):
        leave_one_out(profiles, exclude_index=2, on_empty="error")
    loo = leave_one_out(profiles, exclude_index=2, mode="unscaled")
    assert loo.counts[BranchId("f", 0)] == (10.0, 10.0)


def test_combine_rejects_bad_mode_and_empty():
    with pytest.raises(ValueError):
        combine_profiles([], mode="scaled")
    with pytest.raises(ValueError):
        combine_profiles([make_profile({})], mode="bogus")


def test_leave_one_out_excludes_target():
    profiles = [
        make_profile({("f", 0): (10, 10)}),
        make_profile({("f", 0): (10, 0)}),
        make_profile({("f", 0): (10, 10)}),
    ]
    loo = leave_one_out(profiles, exclude_index=1, mode="unscaled")
    assert loo.counts[BranchId("f", 0)] == (20.0, 20.0)


def test_leave_one_out_needs_two_profiles():
    with pytest.raises(ValueError):
        leave_one_out([make_profile({})], exclude_index=0)
