"""The serve differential gate: served bytes == offline bytes.

Three layers:

* a hypothesis property test — for random profile sets, ``predict`` over
  the wire equals ``combine_profiles``/``leave_one_out`` bit-for-bit in
  all three modes;
* the full bundled sweep — every workload x dataset x combine mode,
  leave-one-out and all-datasets, through a live server;
* the degradation gate — a client whose server vanished serves the same
  bytes from its offline fallback mirror.

Offline profiles are always combined in sorted dataset-name order; that
is the service's documented iteration order (``ProfileDatabase.datasets``
sorts), and float summation is order-sensitive, so the gate pins it.
"""
import pytest

from repro.ir.instructions import BranchId
from repro.prediction.combine import combine_profiles, leave_one_out
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.database import ProfileDatabase
from repro.serve.client import ProfileClient, RetryPolicy
from repro.serve.protocol import canonical_profile_bytes
from repro.serve.server import ServerThread
from repro.workloads.registry import all_workloads

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

MODES = ("scaled", "unscaled", "polling")


@pytest.fixture(scope="module")
def live():
    """One server + client shared by the module; programs are namespaced
    per test so uploads never collide."""
    with ServerThread() as server:
        with ProfileClient(
            server.host, server.port, retry=RetryPolicy(attempts=2)
        ) as client:
            yield client


def profiles_from_counts(program, datasets):
    profiles = []
    for counts in datasets:
        profile = BranchProfile(program=program, runs=1)
        for (func, index), (executed, taken) in counts.items():
            profile.counts[BranchId(func, index)] = (
                float(executed), float(taken),
            )
        profiles.append(profile)
    return profiles


branch_ids = st.tuples(
    st.sampled_from(["f", "g", "loop"]), st.integers(0, 5)
)
branch_counts = st.integers(0, 10**6).flatmap(
    lambda executed: st.tuples(
        st.just(executed), st.integers(0, executed)
    )
)
dataset_counts = st.dictionaries(branch_ids, branch_counts, max_size=8)
profile_sets = st.lists(dataset_counts, min_size=2, max_size=5)

_counter = [0]


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(datasets=profile_sets)
def test_wire_predictions_equal_offline_combining(live, datasets):
    _counter[0] += 1
    program = f"hyp{_counter[0]}"
    profiles = profiles_from_counts(program, datasets)
    names = [f"d{index}" for index in range(len(profiles))]
    for name, profile in zip(names, profiles):
        live.upload_profile(program, name, profile)
    for mode in MODES:
        served = live.predict(program, mode=mode).profile
        offline = combine_profiles(profiles, mode=mode)
        assert canonical_profile_bytes(served) == canonical_profile_bytes(
            offline
        ), mode
        for index, name in enumerate(names):
            served_loo = live.predict(program, mode=mode, exclude=name).profile
            offline_loo = leave_one_out(profiles, index, mode=mode)
            assert canonical_profile_bytes(
                served_loo
            ) == canonical_profile_bytes(offline_loo), (mode, name)


def test_every_bundled_workload_round_trips_bit_for_bit(runner, live):
    """The acceptance gate: every workload x dataset x combine mode,
    served over the socket == offline combine_profiles/leave_one_out."""
    for workload in all_workloads():
        names = sorted(workload.dataset_names())
        profiles = []
        for name in names:
            result = runner.run(workload.name, name)
            profile = BranchProfile.from_run(result)
            live.upload_run(result, name)
            profiles.append(profile)
        for mode in MODES:
            served = live.predict(workload.name, mode=mode)
            assert served.datasets == names
            offline = combine_profiles(profiles, mode=mode)
            assert canonical_profile_bytes(
                served.profile
            ) == canonical_profile_bytes(offline), (workload.name, mode)
            if len(names) < 2:
                continue
            for index, name in enumerate(names):
                served_loo = live.predict(
                    workload.name, mode=mode, exclude=name
                ).profile
                offline_loo = leave_one_out(profiles, index, mode=mode)
                assert canonical_profile_bytes(
                    served_loo
                ) == canonical_profile_bytes(offline_loo), (
                    workload.name, mode, name,
                )


def test_unreachable_server_degrades_to_identical_bytes(runner):
    """The client fallback gate: with the server gone, predictions come
    from the local mirror — and they are the same bytes the live server
    served for the same uploads."""
    workload = "doduc"
    runs = {
        name: runner.run(workload, name)
        for name in sorted(runner.workload(workload).dataset_names())
    }

    served = {}
    with ServerThread() as server:
        with ProfileClient(server.host, server.port) as online:
            for name, result in runs.items():
                online.upload_run(result, name)
            for mode in MODES:
                served[mode] = canonical_profile_bytes(
                    online.predict(workload, mode=mode).profile
                )
                served[mode, "tiny"] = canonical_profile_bytes(
                    online.predict(workload, mode=mode, exclude="tiny").profile
                )

    offline = ProfileClient(
        "127.0.0.1", 9,  # nothing listens here
        retry=RetryPolicy(attempts=2, backoff=0.01),
        fallback=ProfileDatabase(),
        sleep=lambda _: None,
    )
    for name, result in runs.items():
        assert offline.upload_run(result, name) is None
    for mode in MODES:
        degraded = offline.predict(workload, mode=mode)
        assert degraded.degraded
        assert canonical_profile_bytes(degraded.profile) == served[mode], mode
        degraded_loo = offline.predict(workload, mode=mode, exclude="tiny")
        assert canonical_profile_bytes(
            degraded_loo.profile
        ) == served[mode, "tiny"], mode
