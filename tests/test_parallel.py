"""Parallel runner tests: equivalence, error isolation, jobs resolution."""
import os

import pytest

from repro.core.cache import run_result_to_dict
from repro.core.parallel import (
    ParallelExecutionError,
    RunFailure,
    RunRequest,
    dataset_requests,
    resolve_jobs,
)
from repro.core.runner import RunConfig, WorkloadRunner

#: A small sweep spanning three workloads (fast to simulate cold).
SWEEP = [
    RunRequest("doduc", "tiny"),
    RunRequest("doduc", "small"),
    RunRequest("lfk", "default"),
    RunRequest("spice2g6", "circuit2"),
]


def _dicts(results):
    return [run_result_to_dict(result) for result in results]


def test_serial_and_parallel_results_identical(tmp_path):
    serial = WorkloadRunner(cache_dir=str(tmp_path / "serial"))
    fanout = WorkloadRunner(cache_dir=str(tmp_path / "fanout"), jobs=2)
    assert _dicts(serial.run_many(SWEEP)) == _dicts(fanout.run_many(SWEEP))


def test_run_many_memoizes_like_run(tmp_path):
    runner = WorkloadRunner(cache_dir=str(tmp_path), jobs=2)
    results = runner.run_many(SWEEP)
    # Later single runs are served from the same memo objects.
    assert runner.run("doduc", "tiny") is results[0]
    assert runner.run("lfk", "default") is results[2]


def test_run_many_preserves_request_order_and_duplicates(tmp_path):
    runner = WorkloadRunner(cache_dir=str(tmp_path), jobs=2)
    doubled = SWEEP + [SWEEP[0]]
    results = runner.run_many(doubled)
    assert len(results) == len(doubled)
    assert results[-1] is results[0]


def test_error_isolation_bad_triple_does_not_poison_batch(tmp_path):
    runner = WorkloadRunner(cache_dir=str(tmp_path), jobs=2)
    requests = SWEEP + [RunRequest("doduc", "nope")]
    with pytest.raises(ParallelExecutionError) as info:
        runner.run_many(requests)
    assert "doduc/nope" in str(info.value)
    assert len(info.value.failures) == 1
    # The good triples completed and were memoized despite the failure.
    for request in SWEEP:
        assert request.key() in runner._runs


def test_error_capture_mode_returns_failures_in_place(tmp_path):
    runner = WorkloadRunner(cache_dir=str(tmp_path), jobs=2)
    requests = [RunRequest("no-such-workload", "x")] + SWEEP
    results = runner.run_many(requests, on_error="capture")
    assert isinstance(results[0], RunFailure)
    assert "no-such-workload" in results[0].summary()
    assert not any(isinstance(result, RunFailure) for result in results[1:])


def test_run_many_rejects_unknown_on_error_mode(tmp_path):
    runner = WorkloadRunner(cache_dir=str(tmp_path))
    with pytest.raises(ValueError, match="on_error"):
        runner.run_many(SWEEP, on_error="ignore")


def test_disabled_disk_cache_falls_back_to_in_process():
    runner = WorkloadRunner(cache_dir=None, jobs=2)
    results = runner.run_many(SWEEP[:2])
    assert results[0].instructions > 0
    assert results[1].instructions > 0


def test_run_all_routes_through_batch_when_parallel(tmp_path):
    serial = WorkloadRunner(cache_dir=str(tmp_path / "serial"))
    fanout = WorkloadRunner(cache_dir=str(tmp_path / "fanout"), jobs=2)
    serial_runs = serial.run_all("doduc")
    fanout_runs = fanout.run_all("doduc")
    assert list(serial_runs) == list(fanout_runs)
    assert _dicts(serial_runs.values()) == _dicts(fanout_runs.values())


def test_dataset_requests_expands_configs(runner):
    workload = runner.workload("doduc")
    configs = (RunConfig(), RunConfig(dce=True))
    requests = dataset_requests([workload], configs=configs)
    assert len(requests) == 2 * len(workload.dataset_names())
    assert {request.config for request in requests} == set(configs)


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_var_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4
        assert WorkloadRunner(cache_dir=None).jobs == 4

    def test_blank_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "two")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)
        with pytest.raises(ValueError, match=">= 0"):
            resolve_jobs(-1)


def test_cli_jobs_output_matches_serial(tmp_path, capsys, monkeypatch):
    from repro.experiments.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    assert main(["table3", "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["table3"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "Table 3" in parallel_out
