"""Disassembler and suite-overview tests."""
from repro.compiler import compile_source
from repro.ir.disasm import disassemble, disassemble_function
from repro.experiments import overview


def test_disassemble_covers_every_opcode_family():
    source = """
    var g;
    arr buf[4];
    func f(x) { return x * 2; }
    func main() {
        var p = &f;
        buf[0] = getc();
        g = p(buf[0]);
        putc(g & 255);
        var t;
        if (g > 3) { t = 1; } else { t = 2; }
        while (t > 0) { t -= 1; }
        switch (g) { case 1: halt; }
        return f(t);
    }
    """
    program = compile_source(source)
    text = disassemble(program.lowered)
    for fragment in (
        "program", ".data g", ".data buf", "func f", "func main",
        "const", "load", "store", "getc", "putc", "icall", "call",
        "select", "br", "ret", "halt",
    ):
        assert fragment in text, fragment


def test_disassemble_marks_branch_targets():
    program = compile_source(
        "func main() { var i = 0; while (i < 3) { i += 1; } return i; }"
    )
    text = disassemble_function(program.lowered, program.lowered.functions[0])
    assert "@" in text


def test_overview_covers_every_run(runner):
    result = overview.run(runner)
    from repro.workloads import all_workloads

    expected = sum(len(wl.datasets) for wl in all_workloads())
    assert len(result.rows) == expected
    assert result.total_instructions() > 50_000_000
    li = result.find("li", "6queens")
    assert li.branch_density < 15
    assert "Suite overview" in result.format_text()
