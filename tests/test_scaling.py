"""Dataset-scale experiment tests."""
import pytest

from repro.experiments import scaling


@pytest.fixture(scope="module")
def result(runner):
    return scaling.run(runner)


def test_pair_count_matches_coverage_pairs(runner, result):
    from repro.workloads import multi_dataset_workloads

    expected = sum(
        len(wl.datasets) * (len(wl.datasets) - 1)
        for wl in multi_dataset_workloads()
    )
    assert len(result.pairs) == expected


def test_length_ratios_are_reciprocal(result):
    by_key = {
        (pair.workload, pair.predictor, pair.target): pair.length_ratio
        for pair in result.pairs
    }
    for (workload, predictor, target), ratio in by_key.items():
        assert by_key[(workload, target, predictor)] == pytest.approx(
            1.0 / ratio
        )


def test_spice_worst_case_is_dramatic(result):
    worst = result.worst_spice_pair()
    assert worst.quality < 0.4


def test_short_run_predicting_long_run_is_among_spice_worst(result):
    """The paper's observation, compressed: predicting a much longer run
    with a much shorter one shows up among spice's bad pairs."""
    bad = [pair for pair in result.spice_pairs() if pair.quality < 0.35]
    assert any(pair.length_ratio > 10 for pair in bad)


def test_correlation_is_valid(result):
    assert -1.0 <= result.correlation <= 1.0


def test_formatting(result):
    text = result.format_text()
    assert "quality" in text and "20,000x" in text
