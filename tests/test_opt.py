"""Optimizer pass tests."""
from repro.compiler import CompileOptions, compile_source
from repro.ir import Opcode
from repro.opt import OptOptions, constant_globals
from repro.vm.machine import run_program

from tests.helpers import compile_and_run


def ops_of(program, func_name):
    func = program.module.function(func_name)
    return [instr.op for instr in func.instructions()]


def test_constant_folding_collapses_arithmetic():
    program = compile_source("func main() { return 2 * 3 + 4; }")
    ops = ops_of(program, "main")
    assert Opcode.BIN not in ops


def test_constant_folding_preserves_division_by_zero():
    # 1 / 0 must still fault at run time, not at compile time.
    program = compile_source("func main() { return 1 / 0; }")
    ops = ops_of(program, "main")
    assert Opcode.BIN in ops


def test_cse_removes_duplicate_computation():
    # Operands come from input so constant folding cannot pre-compute them;
    # CSE must share the repeated a*b.
    source = """
    func main() {
        var a = getc(); var b = getc();
        var x = a * b + 1;
        var y = a * b + 2;
        return x + y;
    }
    """
    from repro.ir.opcodes import BinOp

    def multiplies(program):
        return sum(
            1
            for instr in program.module.function("main").instructions()
            if instr.op == Opcode.BIN and instr.subop == int(BinOp.MUL)
        )

    unopt_program = compile_source(source, options=CompileOptions.unoptimized())
    opt_program = compile_source(source)
    assert multiplies(unopt_program) == 2
    assert multiplies(opt_program) == 1  # CSE shares a*b (leaves a MOV)
    data = bytes([5, 7])
    assert run_program(opt_program.lowered, input_data=data).exit_code == 73
    # With dead-instruction elimination on top, the dynamic count shrinks too.
    dce = compile_and_run(source, input_data=data, options=CompileOptions.with_dce())
    base = compile_and_run(
        source, input_data=data, options=CompileOptions.unoptimized()
    )
    assert dce.exit_code == 73
    assert dce.instructions < base.instructions


def test_constant_global_becomes_constant():
    source = """
    var MODE = 3;
    func main() { return MODE; }
    """
    program = compile_source(source)
    ops = ops_of(program, "main")
    # The ADDR+LOAD pair folds to a constant because MODE is never written.
    assert Opcode.LOAD not in ops


def test_written_global_is_not_constant():
    source = """
    var mode = 3;
    func set() { mode = 4; }
    func main() { set(); return mode; }
    """
    program = compile_source(source)
    assert "mode" not in constant_globals(program.module)
    assert run_program(program.lowered).exit_code == 4


def test_array_writes_do_not_mark_scalars():
    source = """
    var FLAG = 1;
    arr buf[4];
    func main() { buf[2] = 9; return FLAG + buf[2]; }
    """
    program = compile_source(source)
    consts = constant_globals(program.module)
    assert consts.get("FLAG") == 1
    assert "buf" not in consts
    assert run_program(program.lowered).exit_code == 10


DEBUG_GUARDED = """
var DEBUG = 0;
var work;
func main() {
    var i;
    for (i = 0; i < 50; i += 1) {
        if (DEBUG) { work = work + i; }
        work = work + 1;
    }
    return work;
}
"""


def test_paper_config_keeps_constant_branch():
    """With DCE off (paper setup) the dead branch executes every iteration."""
    result = compile_and_run(DEBUG_GUARDED)
    assert result.exit_code == 50
    counts = result.branch_counts()
    # Two branches execute: the loop test and the constant DEBUG test.
    assert len(counts) == 2
    assert any(executed == 50 and taken == 0 for executed, taken in counts.values())


def test_dce_removes_constant_branch():
    result = compile_and_run(DEBUG_GUARDED, options=CompileOptions.with_dce())
    assert result.exit_code == 50
    assert len(result.branch_counts()) == 1  # only the loop test remains
    baseline = compile_and_run(DEBUG_GUARDED)
    assert result.instructions < baseline.instructions


def test_classical_removes_plainly_unused_computation():
    # A computation with no use at all is removed by classical
    # dead-instruction elimination, without global DCE.
    source = """
    func main() {
        var i; var live = 0; var dead = 0;
        for (i = 0; i < 30; i += 1) {
            dead = i * 17 + 3;
            live += 2;
        }
        return live;
    }
    """
    unopt = compile_and_run(source, options=CompileOptions.unoptimized())
    classical = compile_and_run(source)
    assert unopt.exit_code == classical.exit_code == 60
    assert classical.instructions < unopt.instructions


def test_guarded_use_keeps_computation_live_until_dce():
    # The paper's dead-code shape: a computation whose only use sits behind
    # a constant-false guard.  Classical opts keep it; global DCE removes
    # both the guard branch and the computation.
    source = """
    var CHECKED = 0;
    var audit;
    func main() {
        var i; var live = 0;
        for (i = 0; i < 30; i += 1) {
            var norm = i * 17 + 3;
            if (CHECKED) { audit = audit + norm; }
            live += 2;
        }
        return live;
    }
    """
    classical = compile_and_run(source)
    dce = compile_and_run(source, options=CompileOptions.with_dce())
    assert classical.exit_code == dce.exit_code == 60
    assert dce.instructions < classical.instructions
    assert len(dce.branch_counts()) < len(classical.branch_counts())


def test_branch_ids_survive_optimization():
    source = """
    func main() {
        var i; var n = 0;
        for (i = 0; i < 10; i += 1) {
            if (i % 3 == 0) { n += 1; }
        }
        return n;
    }
    """
    default = compile_source(source)
    unopt = compile_source(source, options=CompileOptions.unoptimized())
    assert set(default.module.branch_ids()) == set(unopt.module.branch_ids())


def test_dce_only_removes_branches_it_proves_constant():
    source = """
    var LIMIT = 10;
    func main() {
        var i; var n = 0;
        for (i = 0; i < LIMIT; i += 1) { n += 1; }
        return n;
    }
    """
    # LIMIT is constant, but the loop test depends on i too: branch stays.
    result = compile_and_run(source, options=CompileOptions.with_dce())
    assert result.exit_code == 10
    assert len(result.branch_counts()) == 1


def test_jump_threading_reduces_jump_events():
    source = """
    func main() {
        var i; var n = 0;
        for (i = 0; i < 20; i += 1) {
            if (i % 2) { n += 1; } else { n += 2; }
        }
        return n;
    }
    """
    threaded = compile_and_run(
        source, options=CompileOptions(enable_select=False)
    )
    unthreaded_opts = CompileOptions(
        enable_select=False, opt=OptOptions(jump_threading=False)
    )
    unthreaded = compile_and_run(source, options=unthreaded_opts)
    assert threaded.exit_code == unthreaded.exit_code == 30
    assert threaded.events.jumps <= unthreaded.events.jumps


def test_optimization_never_changes_output():
    source = """
    arr data[32];
    func hash(x) { return (x * 31 + 7) % 101; }
    func main() {
        var i;
        for (i = 0; i < 32; i += 1) { data[i] = hash(i); }
        var total = 0;
        for (i = 0; i < 32; i += 1) { total += data[i]; }
        putc(total % 256);
        return total % 100;
    }
    """
    results = [
        compile_and_run(source, options=options)
        for options in (
            CompileOptions.paper_default(),
            CompileOptions.with_dce(),
            CompileOptions.unoptimized(),
        )
    ]
    assert len({r.exit_code for r in results}) == 1
    assert len({r.output for r in results}) == 1


def test_opt_options_factories():
    assert not OptOptions.classical().branch_folding
    assert OptOptions.classical().dead_instructions
    assert OptOptions.with_dce().branch_folding
    assert not OptOptions.none().constant_folding
    assert not OptOptions.none().dead_instructions
