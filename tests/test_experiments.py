"""Experiment reproductions: assert the paper's qualitative findings hold.

These tests run the real experiment code over the full workload suite (the
session runner's disk cache keeps repeat runs fast) and check the *shape*
of each result against what the paper reports.
"""
import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    informal,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def table1_result(runner):
    return table1.run(runner)


@pytest.fixture(scope="module")
def figure1_result(runner):
    return figure1.run(runner)


@pytest.fixture(scope="module")
def figure2_result(runner):
    return figure2.run(runner)


@pytest.fixture(scope="module")
def figure3_result(runner):
    return figure3.run(runner)


class TestTable1:
    def test_covers_all_spec_programs(self, table1_result):
        assert set(table1_result.by_program()) == set(table1.PAPER_DEAD_CODE)

    def test_li_has_no_dead_code(self, table1_result):
        assert table1_result.by_program()["li"].dead_fraction < 0.01

    def test_matrix300_has_most_dead_code(self, table1_result):
        rows = table1_result.by_program()
        matrix300 = rows["matrix300"].dead_fraction
        assert matrix300 > 0.2
        assert matrix300 == max(row.dead_fraction for row in rows.values())

    def test_dead_code_ordering_tracks_paper(self, table1_result):
        """Programs the paper found dead-code-light must measure light here
        too, and the heavy ones heavy (exact percentages differ)."""
        rows = table1_result.by_program()
        light = {"li", "fpppp", "spice2g6", "gcc", "doduc", "eqntott"}
        heavy = {"tomcatv", "espresso", "nasa7", "matrix300"}
        worst_light = max(rows[name].dead_fraction for name in light)
        best_heavy = min(rows[name].dead_fraction for name in heavy)
        assert worst_light < 0.10
        assert best_heavy > 0.05

    def test_formatting(self, table1_result):
        text = table1_result.format_text()
        assert "Table 1" in text and "matrix300" in text


class TestTable2:
    def test_inventory_matches_registry(self):
        result = table2.run()
        names = [row.program for row in result.rows]
        assert names[0] == "spice2g6" and "li" in names and len(names) == 15

    def test_formatting(self):
        text = table2.run().format_text()
        assert "greybig" in text and "fortran_metric" in text


class TestTable3:
    def test_program_ordering_matches_paper(self, runner):
        result = table3.run(runner)
        assert result.ordering_matches_paper()

    def test_all_values_are_large(self, runner):
        # Every Table 3 program is highly predictable: instructions per
        # break in the hundreds or thousands.
        result = table3.run(runner)
        assert all(row.instructions_per_break > 150 for row in result.rows)

    def test_tomcatv_is_most_predictable(self, runner):
        result = table3.run(runner)
        best = max(result.rows, key=lambda row: row.instructions_per_break)
        assert best.program == "tomcatv"

    def test_formatting(self, runner):
        text = table3.run(runner).format_text()
        assert "7461" in text  # the paper's value column is present


class TestFigure1:
    def test_panels_are_populated(self, figure1_result):
        assert len(figure1_result.fortran_bars) >= 15
        assert len(figure1_result.c_bars) >= 25

    def test_call_breaks_only_reduce_ipb(self, figure1_result):
        for bar in figure1_result.fortran_bars + figure1_result.c_bars:
            assert bar.ipb_white <= bar.ipb_black + 1e-9

    def test_fpppp_is_the_outlier(self, figure1_result):
        """fpppp is 'very uncharacteristic in having 150-170 instructions
        per break' — it must dominate Figure 1a."""
        by_program = {}
        for bar in figure1_result.fortran_bars:
            by_program.setdefault(bar.program, []).append(bar.ipb_black)
        fpppp_best = max(by_program["fpppp"])
        others = [
            value
            for name, values in by_program.items()
            if name != "fpppp"
            for value in values
        ]
        assert fpppp_best > max(others)

    def test_c_programs_have_5_to_20_instructions_per_break(
        self, figure1_result
    ):
        values = [bar.ipb_black for bar in figure1_result.c_bars]
        assert min(values) >= 4
        assert max(values) <= 25

    def test_formatting(self, figure1_result):
        text = figure1_result.format_text()
        assert "Figure 1a" in text and "Figure 1b" in text


class TestFigure2:
    def test_spice_panel_has_nine_datasets(self, figure2_result):
        assert len(figure2_result.spice_bars) == 9

    def test_combined_never_beats_self(self, figure2_result):
        for bar in figure2_result.all_bars():
            assert bar.ipb_combined <= bar.ipb_self + 1e-9

    def test_prediction_helps_everywhere(self, figure2_result):
        for bar in figure2_result.all_bars():
            assert bar.ipb_combined > bar.ipb_unpredicted

    def test_c_programs_land_in_the_papers_band(self, figure2_result):
        """Paper: 'instructions per break range from about 40 to about
        160' for the C programs (combined predictor)."""
        values = [bar.ipb_combined for bar in figure2_result.c_bars]
        assert min(values) > 25
        assert max(values) < 250

    def test_combined_predictor_is_generally_effective(self, figure2_result):
        fractions = [
            bar.combined_fraction_of_self for bar in figure2_result.c_bars
        ]
        good = sum(1 for fraction in fractions if fraction >= 0.75)
        assert good / len(fractions) >= 0.8

    def test_spice_is_hardest_to_predict(self, figure2_result):
        spice_mean = sum(
            bar.combined_fraction_of_self for bar in figure2_result.spice_bars
        ) / len(figure2_result.spice_bars)
        c_mean = sum(
            bar.combined_fraction_of_self for bar in figure2_result.c_bars
        ) / len(figure2_result.c_bars)
        assert spice_mean < c_mean

    def test_formatting(self, figure2_result):
        text = figure2_result.format_text()
        assert "Figure 2a" in text and "sum of others" in text


class TestFigure3:
    def test_worst_below_best(self, figure3_result):
        for bar in figure3_result.all_bars():
            assert bar.worst_percent <= bar.best_percent + 1e-9

    def test_spice_has_dramatic_worst_cases(self, figure3_result):
        worst = min(bar.worst_percent for bar in figure3_result.spice_bars)
        assert worst < 40.0

    def test_some_c_program_worst_cases_hover_lower(self, figure3_result):
        """Paper: 'the worst tended to hover around 50-70% of what was
        possible' for espresso, li, compress, spiff, eqntott."""
        worst_values = [bar.worst_percent for bar in figure3_result.c_bars]
        assert min(worst_values) < 70.0

    def test_best_is_usually_nearly_perfect(self, figure3_result):
        best_values = [bar.best_percent for bar in figure3_result.c_bars]
        good = sum(1 for value in best_values if value >= 90.0)
        assert good / len(best_values) >= 0.7

    def test_formatting(self, figure3_result):
        text = figure3_result.format_text()
        assert "Figure 3a" in text and "worst" in text


class TestInformal:
    def test_polling_is_the_worst_combiner(self, runner):
        result = informal.combine_modes(runner)
        scaled = result.mean_fraction("scaled")
        unscaled = result.mean_fraction("unscaled")
        polling = result.mean_fraction("polling")
        assert polling <= scaled + 1e-9
        assert polling <= unscaled + 1e-9
        # Paper: scaled and unscaled "appeared to perform as well as each
        # other ... on average they were indistinguishably close."
        assert abs(scaled - unscaled) < 0.08
        assert "polling" in result.format_text()

    def test_heuristics_lose_about_a_factor_of_two(self, runner):
        result = informal.heuristics(runner)
        factor = result.mean_loop_factor()
        assert factor > 1.4  # the paper says "about a factor of two"
        assert "factor" in result.format_text()

    def test_heuristics_never_beat_self_prediction(self, runner):
        result = informal.heuristics(runner)
        for row in result.rows:
            assert row.ipb_loop_heuristic <= row.ipb_self + 1e-9
            assert row.ipb_opcode_heuristic <= row.ipb_self + 1e-9

    def test_percent_taken_is_roughly_constant(self, runner):
        result = informal.percent_taken(runner)
        spreads = {row.program: row.spread for row in result.rows}
        # spice2g6 must show a notably large spread, like the paper.
        assert spreads["spice2g6"] > 0.15
        # Most other programs stay tight.
        tight = [
            name for name, spread in spreads.items()
            if name != "spice2g6" and spread <= 0.10
        ]
        assert len(tight) >= 5
        assert "spread" in result.format_text()

    def test_compress_modes_do_not_predict_each_other(self, runner):
        result = informal.compress_cross(runner)
        for mode in ("compress", "uncompress"):
            assert (
                result.fraction_by_target[mode]
                < result.same_mode_fraction[mode]
            )
        # "Using the data from one to predict the other is a very bad idea."
        assert min(result.fraction_by_target.values()) < 0.75
        assert "very bad idea" in result.format_text()

    def test_wrong_measure_reproduces_fpppp_vs_li(self, runner):
        result = informal.wrong_measure(runner)
        fpppp = result.find("fpppp", "8atoms")
        li = result.find("li", "6queens")
        # Percent-correct is close between the two...
        assert abs(fpppp.percent_correct_self - li.percent_correct_self) < 0.15
        # ...but branch density differs by an order of magnitude.
        assert fpppp.branch_density > 10 * li.branch_density
        assert "wrong measure" in result.format_text()

    def test_dynamic_predictors(self, runner):
        result = informal.dynamic_comparison(
            runner, programs=["li", "tomcatv", "lfk"]
        )
        for row in result.rows:
            assert 0.5 < row.two_bit_accuracy <= 1.0
            # 2-bit counters beat 1-bit on loop-dominated code.
            if row.program in ("tomcatv", "lfk"):
                assert row.two_bit_accuracy >= row.one_bit_accuracy
        fortran_2bit = result.mean_accuracy("fortran", "two_bit_accuracy")
        c_2bit = result.mean_accuracy("c", "two_bit_accuracy")
        # The literature's contrast: scientific code predicts better.
        assert fortran_2bit > c_2bit
        assert "2-bit" in result.format_text()
