"""The CI workflow must stay parseable and keep its jobs wired up."""
import os

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(
    os.path.dirname(__file__), "..", ".github", "workflows", "ci.yml"
)


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW) as handle:
        return yaml.safe_load(handle)


def test_workflow_parses_and_triggers(workflow):
    # YAML 1.1 may load a bare `on:` key as the boolean True; accept both.
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers


def test_workflow_has_all_jobs(workflow):
    assert {
        "tests", "lint", "benchmark-smoke", "serve-smoke", "examples"
    } <= set(workflow["jobs"])


def test_test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
    assert {"3.9", "3.11", "3.13"} <= {str(version) for version in matrix}


def _run_lines(job):
    return [step.get("run", "") for step in job["steps"]]


def test_jobs_run_the_advertised_commands(workflow):
    jobs = workflow["jobs"]
    assert any("pytest -x -q" in line for line in _run_lines(jobs["tests"]))
    assert any("ruff check" in line for line in _run_lines(jobs["lint"]))
    assert any(
        "mypy --strict" in line for line in _run_lines(jobs["lint"])
    ), "the lint job must type-check the IR and analysis layers"
    assert any(
        "pytest benchmarks" in line
        for line in _run_lines(jobs["benchmark-smoke"])
    )
    assert any(
        "benchmarks/bench_vm.py" in line
        for line in _run_lines(jobs["benchmark-smoke"])
    ), "the smoke job must enforce the VM fast-engine speedup floor"
    serve_lines = _run_lines(jobs["serve-smoke"])
    assert any(
        "repro-serve serve" in line for line in serve_lines
    ), "the serve-smoke job must start a live aggregation server"
    assert any(
        "upload-sweep" in line and "predict" in line for line in serve_lines
    ), "the serve-smoke job must round-trip upload-sweep and predict"
    assert any(
        "--verify-offline" in line for line in serve_lines
    ), "served predictions must be checked byte-for-byte against offline"
    assert any(
        "benchmarks/bench_serve.py" in line for line in serve_lines
    ), "the serve-smoke job must enforce the upload throughput floor"
    assert any("examples/*.py" in line for line in _run_lines(jobs["examples"]))
    assert any(
        "repro-mf lint" in line for line in _run_lines(jobs["examples"])
    ), "the examples job must IR-lint the bundled programs"


def test_setup_python_uses_pip_caching(workflow):
    for name, job in workflow["jobs"].items():
        setup_steps = [
            step for step in job["steps"]
            if "setup-python" in str(step.get("uses", ""))
        ]
        assert setup_steps, f"job {name} never sets up python"
        for step in setup_steps:
            assert step["with"].get("cache") == "pip", name
