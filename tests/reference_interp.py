"""A direct AST-walking reference interpreter for MF.

Used by the differential property tests: hypothesis generates random MF
programs, and the whole production pipeline (codegen, optimizer, lowering,
VM) must agree with this deliberately naive evaluator on outputs, exit
codes and division faults.  The two implementations share nothing past the
parser, so agreement is strong evidence of semantic correctness.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_source
from repro.lang.sema import BUILTINS, analyze


class ReferenceFault(Exception):
    """Raised for the faults the VM also traps (bad address, div by 0)."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Halt(Exception):
    pass


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ReferenceFault("division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}

_COMPOUND = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class ReferenceInterpreter:
    """Evaluates a parsed MF program directly over the AST."""

    def __init__(self, source: str):
        self.program = parse_source(source)
        self.info = analyze(self.program)
        self.functions: Dict[str, ast.FuncDecl] = {
            func.ident: func for func in self.program.functions
        }

    def run(self, input_data: bytes = b"") -> Tuple[int, bytes]:
        """Execute main; returns (exit_code, output)."""
        self.globals: Dict[str, int] = {}
        self.arrays: Dict[str, List[int]] = {}
        for decl in self.program.globals:
            if isinstance(decl, ast.VarDecl):
                self.globals[decl.ident] = decl.const_init or 0
            else:
                cells = list(decl.init) + [0] * (decl.size - len(decl.init))
                self.arrays[decl.ident] = cells
        self.input = input_data
        self.in_pos = 0
        self.output = bytearray()
        try:
            exit_code = self.call("main", [])
        except _Halt:
            exit_code = 0
        return exit_code, bytes(self.output)

    # -- calls -----------------------------------------------------------------

    def call(self, name: str, args: List[int]) -> int:
        func = self.functions[name]
        local: Dict[str, int] = {
            var: 0 for var in self.info.locals_by_function[name]
        }
        for param, value in zip(func.params, args):
            local[param] = value
        try:
            self.exec_block(func.body, local)
        except _Return as ret:
            return ret.value
        return 0

    # -- statements ----------------------------------------------------------------

    def exec_block(self, stmts: List[ast.Node], local: Dict[str, int]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, local)

    def exec_stmt(self, stmt: ast.Node, local: Dict[str, int]) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                local[stmt.ident] = self.eval(stmt.init, local)
        elif isinstance(stmt, ast.Assign):
            self.assign(stmt, local)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, local)
        elif isinstance(stmt, ast.If):
            if self.eval(stmt.cond, local):
                self.exec_block(stmt.then_body, local)
            else:
                self.exec_block(stmt.else_body, local)
        elif isinstance(stmt, ast.While):
            while self.eval(stmt.cond, local):
                try:
                    self.exec_block(stmt.body, local)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self.exec_block(stmt.body, local)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self.eval(stmt.cond, local):
                    break
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.exec_stmt(stmt.init, local)
            while stmt.cond is None or self.eval(stmt.cond, local):
                try:
                    self.exec_block(stmt.body, local)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.exec_stmt(stmt.step, local)
        elif isinstance(stmt, ast.Switch):
            self.exec_switch(stmt, local)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            value = 0 if stmt.value is None else self.eval(stmt.value, local)
            raise _Return(value)
        elif isinstance(stmt, ast.Halt):
            raise _Halt()
        else:  # pragma: no cover
            raise ReferenceFault(f"unknown statement {type(stmt).__name__}")

    def exec_switch(self, stmt: ast.Switch, local: Dict[str, int]) -> None:
        value = self.eval(stmt.scrutinee, local)
        start: Optional[int] = None
        default_at: Optional[int] = None
        for position, arm in enumerate(stmt.arms):
            if arm.values is None:
                default_at = position
            elif value in arm.values:
                start = position
                break
        if start is None:
            start = default_at
        if start is None:
            return
        try:
            for arm in stmt.arms[start:]:
                self.exec_block(arm.body, local)
        except _Break:
            pass

    def assign(self, stmt: ast.Assign, local: Dict[str, int]) -> None:
        value = self.eval(stmt.value, local)
        operator = _COMPOUND.get(stmt.op)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.ident
            if name in local:
                old = local[name]
                local[name] = (
                    value if operator is None else _BINOPS[operator](old, value)
                )
            else:
                old = self.globals[name]
                self.globals[name] = (
                    value if operator is None else _BINOPS[operator](old, value)
                )
        else:
            array = self.arrays[stmt.target.array]
            index = self.eval(stmt.target.index, local)
            if not (0 <= index < len(array)):
                raise ReferenceFault("bad address")
            old = array[index]
            array[index] = (
                value if operator is None else _BINOPS[operator](old, value)
            )

    # -- expressions ------------------------------------------------------------------

    def eval(self, expr: ast.Node, local: Dict[str, int]) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.ident in local:
                return local[expr.ident]
            return self.globals[expr.ident]
        if isinstance(expr, ast.Index):
            array = self.arrays[expr.array]
            index = self.eval(expr.index, local)
            if not (0 <= index < len(array)):
                raise ReferenceFault("bad address")
            return array[index]
        if isinstance(expr, ast.Unary):
            operand = self.eval(expr.operand, local)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return int(operand == 0)
            return ~operand
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                return (
                    int(self.eval(expr.right, local) != 0)
                    if self.eval(expr.left, local)
                    else 0
                )
            if expr.op == "||":
                return (
                    1
                    if self.eval(expr.left, local)
                    else int(self.eval(expr.right, local) != 0)
                )
            left = self.eval(expr.left, local)
            right = self.eval(expr.right, local)
            return _BINOPS[expr.op](left, right)
        if isinstance(expr, ast.FuncRef):
            # Function "addresses" are indices in definition order, matching
            # the lowering.
            return list(self.functions).index(expr.ident)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, local)
        if isinstance(expr, ast.IndirectCall):
            target = self.eval(expr.callee, local)
            names = list(self.functions)
            if not (0 <= target < len(names)):
                raise ReferenceFault("indirect call to bad target")
            args = [self.eval(arg, local) for arg in expr.args]
            callee = self.functions[names[target]]
            if len(args) != len(callee.params):
                raise ReferenceFault("indirect call arity mismatch")
            return self.call(names[target], args)
        raise ReferenceFault(f"unknown expression {type(expr).__name__}")

    def eval_call(self, expr: ast.Call, local: Dict[str, int]) -> int:
        name = expr.func
        if name in self.functions:
            args = [self.eval(arg, local) for arg in expr.args]
            return self.call(name, args)
        if name in BUILTINS:
            if name == "getc":
                if self.in_pos < len(self.input):
                    value = self.input[self.in_pos]
                    self.in_pos += 1
                    return value
                return -1
            value = self.eval(expr.args[0], local)
            self.output.append(value & 0xFF)
            return 0
        # Indirect call through a variable holding a function index.
        callee = ast.Name(line=expr.line, ident=name)
        return self.eval(
            ast.IndirectCall(line=expr.line, callee=callee, args=expr.args),
            local,
        )
