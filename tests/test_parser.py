"""Parser unit tests."""
import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import LangError
from repro.lang.parser import parse_source


def parse_expr(text):
    program = parse_source(f"func main() {{ var t = {text}; }}")
    decl = program.functions[0].body[0]
    return decl.init


def test_program_structure():
    program = parse_source(
        "var g = 3; arr a[4] = {1, 2}; func f(x) { return x; } func main() { }"
    )
    assert [g.ident for g in program.globals] == ["g", "a"]
    assert [f.ident for f in program.functions] == ["f", "main"]
    assert program.globals[0].const_init == 3
    assert program.globals[1].size == 4
    assert program.globals[1].init == (1, 2)


def test_negative_global_initializer():
    program = parse_source("var g = -7; func main() { }")
    assert program.globals[0].const_init == -7


def test_array_initializer_too_long_raises():
    with pytest.raises(LangError):
        parse_source("arr a[2] = {1, 2, 3}; func main() { }")


def test_zero_size_array_raises():
    with pytest.raises(LangError):
        parse_source("arr a[0]; func main() { }")


def test_precedence_multiplication_binds_tighter():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_comparison_vs_logical():
    expr = parse_expr("a < b && c > d")
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_left_associativity():
    expr = parse_expr("10 - 4 - 3")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"
    assert expr.right.value == 3


def test_unary_minus_folds_into_literal():
    expr = parse_expr("-5")
    assert isinstance(expr, ast.IntLit) and expr.value == -5


def test_parenthesized_expression():
    expr = parse_expr("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_function_address():
    expr = parse_expr("&main")
    assert isinstance(expr, ast.FuncRef) and expr.ident == "main"


def test_call_and_index_postfix():
    expr = parse_expr("f(1, 2)")
    assert isinstance(expr, ast.Call) and expr.func == "f" and len(expr.args) == 2


def test_indexed_call_is_indirect():
    program = parse_source(
        "arr tab[2]; func main() { var t = tab[0](5); }"
    )
    expr = program.functions[0].body[0].init
    assert isinstance(expr, ast.IndirectCall)
    assert isinstance(expr.callee, ast.Index)


def test_indexing_non_name_raises():
    with pytest.raises(LangError):
        parse_source("func main() { var t = (1 + 2)[0]; }")


def test_if_else_chain():
    program = parse_source(
        "func main() { if (1) { } else if (2) { } else { } }"
    )
    stmt = program.functions[0].body[0]
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_body[0], ast.If)


def test_single_statement_bodies():
    program = parse_source("func main() { if (1) return 1; else return 2; }")
    stmt = program.functions[0].body[0]
    assert isinstance(stmt.then_body[0], ast.Return)


def test_for_with_empty_sections():
    program = parse_source("func main() { for (;;) { break; } }")
    stmt = program.functions[0].body[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_switch_with_multivalue_case_and_default():
    program = parse_source(
        """
        func main() {
            switch (3) {
            case 1, 2: return 1;
            case 3: return 2;
            default: return 0;
            }
        }
        """
    )
    switch = program.functions[0].body[0]
    assert switch.arms[0].values == [1, 2]
    assert switch.arms[2].values is None


def test_duplicate_default_raises():
    with pytest.raises(LangError):
        parse_source(
            "func main() { switch (1) { default: break; default: break; } }"
        )


def test_do_while():
    program = parse_source("func main() { var i = 0; do { i += 1; } while (i < 3); }")
    stmt = program.functions[0].body[1]
    assert isinstance(stmt, ast.DoWhile)


def test_compound_assignment_ops():
    program = parse_source("func main() { var x = 0; x += 1; x <<= 2; }")
    assert program.functions[0].body[1].op == "+="
    assert program.functions[0].body[2].op == "<<="


def test_expression_statement_must_be_call():
    with pytest.raises(LangError):
        parse_source("func main() { 1 + 2; }")


def test_assignment_to_literal_raises():
    with pytest.raises(LangError):
        parse_source("func main() { 3 = 4; }")


def test_unterminated_block_raises():
    with pytest.raises(LangError):
        parse_source("func main() { if (1) {")


def test_top_level_junk_raises():
    with pytest.raises(LangError):
        parse_source("int x;")


def test_directives_carried_through():
    program = parse_source("//!MF! IFPROB(main, 0, 5, 1)\nfunc main() { }")
    assert program.directives == ["IFPROB(main, 0, 5, 1)"]
