"""CFG analysis tests: reverse postorder, dominators, loops."""
from repro.compiler import CompileOptions, compile_source
from repro.ir.analysis import (
    back_edges,
    cfg_edges,
    dominators,
    exit_labels,
    loop_headers,
    natural_loop_bodies,
    natural_loop_blocks,
    postdominators,
    predecessor_map,
    reachable_labels,
    successor_map,
)


def function_of(source, name="main"):
    program = compile_source(source, options=CompileOptions(enable_select=False))
    return program.module.function(name)


SIMPLE_LOOP = """
func main() {
    var i; var n = 0;
    while (i < 10) { n += i; i += 1; }
    return n;
}
"""

NESTED_LOOPS = """
func main() {
    var i; var j; var n = 0;
    for (i = 0; i < 4; i += 1) {
        for (j = 0; j < 4; j += 1) {
            if (j == 2) { n += 1; }
        }
    }
    return n;
}
"""


def test_reverse_postorder_starts_at_entry():
    func = function_of(SIMPLE_LOOP)
    order = reachable_labels(func)
    assert order[0] == func.blocks[0].label
    assert len(order) == len(set(order))


def test_entry_dominates_everything():
    func = function_of(SIMPLE_LOOP)
    dom = dominators(func)
    entry = func.blocks[0].label
    for label, doms in dom.items():
        assert entry in doms
        assert label in doms  # reflexive


def test_loop_header_dominates_body():
    func = function_of(SIMPLE_LOOP)
    dom = dominators(func)
    headers = loop_headers(func)
    assert len(headers) == 1
    header = next(iter(headers))
    members = natural_loop_blocks(func)
    for label in members:
        assert header in dom[label]


def test_back_edges_point_at_headers():
    func = function_of(SIMPLE_LOOP)
    edges = back_edges(func)
    assert len(edges) == 1
    headers = loop_headers(func)
    for _, header in edges:
        assert header in headers


def test_nested_loops_have_two_headers():
    func = function_of(NESTED_LOOPS)
    assert len(loop_headers(func)) == 2
    # The inner loop's blocks are inside the outer loop's body set too.
    assert len(natural_loop_blocks(func)) >= 5


def test_straight_line_has_no_loops():
    func = function_of("func main() { return 3; }")
    assert back_edges(func) == set()
    assert loop_headers(func) == set()
    assert natural_loop_blocks(func) == set()


def test_do_while_loop_detected():
    func = function_of(
        "func main() { var i = 0; do { i += 1; } while (i < 5); return i; }"
    )
    assert len(loop_headers(func)) == 1


def test_unreachable_blocks_excluded_from_order():
    source = """
    func main() {
        return 1;
        return 2;
    }
    """
    func = function_of(source)
    order = reachable_labels(func)
    assert len(order) <= len(func.blocks)


def test_cfg_edges_match_successor_and_predecessor_maps():
    func = function_of(NESTED_LOOPS)
    edges = cfg_edges(func)
    succs = successor_map(func)
    preds = predecessor_map(func)
    for source_label, target in edges:
        assert target in succs[source_label]
        assert source_label in preds[target]
    # Every successor pair appears as an edge.
    derived = {(s, t) for s, targets in succs.items() for t in targets}
    assert derived == set(edges)


def test_exit_labels_are_return_blocks():
    func = function_of(SIMPLE_LOOP)
    exits = exit_labels(func)
    assert exits
    for label in exits:
        block = next(b for b in func.blocks if b.label == label)
        assert not block.successors()


def test_exit_postdominates_everything():
    func = function_of(SIMPLE_LOOP)
    pdom = postdominators(func)
    exits = exit_labels(func)
    # Every reachable block is postdominated by itself, and blocks on the
    # path to the single exit are postdominated by it.
    for label, pdoms in pdom.items():
        assert label in pdoms
    if len(exits) == 1:
        exit_label = next(iter(exits))
        for label in reachable_labels(func):
            assert exit_label in pdom[label]


def test_postdominators_of_diamond_join():
    source = """
    func main() {
        var x = 1; var y;
        if (x) { y = 2; } else { y = 3; }
        return y;
    }
    """
    func = function_of(source)
    pdom = postdominators(func)
    entry = func.blocks[0].label
    # The join (and the exit) postdominate the entry; the two arms do not.
    arms = [
        block.label
        for block in func.blocks
        if len(predecessor_map(func).get(block.label, [])) == 1
        and block.label != entry
    ]
    for arm in arms:
        assert arm not in pdom[entry]


def test_natural_loop_bodies_keyed_by_header():
    func = function_of(NESTED_LOOPS)
    bodies = natural_loop_bodies(func)
    assert set(bodies) == loop_headers(func)
    for header, body in bodies.items():
        assert header in body
    assert natural_loop_blocks(func) == set().union(*bodies.values())
