"""Smoke tests: every example script must run and produce its story."""
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    ("quickstart.py", ["training run:", "instructions per break"]),
    ("profile_feedback_loop.py", ["IFPROB", "best possible"]),
    ("cross_dataset_prediction.py", ["leave-one-out", "self"]),
    ("heuristics_vs_profile.py", ["loop-heuristic", "dynamic 1-bit"]),
    ("trace_scheduling.py", ["profile-guided", "eval"]),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected, runner):
    # The session runner has warmed the shared disk cache, which the
    # example subprocesses reuse.
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=os.path.join(EXAMPLES_DIR, ".."),
    )
    assert result.returncode == 0, result.stderr
    for fragment in expected:
        assert fragment in result.stdout, (script, fragment, result.stdout)
