"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment has setuptools but no wheel, so PEP 517 editable
installs fail).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
