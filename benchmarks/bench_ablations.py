"""Benchmarks: the compiler-switch ablations DESIGN.md calls out."""
from repro.experiments import ablations


def test_inlining_ablation(benchmark, runner):
    result = benchmark(ablations.inlining, runner)
    assert any(row.calls_inlined < row.calls_base for row in result.rows)
    print()
    print(result.format_text())


def test_if_conversion_ablation(benchmark, runner):
    result = benchmark(ablations.if_conversion, runner)
    for row in result.rows:
        assert row.branch_execs_converted <= row.branch_execs_base
    print()
    print(result.format_text())
