"""Benchmark: regenerate Table 2 (the program/dataset inventory)."""
from repro.experiments import table2


def test_table2(benchmark, runner):
    result = benchmark(table2.run, runner)
    assert len(result.rows) == 15
    print()
    print(result.format_text())
