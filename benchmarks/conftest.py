"""Benchmark fixtures.

The session runner pre-warms every simulation the tables and figures need
(including the DCE configuration Table 1 uses), so that each benchmark
measures the experiment's regeneration — the analysis over the measured
runs — not the one-time simulations, which are served from the on-disk
cache on later invocations anyway.
"""
import pytest

from repro.core.runner import WorkloadRunner
from repro.experiments import table1
from repro.workloads import all_workloads


@pytest.fixture(scope="session")
def runner():
    warmed = WorkloadRunner()
    for workload in all_workloads():
        for dataset in workload.dataset_names():
            warmed.run(workload.name, dataset)
    for program in table1.PAPER_DEAD_CODE:
        for dataset in warmed.workload(program).dataset_names():
            warmed.run(program, dataset, dce=True)
    return warmed
