"""Substrate benchmarks: compiler and VM throughput.

These do not correspond to a paper table; they keep the reproduction's own
toolchain honest (compile speed, simulation speed, prediction-evaluation
speed), which everything else depends on.
"""
from repro.compiler import compile_source
from repro.prediction import ProfilePredictor, evaluate_static
from repro.profiling import BranchProfile
from repro.vm.machine import run_program
from repro.workloads import get_workload, load_program_source


def test_compile_lisp_interpreter(benchmark):
    source = load_program_source("li.mf")
    compiled = benchmark(compile_source, source, "li")
    assert compiled.lowered.functions


def test_vm_throughput_lfk(benchmark):
    workload = get_workload("lfk")
    lowered = compile_source(workload.source, name="lfk").lowered
    result = benchmark(run_program, lowered)
    assert result.instructions > 100_000


def test_prediction_evaluation_speed(benchmark, runner):
    target = runner.run("spice2g6", "greybig")
    profile = BranchProfile.from_run(runner.run("spice2g6", "greysmall"))
    predictor = ProfilePredictor(profile)
    report = benchmark(evaluate_static, target, predictor)
    assert report.branch_execs > 0
