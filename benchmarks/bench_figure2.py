"""Benchmark: regenerate Figures 2a/2b (instrs per break, predicted)."""
from repro.experiments import figure2


def test_figure2(benchmark, runner):
    result = benchmark(figure2.run, runner)
    assert len(result.spice_bars) == 9
    print()
    print(result.format_text())
