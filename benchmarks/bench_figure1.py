"""Benchmark: regenerate Figures 1a/1b (instrs per break, no prediction)."""
from repro.experiments import figure1


def test_figure1(benchmark, runner):
    result = benchmark(figure1.run, runner)
    assert result.fortran_bars and result.c_bars
    print()
    print(result.format_text())
