"""Benchmark: profile-feedback service upload/predict throughput.

The serve subsystem only pays for itself if a fleet of runners can push
branch counters through one aggregation point faster than they produce
them, so this records the second perf axis (``BENCH_SERVE.json``): loopback
upload and predict throughput plus tail latency through the real stack —
canonical-JSON framing, asyncio server, sharded aggregator — with a sync
client doing one request per round trip (no pipelining, the worst case).

The smoke test guards CI with a conservative floor (the point is catching
an accidental O(database) per-request regression, not chasing the exact
figure on a noisy shared runner); the full benchmark measures a sustained
multi-batch upload push and a predict sweep and rewrites the JSON.
"""
import json
import platform
import time
from pathlib import Path

from repro.ir.instructions import BranchId
from repro.profiling.branch_profile import BranchProfile
from repro.serve.client import ProfileClient, RetryPolicy
from repro.serve.server import ServerThread

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_SERVE.json"

#: Acceptance floor for the recorded figure: one sync client must sustain
#: >=1k uploads/s through the full stack on loopback.
UPLOAD_FLOOR = 1_000.0

#: CI smoke floor: loopback measures ~1.2k req/s on a single shared core;
#: anything under this means a per-request full-database scan (or similar)
#: crept into the hot path.
SMOKE_FLOOR = 400.0

#: Synthetic fleet shape: programs x datasets, branch sites per profile.
PROGRAMS = 8
DATASETS = 6
SITES = 40


def synthetic_profile(program, seed):
    """A deterministic profile with SITES branch sites; counts vary by
    seed so uploads are not trivially identical frames."""
    profile = BranchProfile(program=program, runs=1)
    for site in range(SITES):
        executed = float(100 + (seed * 37 + site * 11) % 900)
        taken = float(int(executed) * ((seed + site) % 100) // 100)
        profile.counts[BranchId(f"fn{site % 5}", site)] = (executed, taken)
    return profile


def _percentile(latencies, fraction):
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(len(ranked) * fraction))]


def _push_uploads(client, count, offset=0):
    """Upload ``count`` synthetic profiles round-robin across the fleet
    shape; returns (seconds, per-request latencies)."""
    latencies = []
    started = time.perf_counter()
    for index in range(count):
        seed = offset + index
        program = f"prog{seed % PROGRAMS}"
        dataset = f"d{(seed // PROGRAMS) % DATASETS}"
        request_start = time.perf_counter()
        client.upload_profile(program, dataset, synthetic_profile(program, seed))
        latencies.append(time.perf_counter() - request_start)
    return time.perf_counter() - started, latencies


def _sweep_predicts(client, count):
    latencies = []
    started = time.perf_counter()
    for index in range(count):
        program = f"prog{index % PROGRAMS}"
        mode = ("scaled", "unscaled", "polling")[index % 3]
        exclude = f"d{index % DATASETS}" if index % 2 else None
        request_start = time.perf_counter()
        client.predict(program, mode=mode, exclude=exclude)
        latencies.append(time.perf_counter() - request_start)
    return time.perf_counter() - started, latencies


def test_smoke_serve_throughput():
    with ServerThread() as server:
        with ProfileClient(
            server.host, server.port, retry=RetryPolicy(attempts=2)
        ) as client:
            _push_uploads(client, 50)  # warm up sockets and allocator
            seconds, latencies = _push_uploads(client, 400, offset=50)
    rate = len(latencies) / seconds
    print(
        f"\nserve smoke: {rate:,.0f} uploads/s, "
        f"p99 {_percentile(latencies, 0.99) * 1e3:.2f} ms"
    )
    assert rate >= SMOKE_FLOOR, (
        f"upload throughput {rate:,.0f} req/s fell below the "
        f"{SMOKE_FLOOR:,.0f} req/s smoke floor — did a per-request "
        "database scan creep into the upload path?"
    )


def test_full_serve_benchmark():
    """Sustained upload push + predict sweep; records BENCH_SERVE.json."""
    batches = 5
    batch_size = 1_000
    predict_count = 1_000

    with ServerThread() as server:
        with ProfileClient(
            server.host, server.port, retry=RetryPolicy(attempts=2)
        ) as client:
            _push_uploads(client, 100)  # warm up
            upload_latencies = []
            batch_rates = []
            for batch in range(batches):
                seconds, latencies = _push_uploads(
                    client, batch_size, offset=100 + batch * batch_size
                )
                batch_rates.append(batch_size / seconds)
                upload_latencies.extend(latencies)
            predict_seconds, predict_latencies = _sweep_predicts(
                client, predict_count
            )
            stats = client.stats()

    upload_rate = sum(batch_rates) / len(batch_rates)
    sustained = min(batch_rates)
    predict_rate = predict_count / predict_seconds
    report = {
        "benchmark": "serve_throughput",
        "date": time.strftime("%Y-%m-%d"),
        "python": platform.python_version(),
        "transport": "loopback TCP, one sync client, no pipelining",
        "fleet_shape": {
            "programs": PROGRAMS,
            "datasets": DATASETS,
            "branch_sites_per_profile": SITES,
        },
        "upload": {
            "requests": batches * batch_size,
            "batches": batches,
            "rate_rps": round(upload_rate, 1),
            "sustained_rps": round(sustained, 1),
            "p50_ms": round(_percentile(upload_latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(upload_latencies, 0.99) * 1e3, 3),
        },
        "predict": {
            "requests": predict_count,
            "rate_rps": round(predict_rate, 1),
            "p50_ms": round(_percentile(predict_latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(predict_latencies, 0.99) * 1e3, 3),
        },
        "server_epoch": stats["stats"]["epoch"],
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nserve full: upload {upload_rate:,.0f} rps "
        f"(sustained {sustained:,.0f}), "
        f"predict {predict_rate:,.0f} rps, "
        f"predict p99 {report['predict']['p99_ms']:.2f} ms "
        f"-> {BENCH_PATH.name}"
    )
    assert sustained >= UPLOAD_FLOOR, (
        f"sustained upload throughput {sustained:,.0f} req/s fell below "
        f"the {UPLOAD_FLOOR:,.0f} req/s acceptance floor"
    )
