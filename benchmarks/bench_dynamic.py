"""Benchmark: dynamic (1-bit/2-bit) vs static prediction comparison.

Unlike the other benches, this one genuinely re-simulates — dynamic
predictors observe the live outcome stream — so it doubles as a VM
throughput benchmark on a mid-sized program set.
"""
from repro.experiments import informal

PROGRAMS = ["lfk", "doduc"]


def test_dynamic_comparison(benchmark, runner):
    benchmark.pedantic(
        informal.dynamic_comparison,
        args=(runner,),
        kwargs={"programs": PROGRAMS},
        iterations=1,
        rounds=2,
    )
    result = informal.dynamic_comparison(runner, programs=PROGRAMS)
    for row in result.rows:
        assert row.two_bit_accuracy > 0.8
    print()
    print(result.format_text())
