"""Benchmarks: the paper's §3 informal observations, regenerated."""
from repro.experiments import informal


def test_combine_modes(benchmark, runner):
    result = benchmark(informal.combine_modes, runner)
    assert result.mean_fraction("polling") <= result.mean_fraction("scaled") + 1e-9
    print()
    print(result.format_text())


def test_heuristics(benchmark, runner):
    result = benchmark(informal.heuristics, runner)
    assert result.mean_loop_factor() > 1.4
    print()
    print(result.format_text())


def test_percent_taken(benchmark, runner):
    result = benchmark(informal.percent_taken, runner)
    spreads = {row.program: row.spread for row in result.rows}
    assert spreads["spice2g6"] > 0.15
    print()
    print(result.format_text())


def test_compress_cross(benchmark, runner):
    result = benchmark(informal.compress_cross, runner)
    assert min(result.fraction_by_target.values()) < 0.75
    print()
    print(result.format_text())


def test_wrong_measure(benchmark, runner):
    result = benchmark(informal.wrong_measure, runner)
    assert result.find("fpppp", "8atoms").branch_density > 100
    print()
    print(result.format_text())
