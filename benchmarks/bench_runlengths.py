"""Benchmark: run-length distributions between mispredicted branches.

Re-simulates its programs with a live monitor, so it also measures the
VM's monitored-execution throughput.
"""
from repro.experiments import runlengths

PROGRAMS = [("li", "sieve1"), ("doduc", "small"), ("lfk", "default")]


def test_runlength_distribution(benchmark, runner):
    benchmark.pedantic(
        runlengths.run,
        args=(runner,),
        kwargs={"programs": PROGRAMS},
        iterations=1,
        rounds=2,
    )
    result = runlengths.run(runner, programs=PROGRAMS)
    assert all(row.stats["cv"] > 0.3 for row in result.rows)
    print()
    print(result.format_text())
