"""Benchmarks: the dataflow framework and its two consumers.

The analyses run once per compiled module (prover, sanitizer, lint), so
what matters is absolute cost over the full workload set: the prover must
stay cheap relative to a single VM simulation, and the sanitized pipeline
must stay a small multiple of the plain one.
"""
import time

from repro.analysis.lint import lint_module
from repro.analysis.prover import ProofVerdict, prove_module
from repro.compiler import CompileOptions, compile_source
from repro.opt.globalconst import constant_globals
from repro.opt.pipeline import OptOptions, optimize_module
from repro.workloads import all_workloads


def test_smoke_prover_over_all_workloads(runner):
    """Prove every branch in every workload; report sites/second."""
    started = time.perf_counter()
    total = proven = 0
    for workload in all_workloads():
        compiled = runner.compiled(workload.name)
        proofs = prove_module(
            compiled.module, constant_globals(compiled.module)
        )
        total += len(proofs)
        proven += sum(1 for p in proofs if p.verdict is not ProofVerdict.UNKNOWN)
    elapsed = time.perf_counter() - started
    print(
        f"\n{total} branch sites proven-or-classified in {elapsed:.2f}s "
        f"({total / elapsed:.0f} sites/s), {proven} proven"
    )
    assert proven > 0
    assert elapsed < 60.0


def test_smoke_lint_over_all_workloads(runner):
    started = time.perf_counter()
    findings = 0
    for workload in all_workloads():
        compiled = runner.compiled(workload.name)
        findings += len(lint_module(compiled.module))
    elapsed = time.perf_counter() - started
    print(f"\n{findings} findings across all workloads in {elapsed:.2f}s")
    assert elapsed < 60.0


def test_smoke_sanitizer_overhead():
    """Sanitized vs plain pipeline on one mid-sized workload."""
    workload = next(w for w in all_workloads() if w.name == "compress")

    def pipeline(sanitize):
        program = compile_source(
            workload.source,
            name=workload.name,
            options=CompileOptions(opt=OptOptions.none()),
        )
        started = time.perf_counter()
        optimize_module(program.module, sanitize=sanitize)
        return time.perf_counter() - started

    plain = pipeline(False)
    sanitized = pipeline(True)
    print(
        f"\nplain {plain * 1e3:.1f}ms, sanitized {sanitized * 1e3:.1f}ms "
        f"({sanitized / plain:.1f}x)"
    )
    # Re-validating after every changing pass should stay a small multiple.
    assert sanitized < plain * 25 + 1.0
