"""Benchmark: process-pool fan-out speedup over the serial runner path.

Both runners start on a cold cache so the measured work is the actual
simulations; the triples are the slower sweeps (~1s each serially) so
worker start-up is amortized the way it is in the real experiment
drivers.  The speedup assertion needs a second core — on single-core
machines the run still checks serial/parallel equivalence.
"""
import os
import time

from repro.core.cache import run_result_to_dict
from repro.core.parallel import RunRequest
from repro.core.runner import WorkloadRunner

#: A 4-triple sweep of the heavier workloads.
SWEEP = [
    RunRequest("espresso", "bca"),
    RunRequest("espresso", "cps"),
    RunRequest("espresso", "tial"),
    RunRequest("li", "6queens"),
]


def _timed_sweep(cache_dir, jobs):
    runner = WorkloadRunner(cache_dir=cache_dir, jobs=jobs)
    started = time.perf_counter()
    results = runner.run_many(SWEEP)
    return time.perf_counter() - started, results


def test_smoke_parallel_fanout_speedup(tmp_path):
    serial_time, serial = _timed_sweep(str(tmp_path / "serial"), jobs=1)
    fanout_time, fanout = _timed_sweep(str(tmp_path / "fanout"), jobs=2)

    assert [run_result_to_dict(r) for r in serial] == [
        run_result_to_dict(r) for r in fanout
    ]

    speedup = serial_time / fanout_time
    print(
        f"\n{len(SWEEP)}-triple sweep: serial {serial_time:.2f}s, "
        f"jobs=2 {fanout_time:.2f}s, speedup {speedup:.2f}x "
        f"({os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup with 2 workers, got {speedup:.2f}x"
        )
