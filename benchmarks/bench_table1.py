"""Benchmark: regenerate Table 1 (dynamic dead code removable by DCE)."""
from repro.experiments import table1


def test_table1(benchmark, runner):
    result = benchmark(table1.run, runner)
    rows = result.by_program()
    assert rows["li"].dead_fraction < 0.01
    assert rows["matrix300"].dead_fraction > 0.2
    print()
    print(result.format_text())
