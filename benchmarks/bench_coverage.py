"""Benchmark: the coverage-vs-quality correlation sweep."""
from repro.experiments import coverage


def test_coverage_correlation(benchmark, runner):
    result = benchmark(coverage.run, runner)
    assert len(result.pairs) > 100
    print()
    print(result.format_text())
