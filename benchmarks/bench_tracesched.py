"""Ablation benchmark: candidate-set sizes by predictor quality.

DESIGN.md calls out trace selection as the motivating consumer of static
prediction; this bench regenerates the profile-vs-heuristic-vs-naive
candidate-set comparison over the lisp interpreter's hot functions.
"""
from repro.prediction import (
    FixedPredictor,
    LoopHeuristicPredictor,
    ProfilePredictor,
)
from repro.tracesched import compare_predictors

FUNCTIONS = ["eval", "apply", "evlis", "read_expr"]


def _ablation(runner):
    compiled = runner.compiled("li")
    profile = runner.profile("li", "6queens")
    predictors = {
        "profile": ProfilePredictor(profile),
        "loop-heuristic": LoopHeuristicPredictor(compiled.module),
        "always-not-taken": FixedPredictor(False),
    }
    return {
        name: compare_predictors(
            compiled.module.function(name), profile, predictors
        )
        for name in FUNCTIONS
    }


def test_candidate_set_ablation(benchmark, runner):
    reports = benchmark(_ablation, runner)
    print()
    print(f"{'function':12s} {'profile':>9s} {'loop-heur':>10s} {'naive':>8s}"
          f"   (best expected useful instrs)")
    for name, by_predictor in reports.items():
        profile_best = by_predictor["profile"].best_expected
        loop_best = by_predictor["loop-heuristic"].best_expected
        naive_best = by_predictor["always-not-taken"].best_expected
        print(f"{name:12s} {profile_best:9.1f} {loop_best:10.1f} "
              f"{naive_best:8.1f}")
        assert profile_best >= naive_best - 1e-9
