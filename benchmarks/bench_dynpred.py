"""Benchmark: finite-table predictor throughput and the dynamic sweep.

Two measurements:

* raw model throughput on a synthetic outcome stream — the per-event
  Python cost of each predictor family, which bounds how large a sweep
  stays practical;
* the ``dynamic_compare`` experiment on one workload — the monitored
  re-simulation plus 14-model scoring pass end to end.
"""
import time

from repro.dynamic import DynamicScoreMonitor, default_zoo
from repro.experiments import dynamic_compare
from repro.ir.instructions import BranchId

STREAM_EVENTS = 200_000


def _synthetic_stream(num_branches=256, events=STREAM_EVENTS):
    # Mix of biased, alternating and loop-periodic branches so every
    # family exercises its update path, not just a saturated fast path.
    stream = []
    for i in range(events):
        index = (i * 7919) % num_branches
        if index % 3 == 0:
            taken = True
        elif index % 3 == 1:
            taken = i % 2 == 0
        else:
            taken = i % 4 != 3
        stream.append((index, taken))
    return [BranchId("synth", i) for i in range(num_branches)], stream


def test_smoke_predictor_throughput():
    branch_table, stream = _synthetic_stream()
    print()
    for model in default_zoo(table_sizes=(1024,)):
        model.reset(branch_table)
        started = time.perf_counter()
        for index, taken in stream:
            model.observe(index, taken)
        elapsed = time.perf_counter() - started
        rate = STREAM_EVENTS / elapsed
        print(f"{model.name:16s} {rate / 1e6:6.2f} M events/s")
        assert rate > 100_000, f"{model.name}: {rate:.0f} events/s"


def test_smoke_monitored_scoring_overhead(runner):
    """One monitored doduc/tiny run scoring the full default zoo."""
    branch_table = runner.compiled("doduc").lowered.branch_table
    monitor = DynamicScoreMonitor(default_zoo(), branch_table)
    started = time.perf_counter()
    result = runner.run("doduc", "tiny", monitors=[monitor])
    elapsed = time.perf_counter() - started
    events = result.total_branch_execs
    print(f"\n{events} branch events x {len(monitor.models)} models "
          f"in {elapsed:.2f}s "
          f"({events * len(monitor.models) / elapsed / 1e6:.2f} M scores/s)")
    assert monitor.scores(result)[0].branch_execs == events


def test_smoke_dynamic_sweep(runner):
    started = time.perf_counter()
    result = dynamic_compare.run(
        runner, programs=["doduc"], table_sizes=(64, 256, 1024)
    )
    elapsed = time.perf_counter() - started
    print(f"\ndoduc dynamic sweep ({len(result.rows)} rows) in {elapsed:.1f}s")
    assert len(result.rows) == 3 * (4 * 3 + 2)
