"""Benchmark: dataset run-length ratio vs cross-prediction quality."""
from repro.experiments import scaling


def test_scaling(benchmark, runner):
    result = benchmark(scaling.run, runner)
    assert result.worst_spice_pair().quality < 0.4
    print()
    print(result.format_text())
