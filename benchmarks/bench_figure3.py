"""Benchmark: regenerate Figures 3a/3b (best/worst single-dataset
predictors)."""
from repro.experiments import figure3


def test_figure3(benchmark, runner):
    result = benchmark(figure3.run, runner)
    assert min(bar.worst_percent for bar in result.spice_bars) < 40
    print()
    print(result.format_text())
