"""Benchmark: predecoded fast-path engine throughput vs the legacy loop.

The VM dispatch loop is the substrate-wide hot path — every table and
figure is arithmetic over millions of simulated RISC-ops — so this is
the repo's first recorded perf point (``BENCH_VM.json``).  The smoke
test guards the fast path in CI with a conservative speedup floor (the
point is catching a silent regression to legacy-loop throughput, not
chasing the exact multiple on a noisy runner); the full benchmark sweeps
every bundled workload x dataset, checks bit-identity against the legacy
engine as it goes, and rewrites ``BENCH_VM.json``.
"""
import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.compiler import compile_source
from repro.vm.engine import predecode
from repro.vm.machine import Machine
from repro.workloads import registry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_VM.json"

#: CI floor: the fast engine measures 2.1-2.2x overall (1.6x on the most
#: control-heavy workload, 4x on compute kernels); anything under 1.4x on
#: this mix means the fast path stopped being fast.
SMOKE_FLOOR = 1.4

#: A small compute + control mix for the smoke check.
SMOKE_RUNS = [("nasa7", None), ("espresso", None)]


def _compiled(workload_name):
    workload = registry.get_workload(workload_name)
    return workload, compile_source(workload.source, name=workload_name).lowered


def _timed_run(machine, program, data):
    started = time.perf_counter()
    result = machine.run(program, input_data=data)
    return time.perf_counter() - started, result


def _measure(workload_name, dataset_names=None):
    """Per-workload (instructions, legacy_seconds, fast_seconds); the fast
    timing is the warm path (decode cached on the LoweredProgram), which
    is what every sweep after the first run pays."""
    workload, program = _compiled(workload_name)
    fast = Machine(engine="fast")
    legacy = Machine(engine="legacy")
    predecode(program)  # decode once, outside the timed region
    instructions = 0
    legacy_seconds = fast_seconds = 0.0
    for dataset in workload.datasets:
        if dataset_names is not None and dataset.name not in dataset_names:
            continue
        legacy_time, legacy_result = _timed_run(legacy, program, dataset.data)
        fast_time, fast_result = _timed_run(fast, program, dataset.data)
        assert dataclasses.astuple(fast_result) == dataclasses.astuple(
            legacy_result
        ), (workload_name, dataset.name)
        instructions += legacy_result.instructions
        legacy_seconds += legacy_time
        fast_seconds += fast_time
    return instructions, legacy_seconds, fast_seconds


def test_smoke_vm_engine_speedup():
    instructions = 0
    legacy_seconds = fast_seconds = 0.0
    for workload_name, _ in SMOKE_RUNS:
        workload = registry.get_workload(workload_name)
        smallest = min(workload.datasets, key=lambda ds: len(ds.data))
        count, legacy_time, fast_time = _measure(
            workload_name, dataset_names={smallest.name}
        )
        instructions += count
        legacy_seconds += legacy_time
        fast_seconds += fast_time

    speedup = legacy_seconds / fast_seconds
    print(
        f"\nVM engine smoke: {instructions / 1e6:.1f}M ops, "
        f"legacy {instructions / legacy_seconds / 1e6:.2f} Mops/s, "
        f"fast {instructions / fast_seconds / 1e6:.2f} Mops/s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= SMOKE_FLOOR, (
        f"fast engine speedup {speedup:.2f}x fell below the "
        f"{SMOKE_FLOOR}x floor — did the fast path regress to the "
        "legacy loop?"
    )


def test_full_vm_engine_benchmark():
    """Sweep every bundled workload x dataset and record BENCH_VM.json."""
    workloads = {}
    total_instructions = 0
    total_legacy = total_fast = 0.0
    for workload_name in registry.workload_names():
        instructions, legacy_seconds, fast_seconds = _measure(workload_name)
        workloads[workload_name] = {
            "instructions": instructions,
            "legacy_mops": round(instructions / legacy_seconds / 1e6, 2),
            "fast_mops": round(instructions / fast_seconds / 1e6, 2),
            "speedup": round(legacy_seconds / fast_seconds, 2),
        }
        total_instructions += instructions
        total_legacy += legacy_seconds
        total_fast += fast_seconds

    overall = legacy_mops, fast_mops, speedup = (
        round(total_instructions / total_legacy / 1e6, 2),
        round(total_instructions / total_fast / 1e6, 2),
        round(total_legacy / total_fast, 2),
    )
    report = {
        "benchmark": "vm_engine_throughput",
        "date": time.strftime("%Y-%m-%d"),
        "python": platform.python_version(),
        "unmonitored": True,
        "total_instructions": total_instructions,
        "overall": {
            "legacy_mops": legacy_mops,
            "fast_mops": fast_mops,
            "speedup": speedup,
        },
        "workloads": workloads,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nVM engine full sweep: {total_instructions / 1e6:.0f}M ops, "
        f"legacy {legacy_mops:.2f} Mops/s, fast {fast_mops:.2f} Mops/s, "
        f"speedup {speedup:.2f}x -> {BENCH_PATH.name}"
    )
    assert overall[2] >= 2.0, (
        f"tentpole target is >=2x unmonitored throughput, got {speedup:.2f}x"
    )
