"""Benchmark: regenerate Table 3 (instrs/break, stable FORTRAN programs)."""
from repro.experiments import table3


def test_table3(benchmark, runner):
    result = benchmark(table3.run, runner)
    assert result.ordering_matches_paper()
    print()
    print(result.format_text())
