"""Candidate sets for a trace scheduler: why the paper wants predictions.

Selects traces through the lisp interpreter's hottest functions using
(a) profile-guided prediction and (b) naive always-not-taken prediction,
then compares the *expected useful instructions* a trace scheduler would
see along each trace — the candidate-set size the paper's introduction is
all about.

Run:  python examples/trace_scheduling.py
"""
from repro.core import WorkloadRunner
from repro.prediction import FixedPredictor, ProfilePredictor
from repro.tracesched import candidate_set_report, select_traces

FUNCTIONS = ["eval", "apply", "read_expr"]


def main() -> None:
    runner = WorkloadRunner()
    compiled = runner.compiled("li")
    profile = runner.profile("li", "6queens")

    print("expected useful instructions per selected trace, li/6queens\n")
    print(f"{'function':12s} {'traces':>7s} {'profile-guided':>15s} "
          f"{'always-not-taken':>17s}")
    for name in FUNCTIONS:
        func = compiled.module.function(name)
        guided_traces = select_traces(func, ProfilePredictor(profile))
        naive_traces = select_traces(func, FixedPredictor(False))
        guided = candidate_set_report(func, guided_traces, profile)
        naive = candidate_set_report(func, naive_traces, profile)
        print(f"{name:12s} {len(guided_traces):7d} "
              f"{guided.best_expected:15.1f} {naive.best_expected:17.1f}")

    print("\n(the larger the expected length, the more data-ready "
          "instructions a VLIW scheduler can consider per cycle)")


if __name__ == "__main__":
    main()
