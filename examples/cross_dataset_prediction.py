"""Cross-dataset prediction for one workload (a single-program Figure 2/3).

Shows, for the lisp interpreter:

* the pairwise predictor/target matrix (every dataset predicting every
  other),
* the best-possible (self) bound,
* the scaled-sum leave-one-out predictor the paper recommends.

Run:  python examples/cross_dataset_prediction.py [workload]
"""
import sys

from repro.core import CrossDatasetExperiment, WorkloadRunner


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "li"
    runner = WorkloadRunner()
    experiment = CrossDatasetExperiment(runner, workload_name)
    names = experiment.dataset_names()
    if len(names) < 2:
        raise SystemExit(f"{workload_name} has only one dataset")

    print(f"instructions per break for '{workload_name}' "
          f"(rows = predictor, columns = target; diagonal = self)\n")
    width = max(len(name) for name in names) + 2
    header = " " * width + "".join(name.rjust(width) for name in names)
    print(header)
    matrix = experiment.pairwise_matrix()
    for predictor_name in names:
        cells = "".join(
            f"{matrix[(predictor_name, target)]:{width}.1f}" for target in names
        )
        print(predictor_name.ljust(width) + cells)

    print("\nleave-one-out scaled sum (the paper's recommended predictor):")
    for target in names:
        prediction = experiment.dataset_prediction(target)
        best_worst = experiment.best_worst(target)
        print(f"  {target:12s} self {prediction.ipb_self:7.1f}   "
              f"sum-of-others {prediction.ipb_combined:7.1f} "
              f"({100 * prediction.combined_fraction_of_self:4.0f}% of best; "
              f"single-dataset worst {best_worst.worst_percent:.0f}% "
              f"via {best_worst.worst_other})")


if __name__ == "__main__":
    main()
