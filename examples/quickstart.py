"""Quickstart: compile an MF program, profile a run, predict its branches.

This walks the paper's core loop on a tiny program:

1. compile MF source (the Multiflow-compiler analog),
2. run it on the counting VM (the MFPixie analog) to collect per-branch
   (executed, taken) counters (the IFPROBBER analog),
3. build a static predictor from the profile and measure the paper's
   headline metric — instructions per mispredicted branch.

Run:  python examples/quickstart.py
"""
from repro import compile_source, run_program
from repro.metrics import branch_density, ipb_no_prediction, ipb_with_predictor
from repro.prediction import ProfilePredictor, evaluate_static
from repro.profiling import BranchProfile

SOURCE = """
// Count words and digits in the input stream.
var words;
var digits;

func is_space(c) {
    return c == ' ' || c == 10 || c == 9;
}

func main() {
    var c = getc();
    var in_word = 0;
    while (c != -1) {
        if (is_space(c)) {
            in_word = 0;
        } else {
            if (!in_word) { words += 1; }
            in_word = 1;
            if (c >= '0' && c <= '9') { digits += 1; }
        }
        c = getc();
    }
    putc(words % 256);
    putc(digits % 256);
    return 0;
}
"""

TRAINING_INPUT = b"the quick brown fox 42 jumped over 7 lazy dogs " * 40
TARGET_INPUT = b"branch prediction from previous runs 1992 works well " * 40


def main() -> None:
    program = compile_source(SOURCE, name="wordcount")

    # A training run produces the branch profile (previous run of the
    # program)...
    training = run_program(program.lowered, input_data=TRAINING_INPUT)
    profile = BranchProfile.from_run(training)
    print(f"training run: {training.instructions} instructions, "
          f"{training.total_branch_execs} branch executions")
    for branch_id, (executed, taken) in sorted(profile.counts.items()):
        direction = "taken" if profile.direction(branch_id) else "not-taken"
        print(f"  {branch_id}: executed {executed:.0f}, taken {taken:.0f} "
              f"-> predict {direction}")

    # ...which predicts a different run of the same program.
    target = run_program(program.lowered, input_data=TARGET_INPUT)
    predictor = ProfilePredictor(profile, name="previous-run")
    report = evaluate_static(target, predictor)
    print(f"\ntarget run: {target.instructions} instructions")
    print(f"  branch every {branch_density(target):.1f} instructions")
    print(f"  {100 * report.percent_correct:.1f}% of branch executions "
          f"predicted correctly")
    print(f"  instructions per break, unpredicted:  "
          f"{ipb_no_prediction(target):6.1f}")
    print(f"  instructions per break, predicted:    "
          f"{ipb_with_predictor(target, predictor):6.1f}")


if __name__ == "__main__":
    main()
