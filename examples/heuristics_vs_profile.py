"""Static heuristics vs profile feedback vs dynamic hardware prediction.

Reproduces, on two contrasting workloads, the comparisons the paper makes:

* loop/non-loop heuristics "gave up about a factor of two" against profile
  feedback (§3 informal observations);
* simple dynamic schemes (1-bit, 2-bit counters) for context.

Run:  python examples/heuristics_vs_profile.py
"""
from repro.core import WorkloadRunner
from repro.metrics import ipb_no_prediction, ipb_self_prediction, ipb_with_predictor
from repro.prediction import (
    FixedPredictor,
    LoopHeuristicPredictor,
    OpcodeHeuristicPredictor,
    ProfilePredictor,
    evaluate_static,
    self_prediction,
)
from repro.dynamic import BimodalPredictor, DynamicScoreMonitor

CASES = [("li", "6queens", "5queens"), ("tomcatv", "default", "default")]


def main() -> None:
    runner = WorkloadRunner()
    for workload, target_name, training_name in CASES:
        compiled = runner.compiled(workload)
        target = runner.run(workload, target_name)
        training_profile = runner.profile(workload, training_name)

        print(f"=== {workload} / {target_name} "
              f"({target.instructions} instructions)")
        print(f"  {'unpredicted':24s} {ipb_no_prediction(target):8.1f} "
              f"instrs/break")

        predictors = [
            FixedPredictor(False),
            FixedPredictor(True),
            OpcodeHeuristicPredictor(compiled.module),
            LoopHeuristicPredictor(compiled.module),
            ProfilePredictor(training_profile, name=f"profile({training_name})"),
        ]
        for predictor in predictors:
            ipb = ipb_with_predictor(target, predictor)
            correct = evaluate_static(target, predictor).percent_correct
            print(f"  {predictor.name:24s} {ipb:8.1f} instrs/break "
                  f"({100 * correct:5.1f}% correct)")
        print(f"  {'self (upper bound)':24s} "
              f"{ipb_self_prediction(target):8.1f} instrs/break")

        # Dynamic predictors observe the run live (infinite-table 1-bit
        # and 2-bit counters, scored in a single monitored pass).
        monitor = DynamicScoreMonitor(
            [
                BimodalPredictor(table_size=None, num_bits=1),
                BimodalPredictor(table_size=None, num_bits=2),
            ],
            compiled.lowered.branch_table,
        )
        runner.run(workload, target_name, monitors=[monitor])
        one_bit, two_bit = monitor.scores(target)
        static_correct = self_prediction(target).percent_correct
        print(f"  dynamic 1-bit {100 * one_bit.percent_correct:5.1f}% correct, "
              f"2-bit {100 * two_bit.percent_correct:5.1f}%, "
              f"static-self {100 * static_correct:5.1f}%\n")


if __name__ == "__main__":
    main()
