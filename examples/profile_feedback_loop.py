"""The full IFPROBBER tool flow, exactly as the paper describes it:

"The IFPROBBER ... instruments the code with instruction counters before
each conditional branch.  Whenever the program runs, a database of branch
counts is augmented.  Later, a call to a utility feeds the branch counts
back into the source in the form of the above directives."

We profile the doduc workload over two datasets, feed the accumulated
counts back into the source as IFPROB directives, recompile the feedback
source, and use the recovered predictions on a third, unseen dataset.

Run:  python examples/profile_feedback_loop.py
"""
from repro.compiler import compile_source
from repro.metrics import ipb_no_prediction, ipb_self_prediction, ipb_with_predictor
from repro.prediction import ProfilePredictor
from repro.profiling import IfProbber, profile_from_feedback
from repro.vm.machine import run_program
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("doduc")

    # 1. Instrumented runs over the training datasets accumulate counters
    #    in the database.
    probber = IfProbber(workload.source, name="doduc")
    for dataset_name in ("tiny", "small"):
        dataset = workload.dataset(dataset_name)
        result = probber.run_dataset(dataset_name, dataset.data)
        print(f"profiled {dataset_name}: {result.instructions} instructions")

    # 2. The utility feeds the accumulated counts back into the source.
    feedback_source = probber.feedback_source()
    directive_count = feedback_source.count("IFPROB")
    print(f"\nfeedback source carries {directive_count} IFPROB directives, "
          f"e.g.:")
    for line in feedback_source.splitlines()[:4]:
        print(f"  {line}")

    # 3. Recompiling the feedback source recovers the predictions without
    #    access to the original database.
    recompiled = compile_source(feedback_source, name="doduc")
    recovered = profile_from_feedback(recompiled)
    predictor = ProfilePredictor(recovered, name="feedback")

    # 4. Predict a dataset the profile never saw.
    unseen = workload.dataset("ref")
    target = run_program(recompiled.lowered, input_data=unseen.data)
    print(f"\npredicting unseen dataset 'ref' "
          f"({target.instructions} instructions):")
    print(f"  unpredicted:       {ipb_no_prediction(target):7.1f} instrs/break")
    print(f"  feedback profile:  "
          f"{ipb_with_predictor(target, predictor):7.1f} instrs/break")
    print(f"  best possible:     {ipb_self_prediction(target):7.1f} "
          f"instrs/break (self-prediction)")


if __name__ == "__main__":
    main()
