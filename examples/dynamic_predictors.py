"""Static profile prediction vs finite hardware predictors on one workload.

The paper compares its cross-run profile prediction against the hardware
counter schemes of [Smith 81] / [Lee and Smith 84] in one line; the
``repro.dynamic`` subsystem makes the comparison a first-class sweep.
This example runs it for a single workload and prints the comparison
table plus the mean instructions-per-mispredict chart.

Run:  python examples/dynamic_predictors.py [workload]
      (default doduc; any workload with 2+ datasets works)
"""
import sys

from repro.core import WorkloadRunner
from repro.experiments import dynamic_compare


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "doduc"
    runner = WorkloadRunner()
    result = dynamic_compare.run(
        runner, programs=[workload], table_sizes=(64, 256, 1024)
    )
    print(result.format_text())
    print()
    print(result.format_chart())

    best = max(
        (name for name in result.predictor_order),
        key=lambda name: result.mean_ipb(workload, name),
    )
    cross = result.mean_ipb(workload, "static-cross")
    print(
        f"\nbest predictor for {workload}: {best} "
        f"({result.mean_ipb(workload, best):.1f} instrs/mispredict; "
        f"the paper's static-cross gets {cross:.1f})"
    )


if __name__ == "__main__":
    main()
